#include "passes.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace qlint {
namespace {

const std::vector<std::string> streamTrees = {"src/serve/", "src/persist/",
                                              "src/fault/"};
const std::vector<std::string> durabilityTrees = {"src/persist/",
                                                  "src/serve/"};
/** The pool implementation may hold its own queue mutex around its own
 *  bookkeeping; the held-across-dispatch rule targets callers. */
const std::vector<std::string> lockDispatchAllowedPaths = {
    "src/common/thread_pool.cpp", "src/common/thread_pool.hpp"};

bool underServe(const std::string &path)
{
    return underTrees(path, {"src/serve/"});
}

/** Advancing Rng methods, minus split/splitAt which the lexical
 *  split-in-task rule already owns inside dispatch lambdas. */
bool isDrawMethod(const std::string &name)
{
    static const std::set<std::string> methods = {
        "uniform", "uniformInt", "normal", "exponential",
        "poisson", "bernoulli",  "discrete", "sign", "engine"};
    return methods.count(name) != 0;
}

/** A bare identifier expression (possibly with leading `&` or `*`). */
bool bareIdentifier(const std::string &expr, std::string &name)
{
    std::size_t i = 0;
    while (i < expr.size() && (expr[i] == '&' || expr[i] == '*' ||
                               std::isspace(static_cast<unsigned char>(
                                   expr[i])) != 0)) {
        ++i;
    }
    if (i >= expr.size() || !isIdentStart(expr[i])) {
        return false;
    }
    std::size_t start = i;
    while (i < expr.size() && isIdentChar(expr[i])) {
        ++i;
    }
    while (i < expr.size() &&
           std::isspace(static_cast<unsigned char>(expr[i])) != 0) {
        ++i;
    }
    if (i != expr.size()) {
        return false;
    }
    name = expr.substr(start, expr.size() - start);
    return true;
}

/**
 * Affine / linear arithmetic over identifiers: `a + b`, `a * K + r`,
 * `a ^ b`, `a % n`, `a | b`, `a << k`, and binary minus. The same
 * notion as the per-file stream-offset rule: packings that are linear
 * in an adversarial ID collide, unlike the SplitMix64 avalanche in
 * deriveStreamSeed.
 */
bool hasAffineArithmetic(const std::string &expr)
{
    int depth = 0;
    bool sawIdent = false;
    for (std::size_t i = 0; i < expr.size(); ++i) {
        char c = expr[i];
        if (c == '(' || c == '[' || c == '{') {
            ++depth;
            continue;
        }
        if (c == ')' || c == ']' || c == '}') {
            --depth;
            continue;
        }
        if (isIdentChar(c)) {
            sawIdent = true;
            continue;
        }
        if (depth != 0 || !sawIdent) {
            continue;
        }
        if (c == '+' || c == '^' || c == '%') {
            if (i + 1 < expr.size() && expr[i + 1] == c) {
                ++i; // ++ / ^^ (not arithmetic packing)
                continue;
            }
            return true;
        }
        if (c == '*' || c == '|') {
            // Unary deref / logical-or start vs binary operator.
            if (i + 1 < expr.size() && expr[i + 1] == c) {
                ++i;
                continue;
            }
            std::size_t p = prevNonSpace(expr, i);
            if (p != std::string::npos &&
                (isIdentChar(expr[p]) || expr[p] == ')')) {
                return true;
            }
            continue;
        }
        if (c == '<' && i + 1 < expr.size() && expr[i + 1] == '<') {
            return true;
        }
        if (c == '-') {
            if (i + 1 < expr.size() &&
                (expr[i + 1] == '>' || expr[i + 1] == '-')) {
                ++i; // member access / decrement
                continue;
            }
            std::size_t p = prevNonSpace(expr, i);
            if (p != std::string::npos &&
                (isIdentChar(expr[p]) || expr[p] == ')')) {
                return true;
            }
        }
    }
    return false;
}

/** Innermost lambda of `fn` containing `pos`, or nullptr. */
const LambdaRange *enclosingLambda(const FunctionInfo &fn,
                                   std::size_t pos)
{
    const LambdaRange *best = nullptr;
    for (const LambdaRange &l : fn.lambdas) {
        if (l.begin < pos && pos < l.end &&
            (best == nullptr || l.begin > best->begin)) {
            best = &l;
        }
    }
    return best;
}

struct PassContext
{
    const SemanticIndex &index;
    std::vector<Finding> findings;

    void emit(const std::string &file, int line, const std::string &rule,
              const std::string &message)
    {
        if (index.allowed(file, rule, line)) {
            return;
        }
        findings.push_back({file, line, rule, message});
    }

    /**
     * Candidate definitions for a call site, narrowed by receiver type
     * (member calls), explicit qualifier, or the caller's own class.
     * Resolution is best-effort: when narrowing finds nothing, all
     * same-named definitions are returned.
     */
    std::vector<const FunctionInfo *>
    resolveCall(const FunctionInfo &caller, const CallSite &call) const
    {
        std::set<std::string> classes;
        if (call.memberCall && !call.object.empty() &&
            call.object != "this") {
            classes = index.typeTokensFor(call.object);
        } else if (!call.qualifier.empty() && call.qualifier != "std") {
            classes.insert(call.qualifier);
        } else if (!caller.className.empty()) {
            classes.insert(caller.className);
        }
        return index.resolve(call.callee, classes);
    }
};

// ---------------------------------------------------------------------------
// stream-lineage

class StreamLineagePass
{
  public:
    explicit StreamLineagePass(PassContext &ctx) : ctx_(ctx) {}

    void run()
    {
        for (const TuIndex &tu : ctx_.index.tus) {
            for (const FunctionInfo &fn : tu.functions) {
                if (underTrees(tu.path, streamTrees)) {
                    checkDoubleConsumption(fn);
                }
                if (underSrcTree(tu.path)) {
                    checkDispatchConsumption(fn);
                    checkAffineCrossing(tu.path, fn);
                }
            }
        }
    }

  private:
    /** Does `fn` advance the stream of its `paramIdx`-th parameter,
     *  directly or by handing it to a consuming callee? */
    bool consumesParam(const FunctionInfo &fn, std::size_t paramIdx,
                       std::set<const FunctionInfo *> &visited)
    {
        if (paramIdx >= fn.params.size() ||
            fn.params[paramIdx].name.empty() ||
            visited.count(&fn) != 0) {
            return false;
        }
        visited.insert(&fn);
        const std::string &param = fn.params[paramIdx].name;
        if (fn.consumedRngs.count(param) != 0) {
            return true;
        }
        for (const CallSite &call : fn.calls) {
            for (std::size_t j = 0; j < call.args.size(); ++j) {
                std::string name;
                if (!bareIdentifier(call.args[j], name) ||
                    name != param) {
                    continue;
                }
                for (const FunctionInfo *callee :
                     ctx_.resolveCall(fn, call)) {
                    if (consumesParam(*callee, j, visited)) {
                        return true;
                    }
                }
            }
        }
        return false;
    }

    bool callConsumes(const FunctionInfo &fn, const CallSite &call,
                      const std::string &rng)
    {
        for (std::size_t j = 0; j < call.args.size(); ++j) {
            std::string name;
            if (!bareIdentifier(call.args[j], name) || name != rng) {
                continue;
            }
            for (const FunctionInfo *callee : ctx_.resolveCall(fn, call)) {
                std::set<const FunctionInfo *> visited;
                if (consumesParam(*callee, j, visited)) {
                    return true;
                }
            }
        }
        return false;
    }

    /** Names of the Rng streams `fn` owns: Rng params + Rng locals. */
    std::map<std::string, bool> ownedStreams(const FunctionInfo &fn)
    {
        std::map<std::string, bool> out; // name -> isParam
        for (const ParamInfo &p : fn.params) {
            if (p.isRng && !p.name.empty()) {
                out[p.name] = true;
            }
        }
        for (const auto &[name, pos] : fn.localRngVars) {
            (void)pos;
            out.emplace(name, false);
        }
        return out;
    }

    void checkDoubleConsumption(const FunctionInfo &fn)
    {
        for (const auto &[rng, isParam] : ownedStreams(fn)) {
            (void)isParam;
            std::vector<const CallSite *> consumers;
            for (const CallSite &call : fn.calls) {
                if (callConsumes(fn, call, rng)) {
                    consumers.push_back(&call);
                }
            }
            if (consumers.size() < 2) {
                continue;
            }
            const CallSite &second = *consumers[1];
            ctx_.emit(fn.file, second.line, "stream-lineage",
                      "`" + rng + "` is handed to " +
                          std::to_string(consumers.size()) +
                          " consuming callees in " + fn.qualifiedName +
                          " (first `" + consumers[0]->callee +
                          "` at line " +
                          std::to_string(consumers[0]->line) +
                          ", then `" + second.callee +
                          "`); each callee assumes an independent "
                          "stream — derive substreams with "
                          "Rng::splitStream / splitAt instead of "
                          "reusing one stream");
        }
    }

    /** True when `name` is a stream that outlives the lambda at `pos`:
     *  a parameter, or a local declared outside that lambda. */
    bool isOuterStream(const FunctionInfo &fn, const std::string &name,
                       std::size_t pos)
    {
        for (const ParamInfo &p : fn.params) {
            if (p.isRng && p.name == name) {
                return true;
            }
        }
        auto it = fn.localRngVars.find(name);
        if (it == fn.localRngVars.end()) {
            return false;
        }
        const LambdaRange *lambda = enclosingLambda(fn, pos);
        if (lambda == nullptr) {
            return true;
        }
        // Declared inside the same lambda body: task-local, fine.
        return it->second <= lambda->begin || it->second >= lambda->end;
    }

    void checkDispatchConsumption(const FunctionInfo &fn)
    {
        for (const CallSite &call : fn.calls) {
            if (!call.inDispatchLambda) {
                continue;
            }
            // (b1) direct draw on a captured outer stream.
            if (call.memberCall && isDrawMethod(call.callee) &&
                !call.object.empty() &&
                isOuterStream(fn, call.object, call.pos)) {
                ctx_.emit(fn.file, call.line, "stream-lineage",
                          "`" + call.object + "." + call.callee +
                              "()` draws from an outer Rng inside a "
                              "task dispatched by ThreadPool/"
                              "ParallelExecutor in " + fn.qualifiedName +
                              "; the draw order then depends on "
                              "scheduling — split a per-task stream "
                              "before fan-out and move it into the "
                              "capture");
                continue;
            }
            // (b2) outer stream passed into a consuming helper.
            for (const std::string &arg : call.args) {
                std::string name;
                if (!bareIdentifier(arg, name) ||
                    !isOuterStream(fn, name, call.pos)) {
                    continue;
                }
                if (callConsumes(fn, call, name)) {
                    ctx_.emit(
                        fn.file, call.line, "stream-lineage",
                        "outer Rng `" + name + "` is passed to `" +
                            call.callee +
                            "` inside a dispatched task in " +
                            fn.qualifiedName +
                            "; the callee advances the shared stream "
                            "under scheduler control — hand each task "
                            "its own substream instead");
                    break;
                }
            }
        }
    }

    /** Does `fn` feed its `paramIdx`-th parameter into a stream
     *  derivation (deriveStreamSeed / splitStream / splitAt), directly
     *  or transitively? */
    bool paramFeedsDerivation(const FunctionInfo &fn,
                              std::size_t paramIdx,
                              std::set<const FunctionInfo *> &visited)
    {
        if (paramIdx >= fn.params.size() ||
            fn.params[paramIdx].name.empty() ||
            visited.count(&fn) != 0) {
            return false;
        }
        visited.insert(&fn);
        const std::string &param = fn.params[paramIdx].name;
        for (const CallSite &call : fn.calls) {
            bool derivation = call.callee == "deriveStreamSeed" ||
                              call.callee == "splitStream" ||
                              call.callee == "splitAt";
            for (std::size_t j = 0; j < call.args.size(); ++j) {
                const std::string &arg = call.args[j];
                std::string name;
                bool mentions = false;
                if (bareIdentifier(arg, name)) {
                    mentions = name == param;
                } else {
                    // The param may appear inside a larger expression
                    // (`base + id`): token-scan the argument.
                    std::size_t at = arg.find(param);
                    while (at != std::string::npos && !mentions) {
                        bool lb = at == 0 || !isIdentChar(arg[at - 1]);
                        bool rb = at + param.size() >= arg.size() ||
                                  !isIdentChar(arg[at + param.size()]);
                        mentions = lb && rb;
                        at = arg.find(param, at + 1);
                    }
                }
                if (!mentions) {
                    continue;
                }
                if (derivation) {
                    return true;
                }
                if (bareIdentifier(arg, name) && name == param) {
                    for (const FunctionInfo *callee :
                         ctx_.resolveCall(fn, call)) {
                        if (paramFeedsDerivation(*callee, j, visited)) {
                            return true;
                        }
                    }
                }
            }
        }
        return false;
    }

    void checkAffineCrossing(const std::string &path,
                             const FunctionInfo &fn)
    {
        for (const CallSite &call : fn.calls) {
            // Direct derivation calls with affine args are the per-file
            // stream-offset rule's territory; this pass owns the
            // cross-boundary case only.
            if (call.callee == "deriveStreamSeed" ||
                call.callee == "splitStream" ||
                call.callee == "splitAt") {
                continue;
            }
            for (std::size_t j = 0; j < call.args.size(); ++j) {
                if (!hasAffineArithmetic(call.args[j])) {
                    continue;
                }
                for (const FunctionInfo *callee :
                     ctx_.resolveCall(fn, call)) {
                    if (!underServe(path) && !underServe(callee->file)) {
                        continue;
                    }
                    std::set<const FunctionInfo *> visited;
                    if (!paramFeedsDerivation(*callee, j, visited)) {
                        continue;
                    }
                    ctx_.emit(
                        fn.file, call.line, "stream-lineage",
                        "affine seed packing `" + call.args[j] +
                            "` crosses into `" +
                            callee->qualifiedName +
                            "`, which feeds it to a stream "
                            "derivation; linear packings collide "
                            "under adversarial IDs — pass raw IDs "
                            "and let deriveStreamSeed mix them");
                    break;
                }
            }
        }
    }

    PassContext &ctx_;
};

// ---------------------------------------------------------------------------
// lock-order

class LockOrderPass
{
  public:
    explicit LockOrderPass(PassContext &ctx) : ctx_(ctx) {}

    void run()
    {
        for (const TuIndex &tu : ctx_.index.tus) {
            if (!underSrcTree(tu.path)) {
                continue;
            }
            for (const FunctionInfo &fn : tu.functions) {
                scanFunction(tu.path, fn);
            }
        }
        reportCycles();
    }

  private:
    struct EdgeSite
    {
        std::string file;
        int line = 0;
        std::string via;
    };

    /** Mutexes `fn` acquires, directly or via callees. */
    const std::set<std::string> &acquiredSet(const FunctionInfo &fn)
    {
        auto it = acquiredMemo_.find(&fn);
        if (it != acquiredMemo_.end()) {
            return it->second;
        }
        // Insert an empty set first to break recursion cycles.
        std::set<std::string> &out = acquiredMemo_[&fn];
        for (const LockSite &lock : fn.locks) {
            out.insert(lock.mutexKey);
        }
        for (const CallSite &call : fn.calls) {
            if (call.inDispatchLambda) {
                continue; // runs later, not under this stack
            }
            for (const FunctionInfo *callee : ctx_.resolveCall(fn, call)) {
                const std::set<std::string> acquired =
                    acquiredSet(*callee);
                out.insert(acquired.begin(), acquired.end());
            }
        }
        return out;
    }

    /** Is this call itself a pool dispatch? */
    bool isDispatchCall(const CallSite &call) const
    {
        if (call.callee == "parallelFor") {
            return true;
        }
        if ((call.callee != "submit" && call.callee != "map") ||
            !call.memberCall || call.object.empty()) {
            return false;
        }
        std::set<std::string> types =
            ctx_.index.typeTokensFor(call.object);
        if (types.count("ThreadPool") != 0 ||
            types.count("ParallelExecutor") != 0) {
            return true;
        }
        if (!types.empty()) {
            return false; // known receiver of another type
        }
        // Unknown receiver (local variable): fall back to a name hint.
        std::string lowered = call.object;
        std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(std::tolower(c));
                       });
        return call.callee == "submit" &&
               (lowered.find("pool") != std::string::npos ||
                lowered.find("executor") != std::string::npos);
    }

    /** Does `fn` reach a pool dispatch, directly or via callees? */
    bool reachesDispatch(const FunctionInfo &fn)
    {
        auto it = dispatchMemo_.find(&fn);
        if (it != dispatchMemo_.end()) {
            return it->second;
        }
        dispatchMemo_[&fn] = false;
        for (const CallSite &call : fn.calls) {
            if (call.inDispatchLambda) {
                continue;
            }
            if (isDispatchCall(call)) {
                return dispatchMemo_[&fn] = true;
            }
            for (const FunctionInfo *callee : ctx_.resolveCall(fn, call)) {
                if (reachesDispatch(*callee)) {
                    return dispatchMemo_[&fn] = true;
                }
            }
        }
        return false;
    }

    void addEdge(const std::string &from, const std::string &to,
                 const std::string &file, int line,
                 const std::string &via)
    {
        edges_[from].insert(to);
        sites_.emplace(std::make_pair(from, to), EdgeSite{file, line, via});
    }

    void scanFunction(const std::string &path, const FunctionInfo &fn)
    {
        const bool dispatchExempt =
            pathAllowed(path, lockDispatchAllowedPaths);
        for (const LockSite &lock : fn.locks) {
            // Nested direct locks in the same function.
            for (const LockSite &inner : fn.locks) {
                if (inner.pos > lock.pos && inner.pos < lock.scopeEnd) {
                    addEdge(lock.mutexKey, inner.mutexKey, fn.file,
                            inner.line, fn.qualifiedName);
                }
            }
            for (const CallSite &call : fn.calls) {
                if (call.pos <= lock.pos || call.pos >= lock.scopeEnd ||
                    call.inDispatchLambda) {
                    continue;
                }
                if (!dispatchExempt && isDispatchCall(call)) {
                    ctx_.emit(fn.file, call.line, "lock-order",
                              "`" + lock.mutexExpr +
                                  "` is held across a ThreadPool/"
                                  "ParallelExecutor dispatch in " +
                                  fn.qualifiedName +
                                  "; collect the work under the lock, "
                                  "release it, then submit");
                    continue;
                }
                for (const FunctionInfo *callee :
                     ctx_.resolveCall(fn, call)) {
                    for (const std::string &acquired :
                         acquiredSet(*callee)) {
                        addEdge(lock.mutexKey, acquired, fn.file,
                                call.line,
                                fn.qualifiedName + " -> " +
                                    callee->qualifiedName);
                    }
                    if (!dispatchExempt && reachesDispatch(*callee)) {
                        ctx_.emit(
                            fn.file, call.line, "lock-order",
                            "`" + lock.mutexExpr + "` is held while `" +
                                callee->qualifiedName +
                                "` dispatches to the ThreadPool in " +
                                fn.qualifiedName +
                                "; collect the work under the lock, "
                                "release it, then submit");
                    }
                }
            }
        }
    }

    void reportCycles()
    {
        // Self-edges: re-acquiring a held mutex deadlocks outright.
        std::set<std::set<std::string>> reported;
        for (const auto &[from, tos] : edges_) {
            if (tos.count(from) != 0) {
                const EdgeSite &site = sites_.at({from, from});
                ctx_.emit(site.file, site.line, "lock-order",
                          "`" + from +
                              "` is re-acquired while already held "
                              "(via " + site.via + "): self-deadlock");
                reported.insert({from});
            }
        }
        // Two-step reachability: an edge a->b with a path b ->* a
        // closes a cycle.
        for (const auto &[from, tos] : edges_) {
            for (const std::string &to : tos) {
                if (to == from || !reaches(to, from)) {
                    continue;
                }
                std::set<std::string> key = {from, to};
                if (!reported.insert(key).second) {
                    continue;
                }
                const EdgeSite &site = sites_.at({from, to});
                ctx_.emit(site.file, site.line, "lock-order",
                          "lock-order cycle: `" + from + "` -> `" + to +
                              "` here (via " + site.via +
                              "), but another path acquires `" + from +
                              "` while holding `" + to +
                              "`; pick one global order");
            }
        }
    }

    bool reaches(const std::string &from, const std::string &target)
    {
        std::set<std::string> seen;
        std::vector<std::string> stack = {from};
        while (!stack.empty()) {
            std::string node = stack.back();
            stack.pop_back();
            if (node == target) {
                return true;
            }
            if (!seen.insert(node).second) {
                continue;
            }
            auto it = edges_.find(node);
            if (it == edges_.end()) {
                continue;
            }
            stack.insert(stack.end(), it->second.begin(),
                         it->second.end());
        }
        return false;
    }

    PassContext &ctx_;
    std::map<const FunctionInfo *, std::set<std::string>> acquiredMemo_;
    std::map<const FunctionInfo *, bool> dispatchMemo_;
    std::map<std::string, std::set<std::string>> edges_;
    std::map<std::pair<std::string, std::string>, EdgeSite> sites_;
};

// ---------------------------------------------------------------------------
// durability-ordering

class DurabilityPass
{
  public:
    explicit DurabilityPass(PassContext &ctx) : ctx_(ctx) {}

    void run()
    {
        for (const TuIndex &tu : ctx_.index.tus) {
            if (!underTrees(tu.path, durabilityTrees)) {
                continue;
            }
            for (const FunctionInfo &fn : tu.functions) {
                checkFunction(fn);
            }
        }
    }

  private:
    void checkFunction(const FunctionInfo &fn)
    {
        using Kind = DurabilityEvent::Kind;
        bool hasChecksum = false;
        for (const DurabilityEvent &e : fn.durability) {
            if (e.kind == Kind::Checksum) {
                hasChecksum = true;
            }
        }
        for (std::size_t i = 0; i < fn.durability.size(); ++i) {
            const DurabilityEvent &e = fn.durability[i];
            if (e.kind == Kind::Rename) {
                bool syncedBefore = false;
                for (std::size_t j = 0; j < i; ++j) {
                    Kind k = fn.durability[j].kind;
                    if (k == Kind::Sync || k == Kind::AtomicWrite) {
                        syncedBefore = true;
                        break;
                    }
                }
                if (!syncedBefore) {
                    ctx_.emit(fn.file, e.line, "durability-ordering",
                              "rename in " + fn.qualifiedName +
                                  " publishes a file with no fsync "
                                  "before it; a crash can expose an "
                                  "empty or torn file at the final "
                                  "path — sync the temp file first "
                                  "(or use atomicWriteFile)");
                }
            }
            if (e.kind == Kind::TruncateTo) {
                for (std::size_t j = i + 1; j < fn.durability.size();
                     ++j) {
                    Kind k = fn.durability[j].kind;
                    if (k == Kind::Sync) {
                        break;
                    }
                    if (k == Kind::Append) {
                        ctx_.emit(
                            fn.file, fn.durability[j].line,
                            "durability-ordering",
                            "append after truncateTo with no sync "
                            "between in " + fn.qualifiedName +
                                "; the truncate may still be in the "
                                "page cache when the append lands, so "
                                "a crash can resurrect stale bytes "
                                "past the new tail — sync after "
                                "truncating");
                        break;
                    }
                }
            }
            if (e.kind == Kind::ReadFile && !hasChecksum) {
                bool decodes = false;
                for (std::size_t j = i + 1; j < fn.durability.size();
                     ++j) {
                    if (fn.durability[j].kind == Kind::Decode) {
                        decodes = true;
                        break;
                    }
                }
                if (decodes) {
                    ctx_.emit(fn.file, e.line, "durability-ordering",
                              "persisted bytes are decoded in " +
                                  fn.qualifiedName +
                                  " without a checksum verification; "
                                  "a torn tail parses as garbage "
                                  "instead of being rejected — verify "
                                  "fnv1a64 before decoding");
                }
            }
        }
    }

    PassContext &ctx_;
};

} // namespace

const std::vector<std::string> &passRules()
{
    static const std::vector<std::string> rules = {
        "stream-lineage", "lock-order", "durability-ordering"};
    return rules;
}

std::vector<Finding> runPasses(const SemanticIndex &index)
{
    PassContext ctx{index, {}};
    StreamLineagePass(ctx).run();
    LockOrderPass(ctx).run();
    DurabilityPass(ctx).run();

    std::sort(ctx.findings.begin(), ctx.findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file) {
                      return a.file < b.file;
                  }
                  if (a.line != b.line) {
                      return a.line < b.line;
                  }
                  if (a.rule != b.rule) {
                      return a.rule < b.rule;
                  }
                  return a.message < b.message;
              });
    ctx.findings.erase(
        std::unique(ctx.findings.begin(), ctx.findings.end(),
                    [](const Finding &a, const Finding &b) {
                        return a.file == b.file && a.line == b.line &&
                               a.rule == b.rule &&
                               a.message == b.message;
                    }),
        ctx.findings.end());
    return ctx.findings;
}

} // namespace qlint
