/**
 * @file
 * Shared helpers for the qismet-lint test suites: fixture paths,
 * rule-filtered finding queries, and the fixture harness itself.
 *
 * The harness accepts two fixture shapes:
 *  - a single file (`bad_naked_new.cpp`): linted per-file;
 *  - a directory (`multi_tu/sl_reuse`): a miniature source tree whose
 *    files are loaded with paths *relative to the case root* (so
 *    `src/serve/...` scoping applies wherever the repo is checked
 *    out), linted per-file AND run through the cross-TU passes over a
 *    semantic index of the whole case.
 */

#ifndef QISMET_TOOLS_LINT_TEST_SUPPORT_HPP
#define QISMET_TOOLS_LINT_TEST_SUPPORT_HPP

#include "lint_rules.hpp"
#include "passes.hpp"
#include "semantic_index.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace qlint_test {

inline std::string fixture(const std::string &name)
{
    return std::string(QISMET_LINT_FIXTURE_DIR) + "/" + name;
}

inline std::string readWhole(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Fixture file content, for lintSource runs under a synthetic path. */
inline std::string fixtureSource(const std::string &name)
{
    return readWhole(fixture(name));
}

/**
 * All lintable files of a directory fixture as (relative path, content)
 * pairs, sorted by path for deterministic indexing order.
 */
inline std::vector<std::pair<std::string, std::string>>
loadFixtureTree(const std::string &name)
{
    namespace fs = std::filesystem;
    const fs::path root = fixture(name);
    std::vector<std::pair<std::string, std::string>> files;
    for (const auto &entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file() ||
            !qlint::isLintablePath(entry.path().string())) {
            continue;
        }
        std::string rel =
            fs::relative(entry.path(), root).generic_string();
        files.emplace_back(std::move(rel),
                           readWhole(entry.path().string()));
    }
    std::sort(files.begin(), files.end());
    return files;
}

/**
 * Run the full linter over a fixture: per-file rules on every file,
 * plus the cross-TU passes when the fixture is a directory.
 */
inline std::vector<qlint::Finding>
lintFixture(const std::string &name)
{
    namespace fs = std::filesystem;
    const std::string path = fixture(name);
    if (!fs::is_directory(path)) {
        return qlint::lintFile(path);
    }
    std::vector<qlint::Finding> findings;
    const auto files = loadFixtureTree(name);
    for (const auto &[rel, content] : files) {
        for (qlint::Finding f : qlint::lintSource(rel, content)) {
            findings.push_back(std::move(f));
        }
    }
    for (qlint::Finding f :
         qlint::runPasses(qlint::buildIndex(files))) {
        findings.push_back(std::move(f));
    }
    return findings;
}

inline std::vector<qlint::Finding>
ruleFindings(const std::vector<qlint::Finding> &all,
             const std::string &rule)
{
    std::vector<qlint::Finding> out;
    std::copy_if(all.begin(), all.end(), std::back_inserter(out),
                 [&](const qlint::Finding &f) { return f.rule == rule; });
    return out;
}

inline int countRule(const std::string &path, const std::string &source,
                     const std::string &rule)
{
    return static_cast<int>(
        ruleFindings(qlint::lintSource(path, source), rule).size());
}

/** Index + passes over in-memory (path, content) pairs. */
inline std::vector<qlint::Finding>
passFindings(const std::vector<std::pair<std::string, std::string>> &files)
{
    return qlint::runPasses(qlint::buildIndex(files));
}

} // namespace qlint_test

#endif // QISMET_TOOLS_LINT_TEST_SUPPORT_HPP
