#include "sarif.hpp"

#include "rule_docs.hpp"

#include <cstdio>

namespace qlint {

std::string jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string renderSarif(const std::vector<Finding> &findings)
{
    std::string out;
    out += "{\n";
    out += "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
    out += "  \"version\": \"2.1.0\",\n";
    out += "  \"runs\": [\n    {\n";
    out += "      \"tool\": {\n        \"driver\": {\n";
    out += "          \"name\": \"qismet-lint\",\n";
    out += "          \"informationUri\": "
           "\"tools/qismet-lint/RULES.md\",\n";
    out += "          \"rules\": [\n";
    const std::vector<RuleDoc> &docs = allRuleDocs();
    for (std::size_t i = 0; i < docs.size(); ++i) {
        const RuleDoc &doc = docs[i];
        out += "            {\n";
        out += "              \"id\": \"" + jsonEscape(doc.id) + "\",\n";
        out += "              \"shortDescription\": { \"text\": \"" +
               jsonEscape(doc.shortText) + "\" },\n";
        out += "              \"fullDescription\": { \"text\": \"" +
               jsonEscape(doc.fullText) + "\" },\n";
        out += "              \"defaultConfiguration\": { \"level\": "
               "\"error\" }\n";
        out += i + 1 < docs.size() ? "            },\n"
                                   : "            }\n";
    }
    out += "          ]\n        }\n      },\n";
    out += "      \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out += "        {\n";
        out += "          \"ruleId\": \"" + jsonEscape(f.rule) + "\",\n";
        out += "          \"level\": \"error\",\n";
        out += "          \"message\": { \"text\": \"" +
               jsonEscape(f.message) + "\" },\n";
        out += "          \"locations\": [\n            {\n";
        out += "              \"physicalLocation\": {\n";
        out += "                \"artifactLocation\": { \"uri\": \"" +
               jsonEscape(f.file) + "\" },\n";
        out += "                \"region\": { \"startLine\": " +
               std::to_string(f.line < 1 ? 1 : f.line) + " }\n";
        out += "              }\n            }\n          ]\n";
        out += i + 1 < findings.size() ? "        },\n" : "        }\n";
    }
    out += "      ]\n    }\n  ]\n}\n";
    return out;
}

} // namespace qlint
