/**
 * @file
 * Rule documentation registry: one entry per rule, shared by the SARIF
 * emitter (tool.driver.rules metadata), the `--explain <rule>` CLI mode
 * and the generated RULES.md. Keeping the prose here means the three
 * outputs can never drift apart.
 */

#ifndef QISMET_TOOLS_LINT_RULE_DOCS_HPP
#define QISMET_TOOLS_LINT_RULE_DOCS_HPP

#include <string>
#include <vector>

namespace qlint {

/** Documentation for one lint rule. */
struct RuleDoc
{
    std::string id;        ///< Rule slug, e.g. "stream-lineage".
    std::string shortText; ///< One-sentence summary (SARIF shortDescription).
    std::string fullText;  ///< Full rationale: why, what breaks, how to fix.
    std::string scope;     ///< Which paths the rule applies to.
    std::string crossTu;   ///< "per-file" or "cross-TU".
    std::string badExample;  ///< Code that trips the rule.
    std::string goodExample; ///< The compliant rewrite.
};

/** Docs for every rule, in allRules() order. */
const std::vector<RuleDoc> &allRuleDocs();

/** Doc for one rule, or nullptr for an unknown slug. */
const RuleDoc *findRuleDoc(const std::string &id);

/** `--explain` output for one rule: the doc rendered for a terminal. */
std::string explainRule(const RuleDoc &doc);

/** The full RULES.md content generated from the registry. */
std::string renderRulesMarkdown();

} // namespace qlint

#endif // QISMET_TOOLS_LINT_RULE_DOCS_HPP
