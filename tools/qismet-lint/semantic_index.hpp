/**
 * @file
 * Phase 1 of the cross-translation-unit analyzer: a lightweight
 * semantic index of the source tree.
 *
 * The per-file rules in lint_rules.cpp see one translation unit at a
 * time, which is enough for lexical invariants (no std::thread, no
 * naked new) but blind to the bugs that live *between* files: a helper
 * in one TU that advances an Rng handed to it by a dispatch loop in
 * another, a mutex acquisition order split across two headers, an
 * affine seed packing computed three calls away from the
 * deriveStreamSeed it feeds. The index makes those visible without a
 * real C++ frontend: it records, per TU,
 *
 *  - function definitions (free and member, in-class and out-of-line),
 *    with their parameter lists and which parameters are `Rng`s;
 *  - every call site inside each body — callee name, receiver object,
 *    argument expressions, and whether the call sits inside a lambda
 *    handed to ThreadPool::submit / ParallelExecutor::parallelFor/map;
 *  - RAII lock-guard scopes (`std::lock_guard` / `unique_lock` /
 *    `scoped_lock`), with the guarded mutex resolved to a
 *    class-qualified identity via member-declaration tracking;
 *  - durability events (DurableFile::append/sync/truncateTo, rename,
 *    atomicWriteFile, readFile, checksum and decode calls), in body
 *    order;
 *  - which Rng-typed locals/parameters each function *consumes*
 *    (advances) directly.
 *
 * Phase 2 (passes.cpp) runs dataflow queries over this index. The
 * parser is heuristic by design — it lexes rather than parses — and is
 * tuned to the project's house style (clang-format, out-of-line
 * definitions in .cpp, inline methods in headers). Shapes it cannot
 * resolve degrade to "no finding", never to a crash.
 */

#ifndef QISMET_TOOLS_LINT_SEMANTIC_INDEX_HPP
#define QISMET_TOOLS_LINT_SEMANTIC_INDEX_HPP

#include "source_model.hpp"

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace qlint {

/** One declared parameter of an indexed function. */
struct ParamInfo
{
    std::string name; ///< Empty for unnamed parameters.
    std::string type; ///< Raw (scrubbed) declaration text.
    bool isRng = false; ///< Type mentions `Rng` (not `RngState`).
};

/** One call site inside a function body. */
struct CallSite
{
    std::string callee;    ///< Last identifier of the callee expression.
    std::string qualifier; ///< `std`, a class name, or "".
    std::string object;    ///< Receiver identifier for member calls.
    bool memberCall = false;
    int line = 0;
    std::size_t pos = 0; ///< Offset of the callee token in the TU text.
    std::vector<std::string> args; ///< Trimmed argument expressions.
    /** True when the call sits inside a lambda body that is itself an
     *  argument of a ThreadPool/ParallelExecutor dispatch call. */
    bool inDispatchLambda = false;
    /** True when the call sits inside any lambda body. */
    bool inLambda = false;
};

/** One RAII lock scope (`std::lock_guard<std::mutex> l(m_);` etc.). */
struct LockSite
{
    std::string mutexExpr; ///< Raw first-argument text, e.g. `mutex_`.
    std::string mutexKey;  ///< Qualified identity, e.g. `ThreadPool::mutex_`.
    int line = 0;
    std::size_t pos = 0;      ///< Offset of the guard token.
    std::size_t scopeEnd = 0; ///< Offset of the enclosing block's `}`.
};

/** Ordered durability-relevant event inside a function body. */
struct DurabilityEvent
{
    enum class Kind
    {
        Append,     ///< DurableFile-style `.append(...)`.
        Sync,       ///< `.sync()` / `fsync(...)` / `fdatasync(...)`.
        TruncateTo, ///< `.truncateTo(...)` / `ftruncate(...)`.
        Rename,     ///< `rename(...)` (std::filesystem or C).
        AtomicWrite,///< `atomicWriteFile(...)` (already safe).
        ReadFile,   ///< `readFile(...)` of persisted bytes.
        Checksum,   ///< `fnv1a64(...)` or a `*hecksum*` call.
        Decode,     ///< `Decoder` construction or `.decode(...)`.
    };
    Kind kind;
    std::string object; ///< Receiver identifier, if a member call.
    int line = 0;
    std::size_t pos = 0;
};

/** One lambda body inside a function. */
struct LambdaRange
{
    std::size_t begin = 0; ///< Offset of the lambda body `{`.
    std::size_t end = 0;   ///< Offset of the matching `}`.
    /** True when the lambda is an argument of a dispatch call. */
    bool dispatch = false;
};

/** One function definition (free or member). */
struct FunctionInfo
{
    std::string name;          ///< Unqualified name.
    std::string className;     ///< Enclosing/qualifying class, or "".
    std::string qualifiedName; ///< `Class::name` or `name`.
    std::string file;
    int line = 0;
    std::size_t bodyBegin = 0; ///< Offset of the body `{`.
    std::size_t bodyEnd = 0;   ///< Offset of the body `}`.
    std::vector<ParamInfo> params;
    std::vector<CallSite> calls;
    std::vector<LockSite> locks;
    std::vector<LambdaRange> lambdas;
    std::vector<DurabilityEvent> durability;
    /** Rng-typed locals declared in the body, name -> declaration offset. */
    std::map<std::string, std::size_t> localRngVars;
    /** Identifiers (params/locals) whose stream this function advances
     *  directly (uniform/normal/split/... receivers). */
    std::set<std::string> consumedRngs;

    /** Index of the parameter named `name`, or npos. */
    std::size_t paramIndex(const std::string &name) const;
};

/** Index of one translation unit. */
struct TuIndex
{
    std::string path;
    Scrubbed scrubbed; ///< Kept for escape lookups and text access.
    std::vector<FunctionInfo> functions;
    /** Mutex-typed member/field name -> owning class. */
    std::map<std::string, std::string> mutexOwners;
    /** Member variable name -> class-name tokens from its declared type
     *  (used to disambiguate same-named methods by receiver). */
    std::map<std::string, std::set<std::string>> memberTypeTokens;
};

/** The whole-tree index phase 2 operates on. */
struct SemanticIndex
{
    std::vector<TuIndex> tus;

    /** All definitions with the given unqualified name. */
    std::vector<const FunctionInfo *>
    resolve(const std::string &name) const;

    /** Definitions named `name`, restricted to classes in `classes`
     *  when that narrows to at least one; otherwise all of them. */
    std::vector<const FunctionInfo *>
    resolve(const std::string &name,
            const std::set<std::string> &classes) const;

    /** Union of memberTypeTokens across TUs for `object`, or empty. */
    std::set<std::string> typeTokensFor(const std::string &object) const;

    /** True when an escape suppresses `rule` at `file`:`line`. */
    bool allowed(const std::string &file, const std::string &rule,
                 int line) const;

  private:
    friend SemanticIndex
    buildIndex(const std::vector<std::pair<std::string, std::string>> &);
    std::multimap<std::string, const FunctionInfo *> byName_;
};

/**
 * Build the index over (path, content) pairs. Paths are normalized to
 * forward slashes; content is scrubbed and parsed heuristically.
 */
SemanticIndex
buildIndex(const std::vector<std::pair<std::string, std::string>> &files);

} // namespace qlint

#endif // QISMET_TOOLS_LINT_SEMANTIC_INDEX_HPP
