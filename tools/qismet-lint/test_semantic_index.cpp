/**
 * @file
 * Tests for the cross-TU analyzer: the semantic index (phase 1), the
 * three dataflow passes (phase 2), the SARIF emitter, the baseline
 * diff, and the rule-doc registry. In-memory multi-file cases cover
 * the fine-grained positive/negative shapes; the on-disk multi_tu/
 * directory fixtures (driven from test_qismet_lint.cpp) cover the
 * end-to-end harness.
 */

#include "baseline.hpp"
#include "passes.hpp"
#include "rule_docs.hpp"
#include "sarif.hpp"
#include "semantic_index.hpp"
#include "test_support.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace {

using qlint::buildIndex;
using qlint::Finding;
using qlint::FunctionInfo;
using qlint::SemanticIndex;
using qlint_test::passFindings;
using qlint_test::ruleFindings;

using Files = std::vector<std::pair<std::string, std::string>>;

const FunctionInfo *findFn(const SemanticIndex &index,
                           const std::string &qualified)
{
    for (const auto &tu : index.tus) {
        for (const FunctionInfo &fn : tu.functions) {
            if (fn.qualifiedName == qualified) {
                return &fn;
            }
        }
    }
    return nullptr;
}

// ---- phase 1: the semantic index -----------------------------------------

TEST(SemanticIndex, IndexesFreeAndMemberFunctions)
{
    const SemanticIndex index = buildIndex({
        {"src/serve/a.hpp", R"(
            class Widget
            {
              public:
                int size() const { return size_; }
                void resize(int next);
              private:
                int size_ = 0;
            };
            int freeHelper(double x) { return static_cast<int>(x); }
        )"},
        {"src/serve/a.cpp", R"(
            #include "serve/a.hpp"
            void Widget::resize(int next)
            {
                size_ = freeHelper(next * 2.0);
            }
        )"},
    });
    ASSERT_NE(findFn(index, "Widget::size"), nullptr);
    ASSERT_NE(findFn(index, "freeHelper"), nullptr);
    const FunctionInfo *resize = findFn(index, "Widget::resize");
    ASSERT_NE(resize, nullptr);
    EXPECT_EQ(resize->file, "src/serve/a.cpp");
    EXPECT_EQ(resize->className, "Widget");
    ASSERT_EQ(resize->params.size(), 1u);
    EXPECT_EQ(resize->params[0].name, "next");
    ASSERT_EQ(resize->calls.size(), 1u);
    EXPECT_EQ(resize->calls[0].callee, "freeHelper");
}

TEST(SemanticIndex, ConstructorInitializerListIsNotAFunction)
{
    const SemanticIndex index = buildIndex({
        {"src/serve/b.cpp", R"(
            Engine::Engine(Config config)
                : config_(std::move(config)),
                  pool_(config_.backends, config_.seed),
                  core_(pool_)
            {
                start();
            }
        )"},
    });
    EXPECT_NE(findFn(index, "Engine::Engine"), nullptr);
    // The last initializer (`core_(pool_) {`) must not be misread as a
    // function definition owning the constructor body.
    EXPECT_EQ(findFn(index, "core_"), nullptr);
    EXPECT_EQ(findFn(index, "Engine::core_"), nullptr);
}

TEST(SemanticIndex, DeclarationsAndCallsAreNotDefinitions)
{
    const SemanticIndex index = buildIndex({
        {"src/serve/c.cpp", R"(
            int declared(int x);
            void caller()
            {
                declared(4);
                other.method(5);
            }
        )"},
    });
    EXPECT_EQ(findFn(index, "declared"), nullptr);
    const FunctionInfo *caller = findFn(index, "caller");
    ASSERT_NE(caller, nullptr);
    ASSERT_EQ(caller->calls.size(), 2u);
    EXPECT_FALSE(caller->calls[0].memberCall);
    EXPECT_TRUE(caller->calls[1].memberCall);
    EXPECT_EQ(caller->calls[1].object, "other");
}

TEST(SemanticIndex, RngParamsLocalsAndConsumptionAreTracked)
{
    const SemanticIndex index = buildIndex({
        {"src/serve/d.cpp", R"(
            double sample(Rng &rng, const RngState &state, int n)
            {
                Rng local = rng.splitAt(0);
                double v = local.uniform();
                return v + static_cast<double>(n);
            }
        )"},
    });
    const FunctionInfo *fn = findFn(index, "sample");
    ASSERT_NE(fn, nullptr);
    ASSERT_EQ(fn->params.size(), 3u);
    EXPECT_TRUE(fn->params[0].isRng);
    EXPECT_FALSE(fn->params[1].isRng) << "RngState is not an Rng";
    EXPECT_FALSE(fn->params[2].isRng);
    EXPECT_EQ(fn->localRngVars.count("local"), 1u);
    // splitAt is const (non-advancing); uniform() consumes.
    EXPECT_EQ(fn->consumedRngs.count("rng"), 0u);
    EXPECT_EQ(fn->consumedRngs.count("local"), 1u);
}

TEST(SemanticIndex, MutexOwnersResolveAcrossTranslationUnits)
{
    const SemanticIndex index = buildIndex({
        {"src/serve/e.hpp", R"(
            #include <mutex>
            class Keeper
            {
              public:
                void touch();
              private:
                std::mutex mutex_;
                long count_ = 0;
            };
        )"},
        {"src/serve/e.cpp", R"(
            #include "serve/e.hpp"
            void Keeper::touch()
            {
                std::lock_guard<std::mutex> guard(mutex_);
                ++count_;
            }
        )"},
    });
    const FunctionInfo *touch = findFn(index, "Keeper::touch");
    ASSERT_NE(touch, nullptr);
    ASSERT_EQ(touch->locks.size(), 1u);
    // The member is declared in e.hpp; the lock is in e.cpp.
    EXPECT_EQ(touch->locks[0].mutexKey, "Keeper::mutex_");
}

TEST(SemanticIndex, MemberTypeTokensDisambiguateReceivers)
{
    const SemanticIndex index = buildIndex({
        {"src/serve/f.hpp", R"(
            #include <memory>
            class Owner
            {
              private:
                std::unique_ptr<ThreadPool> pool_;
                std::shared_ptr<Registry> registry_;
            };
        )"},
    });
    EXPECT_EQ(index.typeTokensFor("pool_").count("ThreadPool"), 1u);
    EXPECT_EQ(index.typeTokensFor("registry_").count("Registry"), 1u);
    EXPECT_TRUE(index.typeTokensFor("unknown_").empty());
}

TEST(SemanticIndex, DispatchLambdaCallsAreFlagged)
{
    const SemanticIndex index = buildIndex({
        {"src/serve/g.cpp", R"(
            void fanOut(ThreadPool &pool, Rng &rng)
            {
                before(rng);
                pool.submit([&] { inside(rng); });
                after(rng);
            }
        )"},
    });
    const FunctionInfo *fn = findFn(index, "fanOut");
    ASSERT_NE(fn, nullptr);
    ASSERT_EQ(fn->lambdas.size(), 1u);
    EXPECT_TRUE(fn->lambdas[0].dispatch);
    bool sawInside = false;
    for (const auto &call : fn->calls) {
        if (call.callee == "inside") {
            sawInside = true;
            EXPECT_TRUE(call.inDispatchLambda);
        }
        if (call.callee == "before" || call.callee == "after") {
            EXPECT_FALSE(call.inDispatchLambda) << call.callee;
        }
    }
    EXPECT_TRUE(sawInside);
}

TEST(SemanticIndex, DurabilityEventsAreOrderedByPosition)
{
    const SemanticIndex index = buildIndex({
        {"src/persist/h.cpp", R"(
            void writeFrame(DurableFile &file, const Bytes &frame)
            {
                file.append(frame);
                file.sync();
            }
        )"},
    });
    const FunctionInfo *fn = findFn(index, "writeFrame");
    ASSERT_NE(fn, nullptr);
    ASSERT_EQ(fn->durability.size(), 2u);
    using Kind = qlint::DurabilityEvent::Kind;
    EXPECT_EQ(fn->durability[0].kind, Kind::Append);
    EXPECT_EQ(fn->durability[1].kind, Kind::Sync);
    EXPECT_LT(fn->durability[0].pos, fn->durability[1].pos);
}

// ---- stream-lineage ------------------------------------------------------

TEST(StreamLineage, FlagsDoubleConsumptionAcrossThreeTus)
{
    const Files files = {
        {"src/serve/draw.hpp",
         "inline double drawOne(Rng &rng) { return rng.uniform(); }"},
        {"src/serve/forward.hpp",
         "inline double forwardDraw(Rng &rng) { return drawOne(rng); }"},
        {"src/serve/caller.cpp", R"(
            double schedule(Rng &rng)
            {
                double a = forwardDraw(rng);
                double b = drawOne(rng);
                return a - b;
            }
        )"},
    };
    const auto hits =
        ruleFindings(passFindings(files), "stream-lineage");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].file, "src/serve/caller.cpp");
    EXPECT_NE(hits[0].message.find("rng"), std::string::npos);
}

TEST(StreamLineage, FlagsOuterDrawInsideDispatchLambda)
{
    const Files files = {
        {"src/vqe/fan.cpp", R"(
            void fanOut(ThreadPool &pool, Rng &rng, double *out)
            {
                for (int i = 0; i < 4; ++i) {
                    pool.submit([&, i] { out[i] = rng.uniform(); });
                }
            }
        )"},
    };
    const auto hits =
        ruleFindings(passFindings(files), "stream-lineage");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("scheduling"), std::string::npos);
}

TEST(StreamLineage, FlagsOuterStreamPassedToConsumerInDispatch)
{
    const Files files = {
        {"src/serve/noise.hpp",
         "inline double noisy(Rng &rng) { return rng.normal(); }"},
        {"src/serve/fan.cpp", R"(
            void fanOut(ThreadPool &pool, Rng &rng, double *out)
            {
                pool.submit([&] { out[0] = noisy(rng); });
            }
        )"},
    };
    const auto hits =
        ruleFindings(passFindings(files), "stream-lineage");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("noisy"), std::string::npos);
}

TEST(StreamLineage, FlagsAffinePackingCrossingIntoDerivation)
{
    const Files files = {
        {"src/serve/seed_util.hpp", R"(
            inline std::uint64_t makeSeed(std::uint64_t root,
                                          std::uint64_t index)
            {
                return deriveStreamSeed(root, StreamDomain::kServeRun,
                                        index);
            }
        )"},
        {"src/serve/jobs.cpp", R"(
            std::uint64_t jobSeed(std::uint64_t root,
                                  std::uint64_t tenant,
                                  std::uint64_t run)
            {
                return makeSeed(root, tenant * 4096 + run);
            }
        )"},
    };
    const auto hits =
        ruleFindings(passFindings(files), "stream-lineage");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].file, "src/serve/jobs.cpp");
    EXPECT_NE(hits[0].message.find("makeSeed"), std::string::npos);
}

TEST(StreamLineage, SilentWhenSubstreamsAreDerivedFirst)
{
    const Files files = {
        {"src/serve/draw.hpp",
         "inline double drawOne(Rng &rng) { return rng.uniform(); }"},
        {"src/serve/caller.cpp", R"(
            double schedule(const Rng &rng)
            {
                Rng first = rng.splitAt(0);
                Rng second = rng.splitAt(1);
                return drawOne(first) - drawOne(second);
            }
        )"},
    };
    EXPECT_TRUE(
        ruleFindings(passFindings(files), "stream-lineage").empty());
}

TEST(StreamLineage, SilentForTaskLocalStreamsAndRawIds)
{
    const Files files = {
        {"src/serve/seed_util.hpp", R"(
            inline std::uint64_t makeSeed(std::uint64_t root,
                                          std::uint64_t index)
            {
                return deriveStreamSeed(root, StreamDomain::kServeRun,
                                        index);
            }
        )"},
        {"src/serve/fan.cpp", R"(
            void fanOut(ThreadPool &pool, std::uint64_t root,
                        double *out)
            {
                for (std::uint64_t i = 0; i < 4; ++i) {
                    pool.submit([&, i] {
                        Rng task(makeSeed(root, i));
                        out[i] = task.uniform();
                    });
                }
            }
        )"},
    };
    EXPECT_TRUE(
        ruleFindings(passFindings(files), "stream-lineage").empty());
}

TEST(StreamLineage, SilentOutsideScopedTrees)
{
    // The same double-consumption shape in src/vqe (sequential layer)
    // is legitimate historical style — only serve/persist/fault are
    // scoped for the reuse check.
    const Files files = {
        {"src/vqe/draw.hpp",
         "inline double drawOne(Rng &rng) { return rng.uniform(); }"},
        {"src/vqe/caller.cpp", R"(
            double schedule(Rng &rng)
            {
                return drawOne(rng) - drawOne(rng);
            }
        )"},
    };
    EXPECT_TRUE(
        ruleFindings(passFindings(files), "stream-lineage").empty());
}

TEST(StreamLineage, EscapeSuppressesReuseFinding)
{
    const Files files = {
        {"src/serve/draw.hpp",
         "inline double drawOne(Rng &rng) { return rng.uniform(); }"},
        {"src/serve/caller.cpp", R"(
            double schedule(Rng &rng)
            {
                double a = drawOne(rng);
                // qismet-lint: allow(stream-lineage)
                double b = drawOne(rng);
                return a - b;
            }
        )"},
    };
    EXPECT_TRUE(
        ruleFindings(passFindings(files), "stream-lineage").empty());
}

// ---- lock-order ----------------------------------------------------------

TEST(LockOrder, FlagsCycleAcrossHeaders)
{
    const auto hits = ruleFindings(
        passFindings(qlint_test::loadFixtureTree("multi_tu/lo_cycle")),
        "lock-order");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("cycle"), std::string::npos);
}

TEST(LockOrder, FlagsDirectSubmitUnderLock)
{
    const Files files = {
        {"src/serve/q.hpp", R"(
            #include <memory>
            #include <mutex>
            class Q
            {
              public:
                void push();
              private:
                std::mutex mutex_;
                std::unique_ptr<ThreadPool> pool_;
            };
        )"},
        {"src/serve/q.cpp", R"(
            #include "serve/q.hpp"
            void Q::push()
            {
                std::lock_guard<std::mutex> guard(mutex_);
                pool_->submit([] {});
            }
        )"},
    };
    const auto hits = ruleFindings(passFindings(files), "lock-order");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].file, "src/serve/q.cpp");
}

TEST(LockOrder, FlagsTransitiveDispatchUnderLock)
{
    const Files files = {
        {"src/serve/q.hpp", R"(
            #include <memory>
            #include <mutex>
            class Q
            {
              public:
                void push();
              private:
                void pumpLocked();
                std::mutex mutex_;
                std::unique_ptr<ThreadPool> pool_;
            };
        )"},
        {"src/serve/q.cpp", R"(
            #include "serve/q.hpp"
            void Q::pumpLocked() { pool_->submit([] {}); }
            void Q::push()
            {
                std::lock_guard<std::mutex> guard(mutex_);
                pumpLocked();
            }
        )"},
    };
    const auto hits = ruleFindings(passFindings(files), "lock-order");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("pumpLocked"), std::string::npos);
}

TEST(LockOrder, FlagsSelfReacquisition)
{
    const Files files = {
        {"src/serve/r.hpp", R"(
            #include <mutex>
            class R
            {
              public:
                void outer();
                void inner();
              private:
                std::mutex mutex_;
                long count_ = 0;
            };
        )"},
        {"src/serve/r.cpp", R"(
            #include "serve/r.hpp"
            void R::inner()
            {
                std::lock_guard<std::mutex> guard(mutex_);
                ++count_;
            }
            void R::outer()
            {
                std::lock_guard<std::mutex> guard(mutex_);
                inner();
            }
        )"},
    };
    const auto hits = ruleFindings(passFindings(files), "lock-order");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("re-acquired"), std::string::npos);
}

TEST(LockOrder, SilentWhenDispatchFollowsLockScope)
{
    const auto hits = ruleFindings(
        passFindings(
            qlint_test::loadFixtureTree("multi_tu/clean_tree")),
        "lock-order");
    EXPECT_TRUE(hits.empty());
}

TEST(LockOrder, SilentForConsistentNestingOrder)
{
    // A -> B nesting from two call paths is fine as long as nothing
    // ever takes B before A.
    const Files files = {
        {"src/serve/s.hpp", R"(
            #include <mutex>
            class S
            {
              public:
                void viaOne();
                void viaTwo();
              private:
                void innerLocked();
                std::mutex outerMutex_;
                std::mutex innerMutex_;
                long count_ = 0;
            };
        )"},
        {"src/serve/s.cpp", R"(
            #include "serve/s.hpp"
            void S::innerLocked()
            {
                std::lock_guard<std::mutex> guard(innerMutex_);
                ++count_;
            }
            void S::viaOne()
            {
                std::lock_guard<std::mutex> guard(outerMutex_);
                innerLocked();
            }
            void S::viaTwo()
            {
                std::lock_guard<std::mutex> guard(outerMutex_);
                innerLocked();
            }
        )"},
    };
    EXPECT_TRUE(
        ruleFindings(passFindings(files), "lock-order").empty());
}

TEST(LockOrder, ThreadPoolInternalsAreExemptFromDispatchCheck)
{
    const Files files = {
        {"src/common/thread_pool.cpp", R"(
            void ParallelExecutor::warm()
            {
                std::lock_guard<std::mutex> guard(poolInit_);
                pool_->submit([] {});
            }
        )"},
    };
    EXPECT_TRUE(
        ruleFindings(passFindings(files), "lock-order").empty());
}

// ---- durability-ordering -------------------------------------------------

TEST(DurabilityOrdering, FlagsRenameWithoutSync)
{
    const Files files = {
        {"src/persist/p.cpp", R"(
            void publish(const std::string &tmp, const std::string &dst)
            {
                std::filesystem::rename(tmp, dst);
            }
        )"},
    };
    const auto hits =
        ruleFindings(passFindings(files), "durability-ordering");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("rename"), std::string::npos);
}

TEST(DurabilityOrdering, FlagsAppendAfterTruncateWithoutSync)
{
    const Files files = {
        {"src/persist/p.cpp", R"(
            void compact(DurableFile &file, std::uint64_t offset,
                         const Bytes &frame)
            {
                file.truncateTo(offset);
                file.append(frame);
            }
        )"},
    };
    const auto hits =
        ruleFindings(passFindings(files), "durability-ordering");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("truncate"), std::string::npos);
}

TEST(DurabilityOrdering, FlagsChecksumFreeDecode)
{
    const Files files = {
        {"src/serve/p.cpp", R"(
            std::uint64_t load(const std::string &path)
            {
                const std::string bytes = readFile(path);
                Decoder dec(bytes);
                return dec.readU64();
            }
        )"},
    };
    const auto hits =
        ruleFindings(passFindings(files), "durability-ordering");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("checksum"), std::string::npos);
}

TEST(DurabilityOrdering, SilentForDisciplinedOrdering)
{
    const auto hits = ruleFindings(
        passFindings(
            qlint_test::loadFixtureTree("multi_tu/clean_tree")),
        "durability-ordering");
    EXPECT_TRUE(hits.empty());
}

TEST(DurabilityOrdering, SilentOutsideDurabilityTrees)
{
    // Scratch I/O in tools and tests is free to skip the discipline.
    const Files files = {
        {"src/common/scratch.cpp", R"(
            void publish(const std::string &tmp, const std::string &dst)
            {
                std::filesystem::rename(tmp, dst);
            }
        )"},
        {"tools/gen.cpp", R"(
            void publish2(const std::string &tmp, const std::string &dst)
            {
                std::filesystem::rename(tmp, dst);
            }
        )"},
    };
    EXPECT_TRUE(
        ruleFindings(passFindings(files), "durability-ordering")
            .empty());
}

TEST(DurabilityOrdering, SilentWhenReadIsNeverDecoded)
{
    const Files files = {
        {"src/persist/p.cpp", R"(
            std::string slurp(const std::string &path)
            {
                return readFile(path);
            }
        )"},
    };
    EXPECT_TRUE(
        ruleFindings(passFindings(files), "durability-ordering")
            .empty());
}

// ---- SARIF ---------------------------------------------------------------

TEST(Sarif, DocumentHasRequiredStructure)
{
    const std::vector<Finding> findings = {
        {"src/serve/x.cpp", 12, "lock-order", "held across \"submit\""},
        {"src/persist/y.cpp", 3, "durability-ordering", "no sync"},
    };
    const std::string doc = qlint::renderSarif(findings);
    EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(doc.find("sarif-2.1.0.json"), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"qismet-lint\""), std::string::npos);
    // Every registered rule appears in the driver metadata.
    for (const auto &doc2 : qlint::allRuleDocs()) {
        EXPECT_NE(doc.find("\"id\": \"" + doc2.id + "\""),
                  std::string::npos)
            << doc2.id;
    }
    // Both results, with escaped message content and locations.
    EXPECT_NE(doc.find("\"ruleId\": \"lock-order\""), std::string::npos);
    EXPECT_NE(doc.find("held across \\\"submit\\\""), std::string::npos);
    EXPECT_NE(doc.find("\"startLine\": 12"), std::string::npos);
    EXPECT_NE(doc.find("\"uri\": \"src/persist/y.cpp\""),
              std::string::npos);
}

TEST(Sarif, EmptyFindingsStillValidDocument)
{
    const std::string doc = qlint::renderSarif({});
    EXPECT_NE(doc.find("\"results\": [\n      ]"), std::string::npos);
    EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
}

TEST(Sarif, JsonEscapeHandlesControlCharacters)
{
    EXPECT_EQ(qlint::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(qlint::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

// ---- baseline ------------------------------------------------------------

TEST(Baseline, RoundTripsThroughJson)
{
    const std::vector<Finding> findings = {
        {"src/a.cpp", 1, "lock-order", "m1"},
        {"src/a.cpp", 9, "lock-order", "m2"},
        {"src/b.cpp", 2, "stream-lineage", "m3"},
    };
    const qlint::Baseline base =
        qlint::baselineFromFindings(findings);
    const std::string json = qlint::renderBaseline(base);
    const qlint::Baseline parsed = qlint::parseBaseline(json);
    EXPECT_EQ(parsed, base);
    EXPECT_EQ(parsed.at({"src/a.cpp", "lock-order"}), 2);
    EXPECT_EQ(parsed.at({"src/b.cpp", "stream-lineage"}), 1);
}

TEST(Baseline, EmptyBaselineRoundTrips)
{
    const std::string json = qlint::renderBaseline({});
    EXPECT_TRUE(qlint::parseBaseline(json).empty());
}

TEST(Baseline, DiffReportsOnlyFindingsBeyondBaseline)
{
    const qlint::Baseline base = {
        {{"src/a.cpp", "lock-order"}, 1},
    };
    const std::vector<Finding> findings = {
        {"src/a.cpp", 5, "lock-order", "old"},
        {"src/a.cpp", 42, "lock-order", "new"},
        {"src/c.cpp", 7, "durability-ordering", "brand new"},
    };
    const auto fresh = qlint::diffAgainstBaseline(findings, base);
    ASSERT_EQ(fresh.size(), 2u);
    // The earliest finding soaks up the tolerated slot.
    EXPECT_EQ(fresh[0].line, 42);
    EXPECT_EQ(fresh[1].file, "src/c.cpp");
}

TEST(Baseline, CleanDiffWhenWithinBaseline)
{
    const std::vector<Finding> findings = {
        {"src/a.cpp", 5, "lock-order", "old"},
    };
    const qlint::Baseline base =
        qlint::baselineFromFindings(findings);
    EXPECT_TRUE(qlint::diffAgainstBaseline(findings, base).empty());
}

TEST(Baseline, MalformedJsonThrows)
{
    EXPECT_THROW(qlint::parseBaseline("{"), std::runtime_error);
    EXPECT_THROW(qlint::parseBaseline("{\"version\": 2, \"findings\": []}"),
                 std::runtime_error);
    EXPECT_THROW(qlint::parseBaseline("{\"version\": 1}"),
                 std::runtime_error);
    EXPECT_THROW(
        qlint::parseBaseline(
            "{\"version\": 1, \"findings\": [{\"file\": \"a\"}]}"),
        std::runtime_error);
}

// ---- rule docs -----------------------------------------------------------

TEST(RuleDocs, EveryRegisteredRuleIsDocumented)
{
    const auto &rules = qlint::allRules();
    const auto &docs = qlint::allRuleDocs();
    ASSERT_EQ(docs.size(), rules.size());
    for (std::size_t i = 0; i < rules.size(); ++i) {
        EXPECT_EQ(docs[i].id, rules[i]) << "registry order drifted";
        EXPECT_FALSE(docs[i].shortText.empty()) << rules[i];
        EXPECT_FALSE(docs[i].fullText.empty()) << rules[i];
        EXPECT_FALSE(docs[i].badExample.empty()) << rules[i];
        EXPECT_FALSE(docs[i].goodExample.empty()) << rules[i];
    }
}

TEST(RuleDocs, ExplainRendersSuppressionHint)
{
    const qlint::RuleDoc *doc = qlint::findRuleDoc("stream-lineage");
    ASSERT_NE(doc, nullptr);
    const std::string text = qlint::explainRule(*doc);
    EXPECT_NE(text.find("stream-lineage"), std::string::npos);
    EXPECT_NE(text.find("allow(stream-lineage)"), std::string::npos);
    EXPECT_EQ(qlint::findRuleDoc("not-a-rule"), nullptr);
}

TEST(RuleDocs, MarkdownListsEveryRule)
{
    const std::string md = qlint::renderRulesMarkdown();
    for (const auto &doc : qlint::allRuleDocs()) {
        EXPECT_NE(md.find("## " + doc.id), std::string::npos) << doc.id;
    }
    EXPECT_NE(md.find("allow-file"), std::string::npos);
}

} // namespace
