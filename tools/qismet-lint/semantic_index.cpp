#include "semantic_index.hpp"

#include <algorithm>

namespace qlint {
namespace {

/** Keywords that look like calls or definitions but are neither. */
bool isControlKeyword(const std::string &name)
{
    static const std::set<std::string> keywords = {
        "if",       "for",     "while",   "switch",   "catch",
        "return",   "sizeof",  "alignof", "decltype", "throw",
        "do",       "else",    "case",    "goto",     "new",
        "delete",   "static_assert",      "noexcept", "operator",
        "co_await", "co_yield","co_return"};
    return keywords.count(name) != 0;
}

/** Rng methods that advance the stream (consume randomness). */
bool isAdvancingRngMethod(const std::string &name)
{
    static const std::set<std::string> methods = {
        "uniform", "uniformInt", "normal",   "exponential", "poisson",
        "bernoulli", "discrete", "sign",     "split",       "engine"};
    return methods.count(name) != 0;
}

std::string trimmed(const std::string &s)
{
    std::size_t a = 0;
    std::size_t b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a])) != 0) {
        ++a;
    }
    while (b > a &&
           std::isspace(static_cast<unsigned char>(s[b - 1])) != 0) {
        --b;
    }
    return s.substr(a, b - a);
}

/** Split an argument-list range at top-level commas. */
std::vector<std::string> splitArgs(const std::string &text,
                                   std::size_t begin, std::size_t end)
{
    std::vector<std::string> out;
    int depth = 0;
    std::size_t start = begin;
    for (std::size_t i = begin; i < end; ++i) {
        char c = text[i];
        if (c == '(' || c == '[' || c == '{') {
            ++depth;
        } else if (c == ')' || c == ']' || c == '}') {
            --depth;
        } else if (c == '<') {
            // Treat as nesting only when it plausibly opens a template
            // (heuristic: preceded by an identifier character).
            std::size_t p = prevNonSpace(text, i);
            if (p != std::string::npos && isIdentChar(text[p])) {
                std::size_t close = matchAngle(text, i);
                if (close != std::string::npos && close < end) {
                    i = close;
                }
            }
        } else if (c == ',' && depth == 0) {
            out.push_back(trimmed(text.substr(start, i - start)));
            start = i + 1;
        }
    }
    if (end > start || !out.empty()) {
        std::string last = trimmed(text.substr(start, end - start));
        if (!last.empty() || !out.empty()) {
            out.push_back(last);
        }
    }
    if (out.size() == 1 && out[0].empty()) {
        out.clear();
    }
    return out;
}

/** All identifier tokens of an expression string. */
std::vector<std::string> identTokens(const std::string &expr)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < expr.size()) {
        if (isIdentStart(expr[i])) {
            std::size_t start = i;
            while (i < expr.size() && isIdentChar(expr[i])) {
                ++i;
            }
            out.push_back(expr.substr(start, i - start));
            continue;
        }
        ++i;
    }
    return out;
}

/** Class/struct scope discovered in a TU. */
struct ClassScope
{
    std::string name;
    std::size_t open;  ///< Offset of the `{`.
    std::size_t close; ///< Offset of the matching `}`.
};

/** Brace pair inside a function body (for enclosing-scope queries). */
struct BracePair
{
    std::size_t open;
    std::size_t close;
};

std::vector<BracePair> bracePairs(const std::string &text,
                                  std::size_t begin, std::size_t end)
{
    std::vector<BracePair> pairs;
    std::vector<std::size_t> stack;
    for (std::size_t i = begin; i <= end && i < text.size(); ++i) {
        if (text[i] == '{') {
            stack.push_back(i);
        } else if (text[i] == '}' && !stack.empty()) {
            pairs.push_back({stack.back(), i});
            stack.pop_back();
        }
    }
    return pairs;
}

/** Innermost brace pair containing `pos`, or {begin,end} fallback. */
BracePair enclosingScope(const std::vector<BracePair> &pairs,
                         std::size_t pos, std::size_t begin,
                         std::size_t end)
{
    BracePair best{begin, end};
    for (const BracePair &p : pairs) {
        if (p.open < pos && pos < p.close &&
            (p.open > best.open || best.open == begin)) {
            if (p.open >= best.open) {
                best = p;
            }
        }
    }
    return best;
}

class TuParser
{
  public:
    TuParser(TuIndex &tu) : tu_(tu), text_(tu.scrubbed.text),
                            tokens_(tokenize(text_))
    {
    }

    void run()
    {
        collectClassScopes();
        collectMembers();
        collectFunctions();
    }

  private:
    /** Innermost class scope containing `pos`, or "". */
    std::string enclosingClass(std::size_t pos) const
    {
        std::string best;
        std::size_t bestOpen = 0;
        for (const ClassScope &s : classes_) {
            if (s.open < pos && pos < s.close && s.open >= bestOpen) {
                best = s.name;
                bestOpen = s.open;
            }
        }
        return best;
    }

    void collectClassScopes()
    {
        for (std::size_t k = 0; k < tokens_.size(); ++k) {
            const Token &t = tokens_[k];
            if (t.name != "class" && t.name != "struct") {
                continue;
            }
            if (k > 0 && tokens_[k - 1].name == "enum") {
                continue; // enum class
            }
            if (k + 1 >= tokens_.size()) {
                continue;
            }
            const Token &nameTok = tokens_[k + 1];
            // Find the first of '{' / ';' / '(' after the name; only a
            // '{' makes this a definition with a scope.
            std::size_t p = nameTok.end;
            std::size_t brace = std::string::npos;
            while (p < text_.size()) {
                char c = text_[p];
                if (c == '{') {
                    brace = p;
                    break;
                }
                if (c == ';' || c == '(' || c == ')') {
                    break;
                }
                ++p;
            }
            if (brace == std::string::npos) {
                continue;
            }
            std::size_t close = matchDelim(text_, brace);
            if (close == std::string::npos) {
                continue;
            }
            classes_.push_back({nameTok.name, brace, close});
        }
    }

    /**
     * Member-variable declarations: statements directly inside a class
     * body (depth 1 relative to the class brace) with no call shape.
     * Records mutex owners and the type tokens of every member, which
     * phase 2 uses to disambiguate same-named methods by receiver.
     */
    void collectMembers()
    {
        for (const ClassScope &cls : classes_) {
            int depth = 0;
            std::size_t stmtStart = cls.open + 1;
            for (std::size_t i = cls.open + 1; i < cls.close; ++i) {
                char c = text_[i];
                if (c == '{' || c == '(') {
                    ++depth;
                } else if (c == '}' || c == ')') {
                    --depth;
                    if (c == '}' && depth == 0) {
                        stmtStart = i + 1; // end of a nested body
                    }
                } else if (c == ';' && depth == 0) {
                    recordMember(cls,
                                 text_.substr(stmtStart, i - stmtStart));
                    stmtStart = i + 1;
                }
            }
        }
    }

    void recordMember(const ClassScope &cls, const std::string &stmt)
    {
        // `Type name_;` declarations only: skip method declarations
        // (an identifier immediately followed by '(') and using/friend
        // statements.
        std::vector<std::string> idents = identTokens(stmt);
        if (idents.size() < 2) {
            return;
        }
        for (const char *skip : {"using", "friend", "typedef", "enum",
                                 "static_assert", "operator"}) {
            if (idents.front() == skip) {
                return;
            }
        }
        // Declarator name: last identifier before any '=' initializer.
        std::string decl = stmt;
        std::size_t eq = std::string::npos;
        for (std::size_t i = 0; i + 1 < decl.size(); ++i) {
            if (decl[i] == '=' && decl[i + 1] != '=' &&
                (i == 0 || decl[i - 1] != '=')) {
                eq = i;
                break;
            }
        }
        if (eq != std::string::npos) {
            decl = decl.substr(0, eq);
        }
        std::vector<std::string> declIdents = identTokens(decl);
        if (declIdents.size() < 2) {
            return;
        }
        const std::string name = declIdents.back();
        // A method declaration's last token is a parameter or `const`.
        std::size_t namePos = decl.rfind(name);
        std::size_t after = namePos + name.size();
        while (after < decl.size() &&
               std::isspace(static_cast<unsigned char>(decl[after])) !=
                   0) {
            ++after;
        }
        if (after < decl.size() &&
            (decl[after] == '(' || decl[after] == ')')) {
            return;
        }
        std::set<std::string> typeTokens;
        for (std::size_t i = 0; i + 1 < declIdents.size(); ++i) {
            typeTokens.insert(declIdents[i]);
        }
        if (typeTokens.count("mutex") != 0 ||
            typeTokens.count("shared_mutex") != 0 ||
            typeTokens.count("recursive_mutex") != 0) {
            tu_.mutexOwners[name] = cls.name;
        }
        auto &existing = tu_.memberTypeTokens[name];
        existing.insert(typeTokens.begin(), typeTokens.end());
    }

    void collectFunctions()
    {
        for (std::size_t k = 0; k < tokens_.size(); ++k) {
            const Token &t = tokens_[k];
            if (isControlKeyword(t.name) || t.name == "class" ||
                t.name == "struct" || t.name == "namespace" ||
                t.name == "enum") {
                continue;
            }
            if (isMemberAccess(text_, t.pos)) {
                continue;
            }
            // A name preceded by ',' or a single ':' is a constructor
            // initializer (`: a_(x), b_(y) {`), whose last entry would
            // otherwise look exactly like `name(...) {`.
            std::size_t before = prevNonSpace(text_, t.pos);
            if (before != std::string::npos &&
                (text_[before] == ',' ||
                 (text_[before] == ':' &&
                  (before == 0 || text_[before - 1] != ':')))) {
                continue;
            }
            std::size_t open = nextNonSpace(text_, t.end);
            if (open == std::string::npos || text_[open] != '(') {
                continue;
            }
            std::size_t close = matchDelim(text_, open);
            if (close == std::string::npos) {
                continue;
            }
            std::size_t body = findBody(close);
            if (body == std::string::npos) {
                continue;
            }
            std::size_t bodyEnd = matchDelim(text_, body);
            if (bodyEnd == std::string::npos) {
                continue;
            }
            FunctionInfo fn;
            fn.name = t.name;
            std::string qual;
            if (hasQualifier(text_, t.pos, qual) && !qual.empty() &&
                qual != "std") {
                fn.className = qual;
            } else {
                fn.className = enclosingClass(t.pos);
            }
            fn.qualifiedName = fn.className.empty()
                                   ? fn.name
                                   : fn.className + "::" + fn.name;
            fn.file = tu_.path;
            fn.line = t.line;
            fn.bodyBegin = body;
            fn.bodyEnd = bodyEnd;
            parseParams(fn, open, close);
            parseBody(fn);
            tu_.functions.push_back(std::move(fn));
        }
    }

    /**
     * Body `{` for a definition whose parameter list closed at `close`,
     * or npos when this is a declaration/call. Tolerates `const`,
     * `noexcept(...)`, `override`, `final`, trailing return types and
     * constructor initializer lists.
     */
    std::size_t findBody(std::size_t close) const
    {
        std::size_t p = nextNonSpace(text_, close + 1);
        while (p != std::string::npos) {
            char c = text_[p];
            if (c == '{') {
                return p;
            }
            if (c == ';' || c == ',' || c == ')' || c == '=' ||
                c == '.' || c == '[') {
                return std::string::npos;
            }
            if (c == '-' && p + 1 < text_.size() &&
                text_[p + 1] == '>') {
                // Trailing return type: scan to the first top-level
                // '{' or ';'.
                int depth = 0;
                for (std::size_t i = p + 2; i < text_.size(); ++i) {
                    char d = text_[i];
                    if (d == '(' || d == '<' || d == '[') {
                        ++depth;
                    } else if (d == ')' || d == '>' || d == ']') {
                        --depth;
                    } else if (depth == 0 && d == '{') {
                        return i;
                    } else if (depth == 0 && d == ';') {
                        return std::string::npos;
                    }
                }
                return std::string::npos;
            }
            if (c == ':' &&
                (p + 1 >= text_.size() || text_[p + 1] != ':')) {
                return initListBody(p + 1);
            }
            if (isIdentStart(c)) {
                std::size_t end = p;
                while (end < text_.size() && isIdentChar(text_[end])) {
                    ++end;
                }
                const std::string word = text_.substr(end - (end - p), end - p);
                if (word == "const" || word == "override" ||
                    word == "final" || word == "mutable") {
                    p = nextNonSpace(text_, end);
                    continue;
                }
                if (word == "noexcept") {
                    p = nextNonSpace(text_, end);
                    if (p != std::string::npos && text_[p] == '(') {
                        std::size_t nc = matchDelim(text_, p);
                        if (nc == std::string::npos) {
                            return std::string::npos;
                        }
                        p = nextNonSpace(text_, nc + 1);
                    }
                    continue;
                }
                return std::string::npos;
            }
            return std::string::npos;
        }
        return std::string::npos;
    }

    /** Body `{` after a constructor initializer list starting at `p`. */
    std::size_t initListBody(std::size_t p) const
    {
        while (true) {
            p = nextNonSpace(text_, p);
            if (p == std::string::npos) {
                return std::string::npos;
            }
            // Initializer name: identifiers, `::`, template args.
            bool sawName = false;
            while (p != std::string::npos && p < text_.size()) {
                if (isIdentStart(text_[p])) {
                    while (p < text_.size() && isIdentChar(text_[p])) {
                        ++p;
                    }
                    sawName = true;
                    continue;
                }
                if (text_[p] == ':' && p + 1 < text_.size() &&
                    text_[p + 1] == ':') {
                    p += 2;
                    continue;
                }
                if (text_[p] == '<') {
                    std::size_t g = matchAngle(text_, p);
                    if (g == std::string::npos) {
                        return std::string::npos;
                    }
                    p = g + 1;
                    continue;
                }
                if (std::isspace(static_cast<unsigned char>(
                        text_[p])) != 0) {
                    std::size_t q = nextNonSpace(text_, p);
                    // Whitespace inside the name chain is only legal
                    // before the opening delimiter.
                    if (q != std::string::npos &&
                        (text_[q] == '(' || text_[q] == '{')) {
                        p = q;
                    }
                    break;
                }
                break;
            }
            if (!sawName || p == std::string::npos ||
                p >= text_.size() ||
                (text_[p] != '(' && text_[p] != '{')) {
                return std::string::npos;
            }
            std::size_t close = matchDelim(text_, p);
            if (close == std::string::npos) {
                return std::string::npos;
            }
            p = nextNonSpace(text_, close + 1);
            if (p == std::string::npos) {
                return std::string::npos;
            }
            if (text_[p] == ',') {
                ++p;
                continue;
            }
            if (text_[p] == '{') {
                return p;
            }
            return std::string::npos;
        }
    }

    void parseParams(FunctionInfo &fn, std::size_t open,
                     std::size_t close)
    {
        for (const std::string &piece :
             splitArgs(text_, open + 1, close)) {
            if (piece.empty() || piece == "void") {
                continue;
            }
            ParamInfo param;
            param.type = piece;
            std::vector<std::string> idents = identTokens(piece);
            if (!idents.empty()) {
                const std::string &last = idents.back();
                // The declarator name is the final identifier unless the
                // parameter is unnamed (`const Rng &`).
                std::size_t lastAt = piece.rfind(last);
                std::size_t after = lastAt + last.size();
                bool nameLike = true;
                for (std::size_t i = after; i < piece.size(); ++i) {
                    if (std::isspace(static_cast<unsigned char>(
                            piece[i])) == 0 &&
                        piece[i] != '=') {
                        nameLike = piece[i] == '=';
                        break;
                    }
                    if (piece[i] == '=') {
                        break;
                    }
                }
                if (nameLike && idents.size() > 1) {
                    param.name = last;
                }
                for (const std::string &id : idents) {
                    if (id == "Rng" &&
                        piece.find("RngState") == std::string::npos) {
                        param.isRng = true;
                    }
                }
            }
            fn.params.push_back(std::move(param));
        }
    }

    void parseBody(FunctionInfo &fn)
    {
        const std::vector<BracePair> pairs =
            bracePairs(text_, fn.bodyBegin, fn.bodyEnd);
        collectCalls(fn);
        markLambdaCalls(fn);
        collectLocks(fn, pairs);
        collectDurability(fn);
        collectRngInfo(fn);
    }

    void collectCalls(FunctionInfo &fn)
    {
        for (const Token &u : tokens_) {
            if (u.pos <= fn.bodyBegin || u.pos >= fn.bodyEnd) {
                continue;
            }
            if (isControlKeyword(u.name) || u.name == "class" ||
                u.name == "struct") {
                continue;
            }
            std::size_t open = nextNonSpace(text_, u.end);
            if (open != std::string::npos && text_[open] == '<') {
                std::size_t g = matchAngle(text_, open);
                if (g == std::string::npos) {
                    continue;
                }
                open = nextNonSpace(text_, g + 1);
            }
            if (open == std::string::npos || text_[open] != '(') {
                continue;
            }
            std::size_t close = matchDelim(text_, open);
            if (close == std::string::npos) {
                continue;
            }
            CallSite call;
            call.callee = u.name;
            call.line = u.line;
            call.pos = u.pos;
            call.memberCall = isMemberAccess(text_, u.pos);
            std::string qual;
            if (hasQualifier(text_, u.pos, qual)) {
                call.qualifier = qual;
            }
            if (call.memberCall) {
                std::size_t p = prevNonSpace(text_, u.pos);
                if (p != std::string::npos && text_[p] == '>') {
                    --p; // the '-' of '->'
                }
                if (p != std::string::npos && p > 0) {
                    std::size_t q = prevNonSpace(text_, p);
                    if (q != std::string::npos &&
                        isIdentChar(text_[q])) {
                        std::size_t end = q + 1;
                        while (q > 0 && isIdentChar(text_[q - 1])) {
                            --q;
                        }
                        call.object = text_.substr(q, end - q);
                    }
                }
            }
            call.args = splitArgs(text_, open + 1, close);
            callSpans_.emplace_back(open, close);
            fn.calls.push_back(std::move(call));
        }
    }

    /** Lambda body ranges in `fn`, flagging calls inside them and
     *  whether the lambda is an argument of a dispatch call. */
    void markLambdaCalls(FunctionInfo &fn)
    {
        // Argument spans of dispatch calls in this function.
        std::vector<std::pair<std::size_t, std::size_t>> dispatchSpans;
        for (std::size_t i = 0; i < fn.calls.size(); ++i) {
            const CallSite &c = fn.calls[i];
            bool dispatch =
                c.callee == "submit" || c.callee == "parallelFor" ||
                (c.callee == "map" && c.memberCall);
            if (dispatch) {
                dispatchSpans.push_back(callSpans_[callSpans_.size() -
                                                   fn.calls.size() + i]);
            }
        }

        // Lambda bodies inside the function body.
        std::vector<std::pair<std::size_t, std::size_t>> lambdaBodies;
        std::vector<bool> lambdaDispatch;
        for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
            if (text_[i] != '[') {
                continue;
            }
            std::size_t prev = prevNonSpace(text_, i);
            if (prev != std::string::npos &&
                (isIdentChar(text_[prev]) || text_[prev] == ')' ||
                 text_[prev] == ']')) {
                continue; // subscript, not a capture list
            }
            std::size_t captureClose = matchDelim(text_, i);
            if (captureClose == std::string::npos ||
                captureClose >= fn.bodyEnd) {
                continue;
            }
            std::size_t p = nextNonSpace(text_, captureClose + 1);
            if (p != std::string::npos && text_[p] == '(') {
                std::size_t paramsClose = matchDelim(text_, p);
                if (paramsClose == std::string::npos) {
                    continue;
                }
                p = nextNonSpace(text_, paramsClose + 1);
            }
            while (p != std::string::npos && p < fn.bodyEnd &&
                   text_[p] != '{' && text_[p] != ';' &&
                   text_[p] != ',') {
                ++p;
                p = nextNonSpace(text_, p);
            }
            if (p == std::string::npos || p >= fn.bodyEnd ||
                text_[p] != '{') {
                continue;
            }
            std::size_t bodyClose = matchDelim(text_, p);
            if (bodyClose == std::string::npos) {
                continue;
            }
            bool inDispatch = false;
            for (const auto &span : dispatchSpans) {
                if (i > span.first && i < span.second) {
                    inDispatch = true;
                    break;
                }
            }
            lambdaBodies.emplace_back(p, bodyClose);
            lambdaDispatch.push_back(inDispatch);
            fn.lambdas.push_back({p, bodyClose, inDispatch});
        }

        for (CallSite &c : fn.calls) {
            for (std::size_t j = 0; j < lambdaBodies.size(); ++j) {
                if (c.pos > lambdaBodies[j].first &&
                    c.pos < lambdaBodies[j].second) {
                    c.inLambda = true;
                    if (lambdaDispatch[j]) {
                        c.inDispatchLambda = true;
                    }
                }
            }
        }
    }

    void collectLocks(FunctionInfo &fn,
                      const std::vector<BracePair> &pairs)
    {
        for (const Token &u : tokens_) {
            if (u.pos <= fn.bodyBegin || u.pos >= fn.bodyEnd) {
                continue;
            }
            if (u.name != "lock_guard" && u.name != "unique_lock" &&
                u.name != "scoped_lock" && u.name != "shared_lock") {
                continue;
            }
            std::size_t p = nextNonSpace(text_, u.end);
            if (p != std::string::npos && text_[p] == '<') {
                std::size_t g = matchAngle(text_, p);
                if (g == std::string::npos) {
                    continue;
                }
                p = nextNonSpace(text_, g + 1);
            }
            // Skip the guard variable name.
            if (p == std::string::npos || !isIdentStart(text_[p])) {
                continue;
            }
            while (p < text_.size() && isIdentChar(text_[p])) {
                ++p;
            }
            std::size_t open = nextNonSpace(text_, p);
            if (open == std::string::npos ||
                (text_[open] != '(' && text_[open] != '{')) {
                continue;
            }
            std::size_t close = matchDelim(text_, open);
            if (close == std::string::npos) {
                continue;
            }
            const BracePair scope = enclosingScope(
                pairs, u.pos, fn.bodyBegin, fn.bodyEnd);
            for (const std::string &arg :
                 splitArgs(text_, open + 1, close)) {
                if (arg.empty() || arg == "std::adopt_lock" ||
                    arg == "std::defer_lock") {
                    continue;
                }
                LockSite lock;
                lock.mutexExpr = arg;
                lock.line = u.line;
                lock.pos = u.pos;
                lock.scopeEnd = scope.close;
                fn.locks.push_back(std::move(lock));
            }
        }
    }

    void collectDurability(FunctionInfo &fn)
    {
        using Kind = DurabilityEvent::Kind;
        for (const CallSite &c : fn.calls) {
            Kind kind;
            if (c.callee == "append" && c.memberCall) {
                kind = Kind::Append;
            } else if ((c.callee == "sync" && c.memberCall) ||
                       c.callee == "fsync" || c.callee == "fdatasync") {
                kind = Kind::Sync;
            } else if ((c.callee == "truncateTo" && c.memberCall) ||
                       c.callee == "ftruncate") {
                kind = Kind::TruncateTo;
            } else if (c.callee == "rename") {
                kind = Kind::Rename;
            } else if (c.callee == "atomicWriteFile") {
                kind = Kind::AtomicWrite;
            } else if (c.callee == "readFile") {
                kind = Kind::ReadFile;
            } else if (c.callee == "fnv1a64" ||
                       c.callee.find("hecksum") != std::string::npos) {
                kind = Kind::Checksum;
            } else if (c.callee == "decode" || c.callee == "Decoder") {
                kind = Kind::Decode;
            } else {
                continue;
            }
            DurabilityEvent event;
            event.kind = kind;
            event.object = c.object;
            event.line = c.line;
            event.pos = c.pos;
            fn.durability.push_back(std::move(event));
        }
        // `Decoder dec(...)` constructions are declarations, not calls.
        for (const Token &u : tokens_) {
            if (u.pos <= fn.bodyBegin || u.pos >= fn.bodyEnd ||
                u.name != "Decoder" || isMemberAccess(text_, u.pos)) {
                continue;
            }
            std::size_t p = nextNonSpace(text_, u.end);
            if (p == std::string::npos || !isIdentStart(text_[p])) {
                continue;
            }
            DurabilityEvent event;
            event.kind = Kind::Decode;
            event.line = u.line;
            event.pos = u.pos;
            fn.durability.push_back(std::move(event));
        }
        std::sort(fn.durability.begin(), fn.durability.end(),
                  [](const DurabilityEvent &a, const DurabilityEvent &b) {
                      return a.pos < b.pos;
                  });
    }

    void collectRngInfo(FunctionInfo &fn)
    {
        // Local Rng declarations: `Rng v = ...` / `Rng v(...)`, and
        // `auto v = <expr with a split derivation>`.
        for (std::size_t k = 0; k < tokens_.size(); ++k) {
            const Token &u = tokens_[k];
            if (u.pos <= fn.bodyBegin || u.pos >= fn.bodyEnd) {
                continue;
            }
            if (u.name != "Rng" && u.name != "auto") {
                continue;
            }
            if (isMemberAccess(text_, u.pos)) {
                continue;
            }
            if (k + 1 >= tokens_.size()) {
                continue;
            }
            const Token &var = tokens_[k + 1];
            if (var.pos >= fn.bodyEnd ||
                nextNonSpace(text_, u.end) != var.pos) {
                continue;
            }
            std::size_t after = nextNonSpace(text_, var.end);
            if (after == std::string::npos) {
                continue;
            }
            char c = text_[after];
            if (u.name == "Rng") {
                if (c == '=' || c == '(' || c == '{' || c == ';') {
                    fn.localRngVars[var.name] = var.pos;
                }
                continue;
            }
            // auto v = <...split...>;
            if (c != '=') {
                continue;
            }
            std::size_t semi = text_.find(';', after);
            if (semi == std::string::npos || semi > fn.bodyEnd) {
                continue;
            }
            const std::string init =
                text_.substr(after, semi - after);
            if (init.find("splitAt") != std::string::npos ||
                init.find("splitStream") != std::string::npos ||
                init.find(".split") != std::string::npos) {
                fn.localRngVars[var.name] = var.pos;
            }
        }
        for (const CallSite &c : fn.calls) {
            if (c.memberCall && !c.object.empty() &&
                isAdvancingRngMethod(c.callee)) {
                fn.consumedRngs.insert(c.object);
            }
        }
    }

    TuIndex &tu_;
    const std::string &text_;
    std::vector<Token> tokens_;
    std::vector<ClassScope> classes_;
    /** (open, close) spans parallel to the calls pushed per function. */
    std::vector<std::pair<std::size_t, std::size_t>> callSpans_;
};

} // namespace

std::size_t FunctionInfo::paramIndex(const std::string &paramName) const
{
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (params[i].name == paramName) {
            return i;
        }
    }
    return static_cast<std::size_t>(-1);
}

std::vector<const FunctionInfo *>
SemanticIndex::resolve(const std::string &name) const
{
    std::vector<const FunctionInfo *> out;
    auto range = byName_.equal_range(name);
    for (auto it = range.first; it != range.second; ++it) {
        out.push_back(it->second);
    }
    return out;
}

std::vector<const FunctionInfo *>
SemanticIndex::resolve(const std::string &name,
                       const std::set<std::string> &classes) const
{
    std::vector<const FunctionInfo *> all = resolve(name);
    if (classes.empty()) {
        return all;
    }
    std::vector<const FunctionInfo *> narrowed;
    for (const FunctionInfo *fn : all) {
        if (classes.count(fn->className) != 0) {
            narrowed.push_back(fn);
        }
    }
    return narrowed.empty() ? all : narrowed;
}

std::set<std::string>
SemanticIndex::typeTokensFor(const std::string &object) const
{
    std::set<std::string> out;
    for (const TuIndex &tu : tus) {
        auto it = tu.memberTypeTokens.find(object);
        if (it != tu.memberTypeTokens.end()) {
            out.insert(it->second.begin(), it->second.end());
        }
    }
    return out;
}

bool SemanticIndex::allowed(const std::string &file,
                            const std::string &rule, int line) const
{
    for (const TuIndex &tu : tus) {
        if (tu.path == file) {
            return tu.scrubbed.allowed(rule, line);
        }
    }
    return false;
}

SemanticIndex
buildIndex(const std::vector<std::pair<std::string, std::string>> &files)
{
    SemanticIndex index;
    index.tus.reserve(files.size());
    for (const auto &[path, content] : files) {
        TuIndex tu;
        tu.path = path;
        std::replace(tu.path.begin(), tu.path.end(), '\\', '/');
        tu.scrubbed = scrub(content);
        TuParser(tu).run();
        index.tus.push_back(std::move(tu));
    }

    // Global mutex identity: a lock in scheduler.cpp guards a member
    // declared in scheduler.hpp, so owner resolution unions every TU.
    std::map<std::string, std::set<std::string>> owners;
    for (const TuIndex &tu : index.tus) {
        for (const auto &[name, cls] : tu.mutexOwners) {
            owners[name].insert(cls);
        }
    }
    for (TuIndex &tu : index.tus) {
        for (FunctionInfo &fn : tu.functions) {
            for (LockSite &lock : fn.locks) {
                std::vector<std::string> idents =
                    identTokens(lock.mutexExpr);
                if (idents.empty()) {
                    lock.mutexKey = lock.mutexExpr;
                    continue;
                }
                // Strip a `this` receiver; the mutex name is the last
                // identifier of the expression.
                std::string name = idents.back();
                auto it = owners.find(name);
                if (it != owners.end()) {
                    if (it->second.count(fn.className) != 0) {
                        lock.mutexKey = fn.className + "::" + name;
                    } else if (it->second.size() == 1) {
                        lock.mutexKey =
                            *it->second.begin() + "::" + name;
                    } else {
                        lock.mutexKey = name;
                    }
                } else {
                    // Unknown declaration site: identity is file-local.
                    lock.mutexKey = tu.path + "::" + name;
                }
            }
        }
    }

    for (const TuIndex &tu : index.tus) {
        for (const FunctionInfo &fn : tu.functions) {
            index.byName_.emplace(fn.name, &fn);
        }
    }
    return index;
}

} // namespace qlint
