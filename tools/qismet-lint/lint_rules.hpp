/**
 * @file
 * Rule engine for qismet-lint, the project-specific determinism and
 * concurrency linter.
 *
 * qismet-lint enforces the invariants that clang-tidy cannot express —
 * the contracts that make `--threads=N` output bit-identical to
 * `--threads=1` (DESIGN.md "Parallel execution & determinism model"):
 *
 *  - `ambient-rng`        — all randomness must flow through qismet::Rng;
 *                           no std::rand/srand, no std::random_device,
 *                           no time-based seeding outside
 *                           src/common/rng.cpp.
 *  - `unordered-reduction`— iterating a std::unordered_{map,set} into a
 *                           numeric accumulation is forbidden: hash-table
 *                           iteration order is unspecified, so the
 *                           floating-point fold order (and hence the
 *                           bits of the result) would vary.
 *  - `raw-thread`         — no std::thread / std::jthread / std::async /
 *                           pthread_create outside
 *                           src/common/thread_pool.{cpp,hpp}; all
 *                           parallelism goes through ThreadPool /
 *                           ParallelExecutor.
 *  - `raw-file-write`     — no direct persistence writes in src/
 *                           (std::ofstream / std::fstream / fopen /
 *                           freopen); everything durable goes through
 *                           qismet::atomicWriteFile / DurableFile
 *                           (src/common/atomic_file.{hpp,cpp}, which is
 *                           itself allowlisted) so a crash can never
 *                           leave a torn file. Reads (std::ifstream) and
 *                           code outside src/ are unrestricted.
 *  - `naked-new`          — no naked new/delete expressions; use
 *                           containers or smart pointers.
 *  - `split-in-task`      — Rng::split / Rng::splitAt must be called
 *                           *before* fan-out, never inside a lambda body
 *                           handed to ThreadPool::submit,
 *                           ParallelExecutor::parallelFor or
 *                           ParallelExecutor::map (a split inside the
 *                           task body would depend on scheduling order).
 *  - `dense-matrix-in-loop`— no `.matrix()` calls inside loop bodies in
 *                           the simulator hot layers (src/sim, src/vqe):
 *                           Gate::matrix() builds a fresh dense matrix
 *                           per call, so a per-iteration call allocates
 *                           in the per-gate/per-shot hot loop. Resolve
 *                           matrices once via CompiledCircuit, or fill
 *                           preallocated scratch with Gate::matrixInto
 *                           (DESIGN.md section 11).
 *  - `stream-offset`      — in src/serve, where tenant and job IDs are
 *                           caller-controlled, sub-streams must be
 *                           allocated with Rng::splitStream /
 *                           deriveStreamSeed. Flags Rng::split /
 *                           Rng::splitAt calls and affine seed
 *                           arithmetic (`seed + id`, `id * K + run`)
 *                           feeding an Rng construction or a
 *                           stream-derivation call: linear packings
 *                           collide under adversarial ID patterns
 *                           (StreamDomain note, src/common/rng.hpp).
 *  - `unbounded-retry`    — retry loops in src/ must carry a visible
 *                           bound: a comparison in the loop condition
 *                           (a counted budget or deadline test) or a
 *                           named budget/breaker check in the loop.
 *                           `while (true) { ... retry ... }` with
 *                           neither spins forever against a
 *                           persistently faulted backend (DESIGN.md
 *                           section 15).
 *
 * Suppression: append `// qismet-lint: allow(<rule>[, <rule>...])` to the
 * offending line, or place it alone on the line directly above. A
 * file-wide escape `// qismet-lint: allow-file(<rule>)` disables one rule
 * for the whole file. Every escape is greppable and reviewable.
 */

#ifndef QISMET_TOOLS_LINT_RULES_HPP
#define QISMET_TOOLS_LINT_RULES_HPP

#include <string>
#include <vector>

namespace qlint {

/** One rule violation at a specific source location. */
struct Finding
{
    std::string file;    ///< Path as given to the linter.
    int line;            ///< 1-based line number.
    std::string rule;    ///< Rule slug, e.g. "ambient-rng".
    std::string message; ///< Human-readable explanation.
};

/** Names of all rules, in reporting order. */
const std::vector<std::string> &allRules();

/**
 * Lint an in-memory translation unit.
 *
 * @param path    Path used both for reporting and for the per-rule
 *                allowlists (e.g. src/common/rng.cpp may use ambient
 *                randomness primitives). Forward or backward slashes.
 * @param content Full file content.
 * @return All findings, ordered by line.
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content);

/**
 * Lint a file on disk.
 *
 * @throws std::runtime_error when the file cannot be read.
 */
std::vector<Finding> lintFile(const std::string &path);

/** True for the extensions qismet-lint understands (.cpp/.cc/.hpp/.h). */
bool isLintablePath(const std::string &path);

} // namespace qlint

#endif // QISMET_TOOLS_LINT_RULES_HPP
