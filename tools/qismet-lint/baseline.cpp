#include "baseline.hpp"

#include "sarif.hpp" // jsonEscape

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace qlint {
namespace {

/** Minimal recursive-descent cursor over the baseline JSON subset. */
struct Cursor
{
    const std::string &text;
    std::size_t pos = 0;

    void skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
            ++pos;
        }
    }

    [[noreturn]] void fail(const std::string &what) const
    {
        throw std::runtime_error("lint-baseline: malformed JSON (" +
                                 what + " near offset " +
                                 std::to_string(pos) + ")");
    }

    void expect(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos;
    }

    bool peek(char c)
    {
        skipWs();
        return pos < text.size() && text[pos] == c;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos];
            if (c == '\\' && pos + 1 < text.size()) {
                ++pos;
                char e = text[pos];
                switch (e) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                default: out += e;
                }
            } else {
                out += c;
            }
            ++pos;
        }
        expect('"');
        return out;
    }

    long parseInt()
    {
        skipWs();
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-') {
            ++pos;
        }
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
            ++pos;
        }
        if (pos == start) {
            fail("expected integer");
        }
        return std::stol(text.substr(start, pos - start));
    }
};

} // namespace

Baseline baselineFromFindings(const std::vector<Finding> &findings)
{
    Baseline out;
    for (const Finding &f : findings) {
        ++out[{f.file, f.rule}];
    }
    return out;
}

std::string renderBaseline(const Baseline &baseline)
{
    std::string out;
    out += "{\n  \"version\": 1,\n  \"findings\": [";
    bool first = true;
    for (const auto &[key, count] : baseline) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    { \"file\": \"" + jsonEscape(key.first) +
               "\", \"rule\": \"" + jsonEscape(key.second) +
               "\", \"count\": " + std::to_string(count) + " }";
    }
    out += first ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

Baseline parseBaseline(const std::string &json)
{
    Cursor cur{json};
    Baseline out;
    cur.expect('{');
    bool sawFindings = false;
    while (!cur.peek('}')) {
        std::string key = cur.parseString();
        cur.expect(':');
        if (key == "version") {
            long version = cur.parseInt();
            if (version != 1) {
                cur.fail("unsupported version " +
                         std::to_string(version));
            }
        } else if (key == "findings") {
            sawFindings = true;
            cur.expect('[');
            while (!cur.peek(']')) {
                cur.expect('{');
                std::string file;
                std::string rule;
                long count = -1;
                while (!cur.peek('}')) {
                    std::string field = cur.parseString();
                    cur.expect(':');
                    if (field == "file") {
                        file = cur.parseString();
                    } else if (field == "rule") {
                        rule = cur.parseString();
                    } else if (field == "count") {
                        count = cur.parseInt();
                    } else {
                        cur.fail("unknown field '" + field + "'");
                    }
                    if (cur.peek(',')) {
                        cur.expect(',');
                    }
                }
                cur.expect('}');
                if (file.empty() || rule.empty() || count < 0) {
                    cur.fail("incomplete finding entry");
                }
                out[{file, rule}] += static_cast<int>(count);
                if (cur.peek(',')) {
                    cur.expect(',');
                }
            }
            cur.expect(']');
        } else {
            cur.fail("unknown key '" + key + "'");
        }
        if (cur.peek(',')) {
            cur.expect(',');
        }
    }
    cur.expect('}');
    if (!sawFindings) {
        cur.fail("missing findings array");
    }
    return out;
}

std::vector<Finding> diffAgainstBaseline(
    const std::vector<Finding> &findings, const Baseline &baseline)
{
    // Bucket findings, sort each bucket by line so the earliest
    // (longest-standing) ones soak up the tolerated count.
    std::map<std::pair<std::string, std::string>, std::vector<Finding>>
        buckets;
    for (const Finding &f : findings) {
        buckets[{f.file, f.rule}].push_back(f);
    }
    std::vector<Finding> fresh;
    for (auto &[key, bucket] : buckets) {
        std::sort(bucket.begin(), bucket.end(),
                  [](const Finding &a, const Finding &b) {
                      return a.line < b.line;
                  });
        auto it = baseline.find(key);
        std::size_t tolerated =
            it == baseline.end() ? 0
                                 : static_cast<std::size_t>(it->second);
        for (std::size_t i = tolerated; i < bucket.size(); ++i) {
            fresh.push_back(bucket[i]);
        }
    }
    std::sort(fresh.begin(), fresh.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file) {
                      return a.file < b.file;
                  }
                  if (a.line != b.line) {
                      return a.line < b.line;
                  }
                  return a.rule < b.rule;
              });
    return fresh;
}

} // namespace qlint
