/**
 * @file
 * Command-line driver for qismet-lint.
 *
 * Usage:
 *   qismet-lint [options] <file-or-directory>...
 *
 *   --list-rules            print all rule slugs
 *   --explain <rule>        print the full documentation for one rule
 *   --rules-md              print the generated RULES.md and exit
 *   --sarif <path>          also write findings as SARIF 2.1.0
 *   --baseline <path>       diff findings against a committed baseline:
 *                           only findings beyond it fail the run
 *   --write-baseline <path> write the current findings as the baseline
 *                           and exit 0
 *
 * Directories are walked recursively for .cpp/.cc/.hpp/.h files;
 * `build*` directories and linter `fixtures/` directories (which contain
 * intentionally-bad code) are skipped. The per-file rules run on every
 * file; the cross-TU passes (stream-lineage, lock-order,
 * durability-ordering) run over a semantic index built from the same
 * file set. Exit status: 0 when clean (or within baseline), 1 when new
 * findings were reported, 2 on usage or I/O errors.
 */

#include "baseline.hpp"
#include "lint_rules.hpp"
#include "passes.hpp"
#include "rule_docs.hpp"
#include "sarif.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

bool skippedDirectory(const fs::path &dir)
{
    std::string name = dir.filename().string();
    return name.rfind("build", 0) == 0 || name == "fixtures" ||
           name == ".git";
}

void collectFiles(const fs::path &root, std::vector<std::string> &out)
{
    if (fs::is_regular_file(root)) {
        out.push_back(root.string());
        return;
    }
    if (!fs::is_directory(root)) {
        throw std::runtime_error("qismet-lint: no such file or directory: " +
                                 root.string());
    }
    for (auto it = fs::recursive_directory_iterator(root);
         it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && skippedDirectory(it->path())) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() &&
            qlint::isLintablePath(it->path().string())) {
            out.push_back(it->path().string());
        }
    }
}

std::string readWhole(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("qismet-lint: cannot read " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void writeWhole(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw std::runtime_error("qismet-lint: cannot write " + path);
    }
    out << content;
}

void usage(std::ostream &os)
{
    os << "usage: qismet-lint [--list-rules] [--explain <rule>] "
          "[--rules-md]\n"
          "                   [--sarif <path>] [--baseline <path>]\n"
          "                   [--write-baseline <path>] "
          "<file-or-directory>...\n";
}

} // namespace

int main(int argc, char **argv)
{
    std::vector<std::string> files;
    std::string sarifPath;
    std::string baselinePath;
    std::string writeBaselinePath;
    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--list-rules") {
                for (const std::string &rule : qlint::allRules()) {
                    std::cout << rule << "\n";
                }
                return 0;
            }
            if (arg == "--explain") {
                if (i + 1 >= argc) {
                    std::cerr << "qismet-lint: --explain needs a rule "
                                 "name (see --list-rules)\n";
                    return 2;
                }
                const qlint::RuleDoc *doc =
                    qlint::findRuleDoc(argv[++i]);
                if (doc == nullptr) {
                    std::cerr << "qismet-lint: unknown rule '"
                              << argv[i]
                              << "' (see --list-rules)\n";
                    return 2;
                }
                std::cout << qlint::explainRule(*doc);
                return 0;
            }
            if (arg == "--rules-md") {
                std::cout << qlint::renderRulesMarkdown();
                return 0;
            }
            if (arg == "--sarif" || arg == "--baseline" ||
                arg == "--write-baseline") {
                if (i + 1 >= argc) {
                    std::cerr << "qismet-lint: " << arg
                              << " needs a path\n";
                    return 2;
                }
                std::string path = argv[++i];
                if (arg == "--sarif") {
                    sarifPath = path;
                } else if (arg == "--baseline") {
                    baselinePath = path;
                } else {
                    writeBaselinePath = path;
                }
                continue;
            }
            if (arg == "--help" || arg == "-h") {
                usage(std::cout);
                return 0;
            }
            if (arg.rfind("--", 0) == 0) {
                std::cerr << "qismet-lint: unknown option " << arg
                          << "\n";
                usage(std::cerr);
                return 2;
            }
            collectFiles(arg, files);
        }
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    if (files.empty()) {
        std::cerr << "qismet-lint: no input files (see --help)\n";
        return 2;
    }

    std::vector<qlint::Finding> findings;
    std::vector<std::pair<std::string, std::string>> contents;
    contents.reserve(files.size());
    try {
        for (const std::string &file : files) {
            contents.emplace_back(file, readWhole(file));
            for (qlint::Finding f :
                 qlint::lintSource(file, contents.back().second)) {
                findings.push_back(std::move(f));
            }
        }
        // Cross-TU passes over the whole file set.
        const qlint::SemanticIndex index = qlint::buildIndex(contents);
        for (qlint::Finding f : qlint::runPasses(index)) {
            findings.push_back(std::move(f));
        }
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    try {
        if (!sarifPath.empty()) {
            writeWhole(sarifPath, qlint::renderSarif(findings));
        }
        if (!writeBaselinePath.empty()) {
            writeWhole(writeBaselinePath,
                       qlint::renderBaseline(
                           qlint::baselineFromFindings(findings)));
            std::cout << "qismet-lint: baseline of " << findings.size()
                      << " finding(s) written to " << writeBaselinePath
                      << "\n";
            return 0;
        }
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    std::vector<qlint::Finding> reported = findings;
    std::string gateNote;
    if (!baselinePath.empty()) {
        try {
            reported = qlint::diffAgainstBaseline(
                findings, qlint::parseBaseline(readWhole(baselinePath)));
            gateNote = " new (beyond " + baselinePath + ")";
        } catch (const std::exception &e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
    }

    for (const qlint::Finding &f : reported) {
        std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message << "\n";
    }
    if (!reported.empty()) {
        std::cerr << "qismet-lint: " << reported.size() << gateNote
                  << " finding" << (reported.size() == 1 ? "" : "s")
                  << " in " << files.size()
                  << " files (suppress with `// qismet-lint: "
                     "allow(<rule>)` where justified; `--explain "
                     "<rule>` for rationale)\n";
        return 1;
    }
    std::cout << "qismet-lint: " << files.size() << " files clean"
              << (baselinePath.empty() ? "" : " (baseline-diff mode)")
              << "\n";
    return 0;
}
