/**
 * @file
 * Command-line driver for qismet-lint.
 *
 * Usage:
 *   qismet-lint [--list-rules] <file-or-directory>...
 *
 * Directories are walked recursively for .cpp/.cc/.hpp/.h files;
 * `build*` directories and linter `fixtures/` directories (which contain
 * intentionally-bad code) are skipped. Exit status: 0 when clean, 1 when
 * findings were reported, 2 on usage or I/O errors.
 */

#include "lint_rules.hpp"

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

bool skippedDirectory(const fs::path &dir)
{
    std::string name = dir.filename().string();
    return name.rfind("build", 0) == 0 || name == "fixtures" ||
           name == ".git";
}

void collectFiles(const fs::path &root, std::vector<std::string> &out)
{
    if (fs::is_regular_file(root)) {
        out.push_back(root.string());
        return;
    }
    if (!fs::is_directory(root)) {
        throw std::runtime_error("qismet-lint: no such file or directory: " +
                                 root.string());
    }
    for (auto it = fs::recursive_directory_iterator(root);
         it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && skippedDirectory(it->path())) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() &&
            qlint::isLintablePath(it->path().string())) {
            out.push_back(it->path().string());
        }
    }
}

} // namespace

int main(int argc, char **argv)
{
    std::vector<std::string> files;
    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--list-rules") {
                for (const std::string &rule : qlint::allRules()) {
                    std::cout << rule << "\n";
                }
                return 0;
            }
            if (arg == "--help" || arg == "-h") {
                std::cout << "usage: qismet-lint [--list-rules] "
                             "<file-or-directory>...\n";
                return 0;
            }
            collectFiles(arg, files);
        }
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    if (files.empty()) {
        std::cerr << "qismet-lint: no input files (see --help)\n";
        return 2;
    }

    std::size_t findingCount = 0;
    for (const std::string &file : files) {
        try {
            for (const qlint::Finding &f : qlint::lintFile(file)) {
                std::cerr << f.file << ":" << f.line << ": [" << f.rule
                          << "] " << f.message << "\n";
                ++findingCount;
            }
        } catch (const std::exception &e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
    }

    if (findingCount != 0) {
        std::cerr << "qismet-lint: " << findingCount << " finding"
                  << (findingCount == 1 ? "" : "s") << " in " << files.size()
                  << " files (suppress with `// qismet-lint: allow(<rule>)` "
                     "where justified)\n";
        return 1;
    }
    std::cout << "qismet-lint: " << files.size() << " files clean\n";
    return 0;
}
