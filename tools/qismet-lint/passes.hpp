/**
 * @file
 * Phase 2 of the cross-translation-unit analyzer: dataflow passes over
 * the semantic index (semantic_index.hpp).
 *
 * Three rules, each invisible to the per-file engine because the
 * evidence spans translation units:
 *
 *  - `stream-lineage`       — an Rng stream must have exactly one
 *    consumer. Flags (a) the same bare Rng handed to two or more
 *    consuming callees in src/serve, src/persist or src/fault — each
 *    helper assumes an independent stream, so adding a draw in one
 *    silently shifts every replay of the other; (b) an outer Rng
 *    (parameter or pre-dispatch local) consumed inside a lambda handed
 *    to ThreadPool::submit / ParallelExecutor::parallelFor/map — the
 *    draw order then depends on scheduling; (c) an affine index packing
 *    (`base + id`, `id * K + run`) that crosses a function boundary
 *    before feeding deriveStreamSeed / splitStream in or from
 *    src/serve, where IDs are adversarial and linear packings collide.
 *
 *  - `lock-order`           — builds the mutex acquisition graph over
 *    the whole source tree (a lock held at a call site contributes
 *    edges to every mutex the transitive callees acquire) and flags
 *    cycles, self-re-acquisition, and any path that reaches
 *    ThreadPool::submit / ParallelExecutor dispatch while a lock is
 *    held: the pool's queue mutex and worker rendezvous then nest under
 *    an application lock, which both serializes the fan-out and is one
 *    reader away from deadlock.
 *
 *  - `durability-ordering`  — in src/persist and src/serve, flags
 *    rename without a preceding fsync (the classic torn-publish),
 *    a journal append after truncateTo with no sync between (the
 *    truncate may still be in the page cache when the append lands),
 *    and decoding persisted bytes without a checksum verification in
 *    the same function (torn tails read as garbage instead of being
 *    rejected).
 *
 * Every finding honors the same `// qismet-lint: allow(<rule>)` escapes
 * as the per-file rules.
 */

#ifndef QISMET_TOOLS_LINT_PASSES_HPP
#define QISMET_TOOLS_LINT_PASSES_HPP

#include "lint_rules.hpp"
#include "semantic_index.hpp"

#include <vector>

namespace qlint {

/** Rule slugs of the cross-TU passes, in reporting order. */
const std::vector<std::string> &passRules();

/** Run all cross-TU passes. Findings are sorted by (file, line, rule). */
std::vector<Finding> runPasses(const SemanticIndex &index);

} // namespace qlint

#endif // QISMET_TOOLS_LINT_PASSES_HPP
