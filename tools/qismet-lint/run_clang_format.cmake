# Format gate for the `lint` target: clang-format --dry-run -Werror over
# every source file (fixtures included — bad style in fixtures would
# leak into copy-pasted fixes). Invoked as:
#   cmake -DCLANG_FORMAT=... -DSOURCE_DIR=... -P run_clang_format.cmake

if(NOT CLANG_FORMAT OR NOT SOURCE_DIR)
    message(FATAL_ERROR
        "usage: cmake -DCLANG_FORMAT=<exe> -DSOURCE_DIR=<dir> "
        "-P run_clang_format.cmake")
endif()

file(GLOB_RECURSE format_sources
    ${SOURCE_DIR}/src/*.cpp ${SOURCE_DIR}/src/*.hpp
    ${SOURCE_DIR}/bench/*.cpp ${SOURCE_DIR}/bench/*.hpp
    ${SOURCE_DIR}/tests/*.cpp ${SOURCE_DIR}/tests/*.hpp
    ${SOURCE_DIR}/examples/*.cpp
    ${SOURCE_DIR}/tools/*.cpp ${SOURCE_DIR}/tools/*.hpp)

list(LENGTH format_sources count)
message(STATUS "lint: clang-format --dry-run over ${count} files")

execute_process(
    COMMAND ${CLANG_FORMAT} --dry-run -Werror ${format_sources}
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "lint: clang-format found style drift:\n${err}")
endif()
message(STATUS "lint: clang-format clean")
