/**
 * @file
 * Serve-layer soak driver: pushes a deterministic fleet of short
 * multi-tenant QISMET runs through the ServeScheduler, with planned
 * per-run crashes and an optional whole-process kill (exit 43), and
 * verifies every run's trajectory digest against its solo execution.
 *
 *   # 200 runs, 4 workers, crash injection, verify against solo
 *   ./build/tools/serve_soak --runs 200 --workers 4 \
 *       --state-dir /tmp/soak --verify-solo
 *
 *   # kill the whole scheduler process at the 40th job boundary...
 *   ./build/tools/serve_soak --runs 200 --workers 4 \
 *       --state-dir /tmp/soak --kill-after 40     # exits 43
 *   # ...and resume: recovered jobs finish bit-identically
 *   ./build/tools/serve_soak --resume --workers 4 \
 *       --state-dir /tmp/soak --verify-solo
 *
 * The workload set is a pure function of --seed: every spec (tenant,
 * kind, run seed, budget, priority, crash plan) derives through the
 * StreamDomain convention, so two invocations with equal seeds soak
 * identical fleets and --digest-out files diff clean across any
 * --workers value.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "fault/crash_point.hpp"
#include "serve/scheduler.hpp"
#include "vqe/run_digest.hpp"

using namespace qismet;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: serve_soak [options]\n"
        "  --runs N         workload size (default 100)\n"
        "  --workers N      scheduler worker threads (default 2)\n"
        "  --backends N     backend fleet size (default 4)\n"
        "  --tenants N      tenant count (default 5)\n"
        "  --seed S         master workload seed (default 2026)\n"
        "  --jobs N         per-run job budget (default 12)\n"
        "  --crash-frac F   fraction of runs with a crash plan\n"
        "                   (default 0.25; needs --state-dir)\n"
        "  --state-dir D    durable scheduler state in D\n"
        "  --resume         recover D's manifest instead of submitting\n"
        "  --kill-after N   std::_Exit(43) at the Nth completed job\n"
        "                   boundary (simulated operator SIGKILL)\n"
        "  --verify-solo    re-run every spec solo and compare digests\n"
        "  --digest-out F   write 'jobId,digest' lines to F\n"
        "  --threads N      global ParallelExecutor threads (default 1)\n");
    return 2;
}

/** Deterministic workload: spec i is a pure function of (seed, i). */
ServeJobSpec
makeSpec(std::uint64_t master_seed, std::uint64_t index,
         std::uint64_t tenants, std::size_t jobs_per_run,
         double crash_frac, bool durable)
{
    Rng rng(deriveStreamSeed(master_seed, StreamDomain::kSoakSpec,
                             index));
    ServeJobSpec spec;
    spec.tenantId = rng.uniformInt(tenants);
    spec.priority = static_cast<int>(rng.uniformInt(3));
    // TFIM applications dominate (they are the cheap short runs);
    // sprinkle the H2 and QAOA golden constructions in.
    const std::uint64_t kindDraw = rng.uniformInt(10);
    if (kindDraw < 7) {
        spec.kind = WorkloadKind::TfimApp;
        spec.appIndex = static_cast<int>(1 + rng.uniformInt(6));
    }
    else if (kindDraw < 9) {
        spec.kind = WorkloadKind::QaoaRing;
    }
    else {
        spec.kind = WorkloadKind::H2Vqe;
    }
    spec.seed = rng.engine()();
    spec.totalJobs = jobs_per_run + rng.uniformInt(jobs_per_run);
    spec.withFaults = rng.bernoulli(0.3);
    if (durable && rng.uniform() < crash_frac) {
        Rng plan(deriveStreamSeed(
            master_seed, StreamDomain::kSoakCrashPlan, index));
        const std::uint64_t legs = 1 + plan.uniformInt(2);
        std::uint64_t at = 0;
        for (std::uint64_t leg = 0; leg < legs; ++leg) {
            at += 1 + plan.uniformInt(4);
            spec.crashPlan.push_back(at);
        }
    }
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t runs = 100;
    std::size_t workers = 2;
    std::size_t backends = 4;
    std::uint64_t tenants = 5;
    std::uint64_t seed = 2026;
    std::size_t jobsPerRun = 12;
    double crashFrac = 0.25;
    std::string stateDir;
    bool resume = false;
    int killAfter = 0;
    bool verifySolo = false;
    std::string digestOut;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--runs" && hasValue)
            runs = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (arg == "--workers" && hasValue)
            workers = static_cast<std::size_t>(std::atol(argv[++i]));
        else if (arg == "--backends" && hasValue)
            backends = static_cast<std::size_t>(std::atol(argv[++i]));
        else if (arg == "--tenants" && hasValue)
            tenants = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (arg == "--seed" && hasValue)
            seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (arg == "--jobs" && hasValue)
            jobsPerRun = static_cast<std::size_t>(std::atol(argv[++i]));
        else if (arg == "--crash-frac" && hasValue)
            crashFrac = std::atof(argv[++i]);
        else if (arg == "--state-dir" && hasValue)
            stateDir = argv[++i];
        else if (arg == "--resume")
            resume = true;
        else if (arg == "--kill-after" && hasValue)
            killAfter = std::atoi(argv[++i]);
        else if (arg == "--verify-solo")
            verifySolo = true;
        else if (arg == "--digest-out" && hasValue)
            digestOut = argv[++i];
        else if (arg == "--threads" && hasValue)
            ParallelExecutor::setGlobalThreads(
                static_cast<std::size_t>(std::atol(argv[++i])));
        else
            return usage();
    }
    if (runs == 0 || tenants == 0 || backends == 0)
        return usage();
    if (resume && stateDir.empty()) {
        std::fprintf(stderr, "--resume needs --state-dir\n");
        return 2;
    }

    try {
        ServeSchedulerConfig cfg;
        cfg.workers = workers;
        // An identical-machine fleet, the common soak shape.
        cfg.backends.assign(backends, "guadalupe");
        cfg.stateDir = stateDir;
        cfg.resume = resume;

        if (killAfter > 0)
            CrashPoints::arm(kCrashServeJobBoundary, killAfter,
                             CrashPoints::Action::Exit);

        ServeScheduler scheduler(cfg);
        if (!resume) {
            for (std::uint64_t i = 0; i < runs; ++i)
                scheduler.submit(makeSpec(seed, i, tenants, jobsPerRun,
                                          crashFrac,
                                          !stateDir.empty()));
        }
        scheduler.drain();
        CrashPoints::disarm();

        // Collect results in job-id order (deterministic layout).
        const std::vector<std::uint64_t> ids = scheduler.jobIds();
        std::string table;
        std::size_t completed = 0;
        std::map<std::uint64_t, ServeJobInfo> byId;
        for (std::uint64_t id : ids) {
            const auto info = scheduler.poll(id);
            if (!info)
                continue;
            byId.emplace(id, *info);
            if (info->state == ServeJobState::Completed) {
                ++completed;
                table += std::to_string(id) + ',' +
                         info->trajectoryDigest + '\n';
            }
        }
        const std::uint64_t combined = fnv1a64(table);
        std::printf("soak: %zu/%zu completed, combined digest "
                    "%016llx (replayed %zu)\n",
                    completed, byId.size(),
                    static_cast<unsigned long long>(combined),
                    scheduler.replayedCompletions());
        if (!digestOut.empty())
            atomicWriteFile(digestOut, table);

        if (verifySolo) {
            // Solo re-execution of every completed spec, sequentially
            // on this thread — the reference the serve layer must
            // match bit for bit.
            std::size_t mismatches = 0;
            for (const auto &[id, info] : byId) {
                if (info.state != ServeJobState::Completed)
                    continue;
                const QismetVqe runner = buildRunner(info.spec);
                const QismetVqeResult solo =
                    runner.run(buildRunConfig(info.spec));
                const std::string want = trajectoryDigest(solo.run);
                if (want != info.trajectoryDigest) {
                    ++mismatches;
                    std::fprintf(stderr,
                                 "MISMATCH job %llu: serve %s solo "
                                 "%s\n",
                                 static_cast<unsigned long long>(id),
                                 info.trajectoryDigest.c_str(),
                                 want.c_str());
                }
            }
            if (mismatches != 0) {
                std::fprintf(stderr,
                             "serve_soak: %zu digest mismatches\n",
                             mismatches);
                return 1;
            }
            std::printf("verify-solo: all %zu completed runs "
                        "bit-identical to solo execution\n",
                        completed);
        }
    }
    catch (const std::exception &err) {
        std::fprintf(stderr, "serve_soak: %s\n", err.what());
        return 1;
    }
    return 0;
}
