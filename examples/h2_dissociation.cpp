/**
 * @file
 * Chemistry end-to-end: build H2 Hamiltonians from scratch (STO-3G
 * integrals -> symmetry-adapted orbitals -> Jordan-Wigner) and trace the
 * dissociation curve with exact diagonalization and a QISMET-protected
 * VQE under transient noise.
 */

#include <cstdio>

#include "apps/applications.hpp"
#include "hamiltonian/h2_molecule.hpp"

using namespace qismet;

int
main()
{
    std::printf("H2 dissociation curve (STO-3G, energies in Hartree)\n");
    std::printf("The 4-qubit Hamiltonians are built from first "
                "principles; see src/chem.\n\n");

    // Transient-only noisy machine, as in the paper's Fig. 18 setup.
    MachineModel machine = machineModel("guadalupe");
    machine.staticNoise.p1q = 0.0;
    machine.staticNoise.p2q = 0.0;
    machine.staticNoise.readoutP10 = 0.0;
    machine.staticNoise.readoutP01 = 0.0;
    machine.transient.burst.ratePerStep = 0.06;
    machine.transient.burst.magnitudeMedian = 0.7;

    std::printf("%-8s %-12s %-12s %-12s\n", "R (A)", "exact FCI",
                "VQE QISMET", "JW terms");

    for (double r : {0.5, 0.735, 1.0, 1.5, 2.0}) {
        const H2Problem prob = h2Problem(r);

        const auto ansatz = makeAnsatz("SU2", 4, 3);
        const QismetVqe runner(prob.hamiltonian, ansatz->build(), machine,
                               prob.fciEnergy);
        QismetVqeConfig cfg;
        cfg.totalJobs = 900;
        cfg.seed = 11;
        cfg.spsaInitialStep = 1.5;
        cfg.scheme = Scheme::Qismet;
        const auto res = runner.run(cfg);

        std::printf("%-8.3f %-12.4f %-12.4f %-12zu\n", r, prob.fciEnergy,
                    res.run.finalEstimate,
                    prob.hamiltonian.numTerms());
    }

    std::printf("\nThe minimum near R = 0.735 A at about -1.137 Ha is "
                "the textbook STO-3G FCI value.\n");
    return 0;
}
