/**
 * @file
 * Bring-your-own-machine: define a custom simulated device (static
 * noise + transient personality), calibrate QISMET's error threshold
 * for it, and compare skip-rate targets — the workflow a user follows
 * when tuning QISMET for new hardware (paper Section 8.1).
 */

#include <cstdio>

#include "apps/applications.hpp"

using namespace qismet;

int
main()
{
    // A hypothetical device: decent gates, but a nasty TLS neighborhood
    // producing frequent medium transients.
    MachineModel device;
    device.name = "my-device";
    device.numQubits = 12;
    device.staticNoise.p1q = 2e-4;
    device.staticNoise.p2q = 8e-3;
    device.staticNoise.readoutP10 = 0.01;
    device.staticNoise.readoutP01 = 0.02;
    device.staticNoise.t1Us = 120.0;
    device.staticNoise.t2Us = 95.0;
    device.transient.burst.ratePerStep = 0.03;
    device.transient.burst.magnitudeMedian = 0.5;
    device.transient.burst.meanDurationSteps = 5.0;
    device.transient.driftStddev = 0.012;

    // Problem: the paper's 6-qubit TFIM with an SU2 ansatz.
    Application app = application(1);
    app.machine = device;
    const QismetVqe runner = app.makeRunner();

    std::printf("Device '%s': energy scale %.3f\n", device.name.c_str(),
                runner.energyScale());
    std::printf("Calibrated relative thresholds: conservative %.3f, "
                "default %.3f, aggressive %.3f\n\n",
                runner.calibratedThreshold(SkipTargets::kConservative, 1),
                runner.calibratedThreshold(SkipTargets::kDefault, 1),
                runner.calibratedThreshold(SkipTargets::kAggressive, 1));

    QismetVqeConfig cfg;
    cfg.totalJobs = 1200;
    cfg.seed = 3;

    std::printf("%-22s %-14s %-10s\n", "scheme", "final estimate",
                "skips");
    for (Scheme s : {Scheme::Baseline, Scheme::QismetConservative,
                     Scheme::Qismet, Scheme::QismetAggressive}) {
        cfg.scheme = s;
        const auto res = runner.run(cfg);
        std::printf("%-22s %-14.4f %-10.3f\n", res.scheme.c_str(),
                    res.run.finalEstimate, res.skipFraction);
    }

    std::printf("\nPick the threshold whose skip budget matches your "
                "device's transient frequency (Section 8.1).\n");
    return 0;
}
