/**
 * @file
 * A microscope on the QISMET controller: drive it by hand through a
 * hand-crafted transient episode and print every Fig.-8 quantity and
 * every Fig.-9 decision it makes.
 *
 * This example uses the library's low-level pieces directly (estimator,
 * job executor, controller) rather than the integrated QismetVqe
 * runner, which is exactly what you would do to embed QISMET in your
 * own tuning loop.
 */

#include <cstdio>

#include "ansatz/real_amplitudes.hpp"
#include "core/controller.hpp"
#include "hamiltonian/tfim.hpp"
#include "noise/machine_model.hpp"
#include "vqe/job.hpp"

using namespace qismet;

int
main()
{
    // Problem: 4-qubit TFIM, RealAmplitudes ansatz.
    const PauliSum hamiltonian = tfimHamiltonian({.numQubits = 4});
    const RealAmplitudes ansatz_gen(4, 2);
    const Circuit ansatz = ansatz_gen.build();

    EstimatorConfig est_cfg;
    est_cfg.mode = EstimatorMode::Analytic;
    est_cfg.shots = 1 << 16;
    const EnergyEstimator estimator(
        hamiltonian, ansatz, machineModel("guadalupe").staticModel(),
        est_cfg);

    // A hand-crafted transient episode: quiet, then a three-job burst,
    // then quiet again.
    const TransientTrace trace(
        {0.0, 0.0, 0.0, 0.55, 0.70, 0.45, 0.0, 0.0, 0.0, 0.0});
    JobExecutor executor(estimator, trace, /*seed=*/9,
                         /*intra_job_jitter=*/0.005,
                         /*relative_jitter=*/0.1);

    // The controller, with an absolute-style threshold for clarity.
    QismetControllerConfig ctrl_cfg;
    ctrl_cfg.relativeThreshold = 0.10;
    ctrl_cfg.noiseFloor = 0.08;
    ctrl_cfg.mixedEnergy = hamiltonian.identityCoefficient();
    GradientFaithfulController controller(ctrl_cfg);

    // Two parameter points a small step apart play the roles of
    // consecutive VQA iterations.
    Rng rng(5);
    std::vector<double> theta_prev(
        static_cast<std::size_t>(ansatz.numParams()), 0.35);
    std::vector<double> theta_curr = theta_prev;
    for (auto &t : theta_curr)
        t += 0.05 * rng.normal();

    std::printf("ideal E(prev) = %.4f, ideal E(curr) = %.4f\n\n",
                estimator.idealEnergy(theta_prev),
                estimator.idealEnergy(theta_curr));
    std::printf("%-4s %-6s %-9s %-9s %-9s %-9s %-9s %s\n", "job", "tau",
                "E_m(i)", "E_mR(i)", "E_m(i+1)", "T_m", "G_p",
                "decision");

    // Bootstrap: evaluate the "previous" iteration in job 0.
    JobRequest first;
    first.evaluations.push_back(theta_prev);
    const JobResult job0 = executor.execute(first);
    double e_prev = job0.energies[0];
    std::printf("%-4zu %-6.2f %-9.4f %-9s %-9s %-9s %-9s (reference)\n",
                job0.jobIndex, job0.transientIntensity, e_prev, "-", "-",
                "-", "-");

    // Walk through the episode, letting the controller accept/skip.
    TransientEstimator fig8;
    while (executor.jobsExecuted() < trace.size()) {
        JobRequest req;
        req.evaluations.push_back(theta_curr); // E_m(i+1)
        req.evaluations.push_back(theta_prev); // E_mR(i), same job
        const JobResult job = executor.execute(req);

        EvalContext ctx;
        ctx.ePrev = e_prev;
        ctx.eCurr = job.energies[0];
        ctx.hasReference = true;
        ctx.eReferenceRerun = job.energies[1];

        const TransientEstimate est = fig8.estimate(
            ctx.ePrev, ctx.eReferenceRerun, ctx.eCurr);
        const Decision d = controller.judgeEvaluation(ctx);

        std::printf("%-4zu %-6.2f %-9.4f %-9.4f %-9.4f %-9.4f %-9.4f %s\n",
                    job.jobIndex, job.transientIntensity, ctx.ePrev,
                    ctx.eReferenceRerun, ctx.eCurr, est.transient,
                    est.predictedGradient,
                    d == Decision::Accept ? "ACCEPT" : "SKIP + retry");

        if (d == Decision::Accept) {
            // The accepted point becomes the new reference.
            e_prev = ctx.eCurr;
            theta_prev = theta_curr;
            for (auto &t : theta_curr)
                t += 0.05 * rng.normal();
        }
        // On a skip the same theta_curr is re-executed next job.
    }

    std::printf("\nController skipped %zu of %zu judged evaluations.\n",
                controller.skipsIssued(), controller.judged());
    std::printf("Skips concentrate inside the tau=0.55-0.70 burst: the\n"
                "transient flips the perceived gradient there, and the\n"
                "rerun-based prediction G_p exposes the flip.\n");
    return 0;
}
