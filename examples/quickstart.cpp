/**
 * @file
 * Quickstart: run a 6-qubit TFIM VQE on a simulated noisy machine with
 * and without QISMET, in under a minute of reading.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "apps/applications.hpp"

using namespace qismet;

int
main()
{
    // 1. Pick a problem: the paper's App2 — a 6-qubit transverse-field
    //    Ising model, RealAmplitudes ansatz (4 reps), on a simulated
    //    IBMQ Guadalupe with its transient-noise personality.
    const Application app = application(2);
    std::printf("Problem: %s — %d-qubit TFIM, %s ansatz (reps %d) on %s\n",
                app.spec.id.c_str(), app.spec.numQubits,
                app.spec.ansatzName.c_str(), app.spec.reps,
                app.machine.name.c_str());
    std::printf("Exact ground energy: %.4f\n\n", app.exactGroundEnergy);

    // 2. Build the experiment runner. It owns the Hamiltonian, the
    //    ansatz, the machine's static noise and its transient traces.
    const QismetVqe runner = app.makeRunner();

    // 3. Configure a run: 1000 quantum jobs (one energy evaluation
    //    each; QISMET retries also consume jobs).
    QismetVqeConfig config;
    config.totalJobs = 1000;
    config.seed = 42;

    // 4. Baseline: plain SPSA tuning; transients corrupt both the
    //    reported estimates and the tuner's cross-job gradients.
    config.scheme = Scheme::Baseline;
    const QismetVqeResult baseline = runner.run(config);

    // 5. QISMET: every job reruns the previous iteration's circuits,
    //    estimates the transient T_m, skips gradient-unfaithful
    //    iterations and keeps the tuner on the transient-free path.
    config.scheme = Scheme::Qismet;
    const QismetVqeResult qismet = runner.run(config);

    std::printf("%-10s final estimate %8.4f (true energy of final "
                "parameters %8.4f)\n",
                "Baseline", baseline.run.finalEstimate,
                baseline.run.finalIdealEnergy);
    std::printf("%-10s final estimate %8.4f (true energy of final "
                "parameters %8.4f)\n",
                "QISMET", qismet.run.finalEstimate,
                qismet.run.finalIdealEnergy);
    std::printf("\nQISMET skipped %.1f%% of iterations (error threshold "
                "calibrated to a 10%% target) and used %zu retries.\n",
                100.0 * qismet.skipFraction, qismet.run.retriesUsed);
    std::printf("Improvement in the measured expectation: %.0f%%\n",
                100.0 *
                    (baseline.run.finalEstimate -
                     qismet.run.finalEstimate) /
                    std::abs(baseline.run.finalEstimate));
    return 0;
}
