/**
 * @file
 * Crash-safe checkpoint/resume demo and CI smoke-test driver.
 *
 * Runs one QISMET VQE with a durable run journal + snapshots in
 * --checkpoint-dir, optionally killing itself (a genuine
 * std::_Exit(43), no destructors, no flushes) after a given number of
 * optimizer iterations. Re-running with --resume continues from the
 * journal and finishes the run bit-identically to a never-interrupted
 * one; the printed trajectory digest is the proof.
 *
 *   # straight run (no checkpointing) — reference digest
 *   ./build/examples/checkpoint_resume --app 1 --jobs 200
 *
 *   # kill after 8 iterations, then resume; digests must match
 *   ./build/examples/checkpoint_resume --app 1 --jobs 200 \
 *       --checkpoint-dir /tmp/ckpt --crash-after-iters 8   # exits 43
 *   ./build/examples/checkpoint_resume --app 1 --jobs 200 \
 *       --checkpoint-dir /tmp/ckpt --resume
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "apps/applications.hpp"
#include "common/thread_pool.hpp"
#include "core/qismet_vqe.hpp"
#include "fault/crash_point.hpp"
#include "hamiltonian/h2_molecule.hpp"
#include "noise/machine_model.hpp"
#include "vqe/run_digest.hpp"

using namespace qismet;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: checkpoint_resume [options]\n"
        "  --app N               paper application (default) or --h2\n"
        "  --h2                  H2 molecule VQE instead of an app\n"
        "  --jobs N              total job budget (default 200)\n"
        "  --seed S              run seed (default 23)\n"
        "  --threads N           worker threads (default: hardware)\n"
        "  --faults              enable the mixed 6%% fault load\n"
        "  --checkpoint-dir D    journal + snapshots in D\n"
        "  --resume              resume from --checkpoint-dir\n"
        "  --snapshot-every N    snapshot cadence in iterations\n"
        "  --crash-after-iters N std::_Exit(43) at the Nth iteration\n"
        "                        boundary (simulated SIGKILL)\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    int appIndex = 1;
    bool useH2 = false;
    std::size_t jobs = 200;
    std::uint64_t seed = 23;
    bool faults = false;
    std::string checkpointDir;
    bool resume = false;
    std::size_t snapshotEvery = 1;
    int crashAfter = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--app" && hasValue)
            appIndex = std::atoi(argv[++i]);
        else if (arg == "--h2")
            useH2 = true;
        else if (arg == "--jobs" && hasValue)
            jobs = static_cast<std::size_t>(std::atol(argv[++i]));
        else if (arg == "--seed" && hasValue)
            seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
        else if (arg == "--threads" && hasValue)
            ParallelExecutor::setGlobalThreads(
                static_cast<std::size_t>(std::atol(argv[++i])));
        else if (arg == "--faults")
            faults = true;
        else if (arg == "--checkpoint-dir" && hasValue)
            checkpointDir = argv[++i];
        else if (arg == "--resume")
            resume = true;
        else if (arg == "--snapshot-every" && hasValue)
            snapshotEvery =
                static_cast<std::size_t>(std::atol(argv[++i]));
        else if (arg == "--crash-after-iters" && hasValue)
            crashAfter = std::atoi(argv[++i]);
        else
            return usage();
    }

    QismetVqeConfig cfg;
    cfg.totalJobs = jobs;
    cfg.seed = seed;
    cfg.scheme = Scheme::Qismet;
    cfg.checkpointDir = checkpointDir;
    cfg.resume = resume;
    cfg.snapshotEveryIters = snapshotEvery;
    if (faults) {
        cfg.faults.timeoutRate = 0.02;
        cfg.faults.errorRate = 0.01;
        cfg.faults.partialRate = 0.02;
        cfg.faults.referenceLossRate = 0.01;
        cfg.faults.burstCoupling = 1.0;
    }

    if (crashAfter > 0) {
        if (checkpointDir.empty()) {
            std::fprintf(stderr, "--crash-after-iters needs "
                                 "--checkpoint-dir\n");
            return 2;
        }
        // Real process death: no destructors, no stream flushes — the
        // only survivors are the fsynced journal and the atomically
        // replaced snapshot.
        CrashPoints::arm(kCrashIterationBoundary, crashAfter,
                         CrashPoints::Action::Exit);
    }

    try {
        QismetVqeResult result;
        if (useH2) {
            const H2Problem prob = h2Problem(0.735);
            const QismetVqe runner(prob.hamiltonian,
                                   makeAnsatz("SU2", 4, 3)->build(),
                                   machineModel("guadalupe"),
                                   prob.fciEnergy);
            result = runner.run(cfg);
        }
        else {
            const Application app = application(appIndex);
            result = app.makeRunner().run(cfg);
        }
        std::printf("digest %s\n",
                    trajectoryDigest(result.run).c_str());
        std::printf("final  %.17g (jobs %zu, carried forward %zu)\n",
                    result.run.finalEstimate, result.run.jobsUsed,
                    result.run.evalsCarriedForward);
    }
    catch (const std::exception &err) {
        std::fprintf(stderr, "checkpoint_resume: %s\n", err.what());
        return 1;
    }
    return 0;
}
