/**
 * @file
 * Ablation — fault injection and resilience. Sweeps the job-fault rate
 * (a mixed load of timeouts, errors, shot-truncated partials and
 * reference-rerun losses, burst-correlated with the transient trace)
 * against the tuning schemes, and the retry budget at a fixed 10%
 * fault rate. Shape check: QISMET's final-energy error at a 10% fault
 * rate stays within 1.5x of its fault-free error — the resilience
 * layer (bounded retry, widened-band degraded accepts, carry-forward)
 * absorbs the loss instead of collapsing the trajectory.
 *
 * Raw rows are also dumped to bench_ablation_faults.csv for plotting.
 */

#include <cmath>
#include <iostream>

#include "apps/applications.hpp"
#include "common/csv_writer.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

namespace {

/** Mixed fault load totalling `rate`, burst-coupled to the trace. */
FaultPolicy
mixedFaults(double rate)
{
    FaultPolicy faults;
    faults.timeoutRate = 0.4 * rate;
    faults.errorRate = 0.2 * rate;
    faults.partialRate = 0.2 * rate;
    faults.referenceLossRate = 0.2 * rate;
    faults.burstCoupling = 1.0;
    return faults;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Ablation — fault injection & resilience",
        "Expect: QISMET degrades gracefully — at a 10% job-fault rate "
        "its final-energy error stays within 1.5x of fault-free.");

    const Application app = application(2);
    const QismetVqe runner = app.makeRunner();
    const double exact = app.exactGroundEnergy;

    QismetVqeConfig cfg;
    cfg.totalJobs = 1500;

    CsvWriter csv("bench_ablation_faults.csv",
                  {"fault_rate", "scheme", "retry_budget",
                   "final_estimate", "abs_error"});

    // --- Fault-rate sweep, both schemes --------------------------------
    TablePrinter table("Final estimate vs job-fault rate (seed-averaged)");
    table.setHeader({"fault rate", "scheme", "final estimate",
                     "|error|", "skips"});
    double qismet_err_clean = 0.0;
    double qismet_err_10 = 0.0;
    for (const double rate : {0.0, 0.05, 0.10, 0.20}) {
        QismetVqeConfig c = cfg;
        c.faults = mixedFaults(rate);
        for (const Scheme scheme : {Scheme::Baseline, Scheme::Qismet}) {
            const auto out = bench::runAveraged(runner, c, scheme);
            const double err = std::abs(out.meanEstimate - exact);
            table.addRow({formatDouble(rate, 2), out.scheme,
                          formatDouble(out.meanEstimate, 3),
                          formatDouble(err, 3),
                          formatDouble(out.meanSkipFraction, 3)});
            csv.writeRow({formatDouble(rate, 2), out.scheme,
                          std::to_string(c.retryBudget),
                          formatDouble(out.meanEstimate, 6),
                          formatDouble(err, 6)});
            if (scheme == Scheme::Qismet && rate == 0.0)
                qismet_err_clean = err;
            if (scheme == Scheme::Qismet && rate == 0.10)
                qismet_err_10 = err;
        }
    }
    table.print(std::cout);

    // --- Retry-budget sweep at the 10% fault point ---------------------
    TablePrinter budgets("Retry budget at 10% fault rate (QISMET)");
    budgets.setHeader({"retry budget", "final estimate", "|error|"});
    for (const int budget : {1, 3, 5, 10}) {
        QismetVqeConfig c = cfg;
        c.faults = mixedFaults(0.10);
        c.retryBudget = budget;
        const auto out = bench::runAveraged(runner, c, Scheme::Qismet);
        const double err = std::abs(out.meanEstimate - exact);
        budgets.addRow({std::to_string(budget),
                        formatDouble(out.meanEstimate, 3),
                        formatDouble(err, 3)});
        csv.writeRow({formatDouble(0.10, 2), "QISMET-budget",
                      std::to_string(budget),
                      formatDouble(out.meanEstimate, 6),
                      formatDouble(err, 6)});
    }
    budgets.print(std::cout);

    const double ratio = qismet_err_10 / std::max(1e-12, qismet_err_clean);
    std::cout << "Shape check: QISMET error at 10% faults is "
              << formatDouble(ratio, 2) << "x its fault-free error ("
              << (ratio <= 1.5 ? "within" : "OUTSIDE")
              << " the 1.5x resilience bound).\n";
    return ratio <= 1.5 ? 0 : 1;
}
