/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries: seed-averaged
 * scheme runs, series printing, and the standard experiment metrics.
 */

#ifndef QISMET_BENCH_SUPPORT_HPP
#define QISMET_BENCH_SUPPORT_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "apps/experiment_runner.hpp"

namespace qismet::bench {

/** Seeds used by every bench for seed-averaged results. */
inline const std::vector<std::uint64_t> kSeeds = {7, 17, 27};

/** Seed-averaged outcome of one scheme. */
struct AveragedOutcome
{
    std::string scheme;
    double meanEstimate = 0.0;
    double meanIdealEnergy = 0.0;
    double meanSkipFraction = 0.0;
    double meanCircuits = 0.0;
    /** Per-iteration reported-energy series of the first seed. */
    std::vector<double> exampleSeries;
};

/**
 * Run one scheme over the standard seed set and average the endpoints.
 *
 * Trials fan out over the global ParallelExecutor (QismetVqe::
 * runEnsemble) and are folded in seed order, so the averages are
 * bit-identical for every `--threads` setting.
 */
AveragedOutcome runAveraged(const QismetVqe &runner, QismetVqeConfig config,
                            Scheme scheme,
                            const std::vector<std::uint64_t> &seeds = kSeeds);

/**
 * Configure the global ParallelExecutor from the command line: accepts
 * `--threads=N` or `--threads N` (0 means all hardware threads). With
 * no flag, the QISMET_THREADS environment variable still applies.
 * Consumed arguments are removed from argv/argc so downstream parsers
 * (google-benchmark) never see them. Call first thing in every bench
 * main; returns the active thread count.
 */
std::size_t configureThreads(int &argc, char **argv);

/** Print a convergence series as a caption + sparkline + endpoints. */
void printSeries(const std::string &label, const std::vector<double> &series);

/** Paper-style percent improvement (E_base - E_scheme) / |E_base|. */
double percentImprovement(double base_estimate, double scheme_estimate);

/** Print the standard bench header. */
void printHeader(const std::string &figure, const std::string &claim);

} // namespace qismet::bench

#endif // QISMET_BENCH_SUPPORT_HPP
