/**
 * @file
 * google-benchmark kernel timings for the library's hot paths: the
 * statevector simulator, the density-matrix channel application, Pauli
 * expectations, the noisy energy estimator, and a full QISMET VQE job
 * loop. These set expectations for how long the figure benches take.
 */

#include <benchmark/benchmark.h>

#include "apps/applications.hpp"
#include "common/thread_pool.hpp"
#include "hamiltonian/tfim.hpp"
#include "pauli/expectation.hpp"
#include "sim/density_matrix.hpp"
#include "support.hpp"

using namespace qismet;

namespace {

void
BM_StatevectorAnsatzRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const auto ansatz = makeAnsatz("RA", n, 4);
    const Circuit circuit = ansatz->build();
    Rng rng(3);
    const auto theta = ansatz->randomInitialPoint(rng);

    for (auto _ : state) {
        Statevector st(n);
        st.run(circuit, theta);
        benchmark::DoNotOptimize(st.amplitudes().data());
    }
}
BENCHMARK(BM_StatevectorAnsatzRun)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void
BM_PauliExpectation(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const PauliSum h = tfimHamiltonian({.numQubits = n});
    const auto ansatz = makeAnsatz("RA", n, 4);
    Rng rng(5);
    Statevector st(n);
    st.run(ansatz->build(), ansatz->randomInitialPoint(rng));

    for (auto _ : state) {
        benchmark::DoNotOptimize(expectation(st, h));
    }
}
BENCHMARK(BM_PauliExpectation)->Arg(4)->Arg(6)->Arg(8);

void
BM_DensityMatrixNoisyGate(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    DensityMatrix rho(n);
    const KrausChannel dep = KrausChannel::depolarizing2q(0.01);
    for (auto _ : state) {
        rho.applyChannel2q(0, 1, dep);
        benchmark::DoNotOptimize(rho.trace());
    }
}
BENCHMARK(BM_DensityMatrixNoisyGate)->Arg(4)->Arg(6)->Arg(8);

void
BM_DensityMatrixScratchReuse(benchmark::State &state)
{
    // Guards the no-allocation contract of the channel/gate hot loop:
    // after a warm-up pass sizes the member scratch, steady-state
    // iterations must not reallocate (scratchAllocCount must not move).
    const int n = static_cast<int>(state.range(0));
    DensityMatrix rho(n);
    const KrausChannel dep2 = KrausChannel::depolarizing2q(0.01);
    const KrausChannel amp = KrausChannel::amplitudeDamping(0.02);
    Gate h;
    h.type = GateType::H;
    h.qubits = {0};

    rho.applyChannel2q(0, 1, dep2);
    rho.applyChannel1q(0, amp);
    rho.applyGate(h);
    const std::size_t warm = rho.scratchAllocCount();

    for (auto _ : state) {
        rho.applyChannel2q(0, 1, dep2);
        rho.applyChannel1q(0, amp);
        rho.applyGate(h);
        benchmark::DoNotOptimize(rho.trace());
    }
    if (rho.scratchAllocCount() != warm)
        state.SkipWithError("density-matrix scratch reallocated after warm-up");
    state.counters["scratch_allocs"] =
        static_cast<double>(rho.scratchAllocCount());
}
BENCHMARK(BM_DensityMatrixScratchReuse)->Arg(4)->Arg(6);

void
BM_EnergyEstimate(benchmark::State &state)
{
    const Application app = application(2);
    EstimatorConfig cfg;
    cfg.mode = state.range(0) ? EstimatorMode::Sampling
                              : EstimatorMode::Analytic;
    cfg.shots = 4096;
    EnergyEstimator est(app.hamiltonian, app.ansatzCircuit,
                        app.machine.staticModel(), cfg);
    Rng rng(7);
    std::vector<double> theta(
        static_cast<std::size_t>(app.ansatzCircuit.numParams()), 0.3);

    for (auto _ : state) {
        benchmark::DoNotOptimize(est.estimate(theta, 0.1, rng));
    }
}
BENCHMARK(BM_EnergyEstimate)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"sampling"});

void
BM_QismetVqeRun(benchmark::State &state)
{
    const Application app = application(2);
    const QismetVqe runner = app.makeRunner();
    QismetVqeConfig cfg;
    cfg.totalJobs = static_cast<std::size_t>(state.range(0));
    cfg.scheme = Scheme::Qismet;

    for (auto _ : state) {
        benchmark::DoNotOptimize(runner.run(cfg).run.finalEstimate);
    }
}
BENCHMARK(BM_QismetVqeRun)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void
BM_QismetVqeEnsembleThreads(benchmark::State &state)
{
    // Parallel-engine scaling probe: the bench layer's trial-ensemble
    // fan-out at 1..N workers. Results are bit-identical across thread
    // counts (the determinism contract); only wall clock changes.
    const Application app = application(2);
    const QismetVqe runner = app.makeRunner();
    QismetVqeConfig cfg;
    cfg.totalJobs = 200;
    cfg.scheme = Scheme::Qismet;
    const std::vector<std::uint64_t> seeds = {7, 17, 27, 37};

    const std::size_t previous = ParallelExecutor::global().threads();
    ParallelExecutor::setGlobalThreads(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runner.runEnsemble(cfg, seeds).front().run.finalEstimate);
    }
    ParallelExecutor::setGlobalThreads(previous);
}
BENCHMARK(BM_QismetVqeEnsembleThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    qismet::bench::configureThreads(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
