/**
 * @file
 * google-benchmark kernel timings for the library's hot paths: the
 * statevector simulator, the density-matrix channel application, Pauli
 * expectations, the noisy energy estimator, and a full QISMET VQE job
 * loop. These set expectations for how long the figure benches take.
 */

#include <benchmark/benchmark.h>

#include <cmath>

#include "apps/applications.hpp"
#include "common/amp_span.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "hamiltonian/tfim.hpp"
#include "pauli/expectation.hpp"
#include "sim/density_matrix.hpp"
#include "sim/kernels.hpp"
#include "support.hpp"

using namespace qismet;

namespace {

// ---------------------------------------------------------------------
// Per-kernel amplitude-throughput benches (DESIGN.md "SIMD +
// intra-state parallelism"). Args are (qubits, simd) — the simd:0
// variants pin the scalar path via setSimdEnabled(false), so one report
// carries the A/B pair the CI speedup gate compares. Matrices are
// unitary so repeated application keeps the amplitudes bounded (no
// subnormal/NaN slow paths polluting the timing).
// ---------------------------------------------------------------------

/** Restore the ambient SIMD switch when a bench scope exits. */
class SimdScope
{
  public:
    explicit SimdScope(bool on) : saved_(simdEnabled())
    {
        setSimdEnabled(on);
    }
    ~SimdScope() { setSimdEnabled(saved_); }

  private:
    bool saved_;
};

std::vector<Complex>
benchState(int n)
{
    Rng rng(91);
    std::vector<Complex> amps(std::size_t{1} << n);
    double norm2 = 0.0;
    for (auto &a : amps) {
        a = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
        norm2 += std::norm(a);
    }
    const double inv = 1.0 / std::sqrt(norm2);
    for (auto &a : amps)
        a *= inv;
    return amps;
}

void
setAmpCounters(benchmark::State &state, double amps_per_iter)
{
    state.counters["amps_per_sec"] = benchmark::Counter(
        amps_per_iter, benchmark::Counter::kIsIterationInvariantRate);
    state.SetLabel(simdBackendName());
}

void
BM_KernelDense1(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    SimdScope simd(state.range(1) != 0);
    std::vector<Complex> amps = benchState(n);
    const AmpSpan span = AmpSpan::interleaved(amps.data(), amps.size());
    // RX(0.3): complex entries, unitary — takes the general path.
    const double c = std::cos(0.15), s = std::sin(0.15);
    const Complex m[4] = {Complex(c, 0.0), Complex(0.0, -s),
                          Complex(0.0, -s), Complex(c, 0.0)};
    for (auto _ : state) {
        kern::applyDense1(span, n / 2, m);
        benchmark::DoNotOptimize(amps.data());
    }
    setAmpCounters(state, static_cast<double>(amps.size()));
}
BENCHMARK(BM_KernelDense1)
    ->ArgsProduct({{8, 10, 12, 14}, {0, 1}})
    ->ArgNames({"qubits", "simd"});

void
BM_KernelDense1Real(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    SimdScope simd(state.range(1) != 0);
    std::vector<Complex> amps = benchState(n);
    const AmpSpan span = AmpSpan::interleaved(amps.data(), amps.size());
    // RY(0.3): real entries, unitary — takes the real fast path.
    const double c = std::cos(0.15), s = std::sin(0.15);
    const Complex m[4] = {Complex(c, 0.0), Complex(-s, 0.0),
                          Complex(s, 0.0), Complex(c, 0.0)};
    for (auto _ : state) {
        kern::applyDense1(span, n / 2, m);
        benchmark::DoNotOptimize(amps.data());
    }
    setAmpCounters(state, static_cast<double>(amps.size()));
}
BENCHMARK(BM_KernelDense1Real)
    ->ArgsProduct({{10, 12, 14}, {0, 1}})
    ->ArgNames({"qubits", "simd"});

void
BM_KernelDense2(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    SimdScope simd(state.range(1) != 0);
    std::vector<Complex> amps = benchState(n);
    const AmpSpan span = AmpSpan::interleaved(amps.data(), amps.size());
    // RX(0.2) (x) RY(0.4): a dense unitary 4x4.
    const double cx = std::cos(0.1), sx = std::sin(0.1);
    const double cy = std::cos(0.2), sy = std::sin(0.2);
    const Complex rx[4] = {Complex(cx, 0.0), Complex(0.0, -sx),
                           Complex(0.0, -sx), Complex(cx, 0.0)};
    const Complex ry[4] = {Complex(cy, 0.0), Complex(-sy, 0.0),
                           Complex(sy, 0.0), Complex(cy, 0.0)};
    Complex m[16];
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            for (int k = 0; k < 2; ++k)
                for (int l = 0; l < 2; ++l)
                    m[(i * 2 + k) * 4 + (j * 2 + l)] =
                        rx[i * 2 + j] * ry[k * 2 + l];
    for (auto _ : state) {
        kern::applyDense2(span, n - 1, n / 2, m);
        benchmark::DoNotOptimize(amps.data());
    }
    setAmpCounters(state, static_cast<double>(amps.size()));
}
BENCHMARK(BM_KernelDense2)
    ->ArgsProduct({{8, 10, 12, 14}, {0, 1}})
    ->ArgNames({"qubits", "simd"});

void
BM_KernelDiag(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    SimdScope simd(state.range(1) != 0);
    std::vector<Complex> amps = benchState(n);
    const AmpSpan span = AmpSpan::interleaved(amps.data(), amps.size());
    // Merged CZ/S/T-style table over the top 3 qubits: unit-modulus
    // phases, one exact-one entry to exercise the skip branch. A
    // high-qubit mask gives the kernel contiguous scale runs (the
    // vectorizable shape); a low-qubit mask would degenerate to
    // stride-1 single-amplitude multiplies.
    const std::uint64_t mask = std::uint64_t{0b111} << (n - 3);
    Complex table[8];
    table[0] = Complex(1.0, 0.0);
    for (int i = 1; i < 8; ++i)
        table[i] = Complex(std::cos(0.3 * i), std::sin(0.3 * i));
    for (auto _ : state) {
        kern::applyDiag(span, mask, table);
        benchmark::DoNotOptimize(amps.data());
    }
    setAmpCounters(state, static_cast<double>(amps.size()));
}
BENCHMARK(BM_KernelDiag)
    ->ArgsProduct({{8, 10, 12, 14}, {0, 1}})
    ->ArgNames({"qubits", "simd"});

void
BM_KernelPermSwap(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    SimdScope simd(state.range(1) != 0);
    std::vector<Complex> amps = benchState(n);
    const AmpSpan span = AmpSpan::interleaved(amps.data(), amps.size());
    for (auto _ : state) {
        kern::applyPermSwap(span, 0, n - 1);
        benchmark::DoNotOptimize(amps.data());
    }
    setAmpCounters(state, static_cast<double>(amps.size()));
}
BENCHMARK(BM_KernelPermSwap)
    ->ArgsProduct({{10, 12, 14}, {0, 1}})
    ->ArgNames({"qubits", "simd"});

void
BM_KernelNorm2(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    SimdScope simd(state.range(1) != 0);
    std::vector<Complex> amps = benchState(n);
    const AmpSpan span = AmpSpan::interleaved(amps.data(), amps.size());
    for (auto _ : state) {
        benchmark::DoNotOptimize(kern::norm2(span));
    }
    setAmpCounters(state, static_cast<double>(amps.size()));
}
BENCHMARK(BM_KernelNorm2)
    ->ArgsProduct({{10, 12, 14}, {0, 1}})
    ->ArgNames({"qubits", "simd"});

void
BM_KernelDense1Threads(benchmark::State &state)
{
    // Intra-state partition scaling probe: same kernel, same bits, the
    // state split over 1..8 workers (above the parallel threshold).
    const int n = static_cast<int>(state.range(0));
    const std::size_t previous = ParallelExecutor::global().threads();
    ParallelExecutor::setGlobalThreads(
        static_cast<std::size_t>(state.range(1)));
    std::vector<Complex> amps = benchState(n);
    const AmpSpan span = AmpSpan::interleaved(amps.data(), amps.size());
    const double c = std::cos(0.15), s = std::sin(0.15);
    const Complex m[4] = {Complex(c, 0.0), Complex(0.0, -s),
                          Complex(0.0, -s), Complex(c, 0.0)};
    for (auto _ : state) {
        kern::applyDense1(span, n / 2, m);
        benchmark::DoNotOptimize(amps.data());
    }
    setAmpCounters(state, static_cast<double>(amps.size()));
    ParallelExecutor::setGlobalThreads(previous);
}
BENCHMARK(BM_KernelDense1Threads)
    ->ArgsProduct({{12, 14}, {1, 2, 4, 8}})
    ->ArgNames({"qubits", "threads"});

void
BM_KernelDense1Layout(benchmark::State &state)
{
    // Interleaved vs split-complex (SoA) A/B — the data behind the
    // layout decision recorded in common/amp_span.hpp.
    const int n = static_cast<int>(state.range(0));
    const bool split = state.range(1) != 0;
    std::vector<Complex> amps = benchState(n);
    SplitAmpBuffer buffer;
    buffer.pack(amps);
    const AmpSpan span =
        split ? buffer.span()
              : AmpSpan::interleaved(amps.data(), amps.size());
    const double c = std::cos(0.15), s = std::sin(0.15);
    const Complex m[4] = {Complex(c, 0.0), Complex(0.0, -s),
                          Complex(0.0, -s), Complex(c, 0.0)};
    for (auto _ : state) {
        kern::applyDense1(span, n / 2, m);
        benchmark::DoNotOptimize(amps.data());
        benchmark::DoNotOptimize(&buffer);
    }
    setAmpCounters(state, static_cast<double>(amps.size()));
}
BENCHMARK(BM_KernelDense1Layout)
    ->ArgsProduct({{10, 12, 14}, {0, 1}})
    ->ArgNames({"qubits", "split"});

void
BM_StatevectorAnsatzRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const auto ansatz = makeAnsatz("RA", n, 4);
    const Circuit circuit = ansatz->build();
    Rng rng(3);
    const auto theta = ansatz->randomInitialPoint(rng);

    for (auto _ : state) {
        Statevector st(n);
        st.run(circuit, theta);
        benchmark::DoNotOptimize(st.amplitudes().data());
    }
}
BENCHMARK(BM_StatevectorAnsatzRun)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void
BM_PauliExpectation(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const PauliSum h = tfimHamiltonian({.numQubits = n});
    const auto ansatz = makeAnsatz("RA", n, 4);
    Rng rng(5);
    Statevector st(n);
    st.run(ansatz->build(), ansatz->randomInitialPoint(rng));

    for (auto _ : state) {
        benchmark::DoNotOptimize(expectation(st, h));
    }
}
BENCHMARK(BM_PauliExpectation)->Arg(4)->Arg(6)->Arg(8);

void
BM_DensityMatrixNoisyGate(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    DensityMatrix rho(n);
    const KrausChannel dep = KrausChannel::depolarizing2q(0.01);
    for (auto _ : state) {
        rho.applyChannel2q(0, 1, dep);
        benchmark::DoNotOptimize(rho.trace());
    }
}
BENCHMARK(BM_DensityMatrixNoisyGate)->Arg(4)->Arg(6)->Arg(8);

void
BM_DensityMatrixScratchReuse(benchmark::State &state)
{
    // Guards the no-allocation contract of the channel/gate hot loop:
    // after a warm-up pass sizes the member scratch, steady-state
    // iterations must not reallocate (scratchAllocCount must not move).
    const int n = static_cast<int>(state.range(0));
    DensityMatrix rho(n);
    const KrausChannel dep2 = KrausChannel::depolarizing2q(0.01);
    const KrausChannel amp = KrausChannel::amplitudeDamping(0.02);
    Gate h;
    h.type = GateType::H;
    h.qubits = {0};

    rho.applyChannel2q(0, 1, dep2);
    rho.applyChannel1q(0, amp);
    rho.applyGate(h);
    const std::size_t warm = rho.scratchAllocCount();

    for (auto _ : state) {
        rho.applyChannel2q(0, 1, dep2);
        rho.applyChannel1q(0, amp);
        rho.applyGate(h);
        benchmark::DoNotOptimize(rho.trace());
    }
    if (rho.scratchAllocCount() != warm)
        state.SkipWithError("density-matrix scratch reallocated after warm-up");
    state.counters["scratch_allocs"] =
        static_cast<double>(rho.scratchAllocCount());
}
BENCHMARK(BM_DensityMatrixScratchReuse)->Arg(4)->Arg(6);

void
BM_EnergyEstimate(benchmark::State &state)
{
    const Application app = application(2);
    EstimatorConfig cfg;
    cfg.mode = state.range(0) ? EstimatorMode::Sampling
                              : EstimatorMode::Analytic;
    cfg.shots = 4096;
    EnergyEstimator est(app.hamiltonian, app.ansatzCircuit,
                        app.machine.staticModel(), cfg);
    Rng rng(7);
    std::vector<double> theta(
        static_cast<std::size_t>(app.ansatzCircuit.numParams()), 0.3);

    for (auto _ : state) {
        benchmark::DoNotOptimize(est.estimate(theta, 0.1, rng));
    }
}
BENCHMARK(BM_EnergyEstimate)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"sampling"});

void
BM_QismetVqeRun(benchmark::State &state)
{
    const Application app = application(2);
    const QismetVqe runner = app.makeRunner();
    QismetVqeConfig cfg;
    cfg.totalJobs = static_cast<std::size_t>(state.range(0));
    cfg.scheme = Scheme::Qismet;

    for (auto _ : state) {
        benchmark::DoNotOptimize(runner.run(cfg).run.finalEstimate);
    }
}
BENCHMARK(BM_QismetVqeRun)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void
BM_QismetVqeEnsembleThreads(benchmark::State &state)
{
    // Parallel-engine scaling probe: the bench layer's trial-ensemble
    // fan-out at 1..N workers. Results are bit-identical across thread
    // counts (the determinism contract); only wall clock changes.
    const Application app = application(2);
    const QismetVqe runner = app.makeRunner();
    QismetVqeConfig cfg;
    cfg.totalJobs = 200;
    cfg.scheme = Scheme::Qismet;
    const std::vector<std::uint64_t> seeds = {7, 17, 27, 37};

    const std::size_t previous = ParallelExecutor::global().threads();
    ParallelExecutor::setGlobalThreads(
        static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runner.runEnsemble(cfg, seeds).front().run.finalEstimate);
    }
    ParallelExecutor::setGlobalThreads(previous);
}
BENCHMARK(BM_QismetVqeEnsembleThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    qismet::bench::configureThreads(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
