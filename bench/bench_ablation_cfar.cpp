/**
 * @file
 * Ablation (paper Section 8.4): CFAR-style anomaly detection as a
 * transient filter. Like Kalman filtering, CA-CFAR flags anomalous
 * energy estimates against the local noise floor but cannot tell
 * detrimental transients from harmless (or constructive) ones.
 *
 * Protocol: run the baseline, then re-estimate the final energy after
 * dropping CFAR-flagged iterations, and compare the spike-removal power
 * against QISMET's reported series.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/statistics.hpp"
#include "common/table_printer.hpp"
#include "filter/cfar.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Ablation — CFAR anomaly filtering vs QISMET (Section 8.4)",
        "Expect: CFAR removes reporting spikes post-hoc but cannot "
        "repair the tuning; QISMET improves the underlying estimates.");

    const Application app = application(2);
    const QismetVqe runner = app.makeRunner();
    QismetVqeConfig cfg;
    cfg.totalJobs = 2000;

    const auto base = bench::runAveraged(runner, cfg, Scheme::Baseline);
    const auto qismet = bench::runAveraged(runner, cfg, Scheme::Qismet);

    // Post-hoc CFAR cleanup of the baseline's reported series.
    CfarDetector cfar(CfarParams{});
    const auto flags = cfar.detect(base.exampleSeries);
    std::vector<double> cleaned;
    for (std::size_t i = 0; i < base.exampleSeries.size(); ++i)
        if (!flags[i])
            cleaned.push_back(base.exampleSeries[i]);

    auto tail_mean = [](const std::vector<double> &xs, std::size_t k) {
        double s = 0.0;
        const std::size_t lo = xs.size() > k ? xs.size() - k : 0;
        for (std::size_t i = lo; i < xs.size(); ++i)
            s += xs[i];
        return s / static_cast<double>(xs.size() - lo);
    };

    int flagged = 0;
    for (bool f : flags)
        flagged += f ? 1 : 0;

    TablePrinter table("CFAR post-filtering vs QISMET (seed 7 series; "
                       "final = last-10 mean)");
    table.setHeader({"series", "final estimate", "notes"});
    table.addRow({"Baseline (raw)",
                  formatDouble(tail_mean(base.exampleSeries, 10), 3),
                  "spiky"});
    table.addRow({"Baseline + CFAR drop",
                  formatDouble(tail_mean(cleaned, 10), 3),
                  std::to_string(flagged) + " iterations flagged"});
    table.addRow({"QISMET",
                  formatDouble(tail_mean(qismet.exampleSeries, 10), 3),
                  "tuning itself protected"});
    table.print(std::cout);

    std::cout << "Paper claim: classical anomaly filters only clean the "
                 "reporting; they cannot steer the tuner away from "
                 "detrimental transients.\n";
    return 0;
}
