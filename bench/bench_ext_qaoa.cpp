/**
 * @file
 * Extension: QISMET on QAOA ("QISMET is broadly applicable across all
 * VQAs", paper Section 2). MaxCut on a 6-vertex random graph, QAOA
 * depth p = 3, on the simulated Guadalupe with its transient
 * personality. The metric is the approximation ratio achieved by the
 * measured expectation: ratio = -<C> / maxcut.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "qaoa/qaoa_ansatz.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Extension — QISMET on QAOA MaxCut (6 vertices, p = 3)",
        "Expect: the same transient-protection story as VQE — QISMET's "
        "approximation ratio beats the baseline's.");

    // A 6-ring: its max cut (6) is twice the random-assignment cut (3),
    // so the objective swing transients act on is large.
    const MaxCutProblem problem = MaxCutProblem::ring(6);
    const double maxcut = problem.maxCutValue();
    const QaoaAnsatz ansatz(problem, 3);

    std::cout << "Graph: 6-vertex ring, " << problem.edges().size()
              << " edges, exact MaxCut = " << maxcut << "\n";

    const PauliSum cost = problem.costHamiltonian();
    const QismetVqe runner(cost, ansatz.build(), machineModel("guadalupe"),
                           -maxcut);

    QismetVqeConfig cfg;
    cfg.totalJobs = 1500;
    // Warm start toward the good p=3 basin (coarse noise-free random
    // search — standard QAOA practice; start ratio ~0.45, so the tuner
    // has real work left), and gentler SPSA gains: QAOA's landscape is
    // sharper than the hardware-efficient-ansatz TFIM surfaces.
    cfg.initialTheta = {1.2, 2.2, 2.0, 0.5, 1.2, 2.0};
    cfg.spsaInitialStep = 0.10;
    cfg.spsaPerturbation = 0.05;

    TablePrinter table("QAOA MaxCut results (seed-averaged)");
    table.setHeader({"scheme", "<C> final", "approx. ratio", "skips"});
    for (Scheme s : {Scheme::NoiseFree, Scheme::Baseline, Scheme::Qismet,
                     Scheme::QismetDynamic}) {
        const auto out = bench::runAveraged(runner, cfg, s);
        table.addRow({out.scheme, formatDouble(out.meanEstimate, 3),
                      formatDouble(-out.meanEstimate / maxcut, 3),
                      formatDouble(out.meanSkipFraction, 3)});
    }
    table.print(std::cout);

    std::cout << "Shape check: QISMET's approximation ratio exceeds the "
                 "baseline's, mirroring the VQE results.\n";
    return 0;
}
