/**
 * @file
 * Batched-expectation engine timings: legacy term-by-term vs the
 * single-sweep grouped evaluator (pauli/expectation_plan.hpp), with
 * amps-and-terms/sec throughput counters. The batched:1/simd:1 vs
 * batched:0 ratio at 10+ qubits feeds the >=2x CI floor in
 * tools/ci.sh; BENCH_expectation.json tracks absolute wall-clock.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "pauli/expectation.hpp"
#include "pauli/expectation_plan.hpp"
#include "sim/density_matrix.hpp"
#include "support.hpp"

using namespace qismet;

namespace {

/** Restore the ambient SIMD switch when a bench scope exits. */
class SimdScope
{
  public:
    explicit SimdScope(bool on) : saved_(simdEnabled())
    {
        setSimdEnabled(on);
    }
    ~SimdScope() { setSimdEnabled(saved_); }

  private:
    bool saved_;
};

/** Restore the batched-engine switch when a bench scope exits. */
class BatchedScope
{
  public:
    explicit BatchedScope(bool on) : saved_(batchedExpectationEnabled())
    {
        setBatchedExpectationEnabled(on);
    }
    ~BatchedScope() { setBatchedExpectationEnabled(saved_); }

  private:
    bool saved_;
};

Statevector
benchState(int n)
{
    Rng rng(91);
    std::vector<Complex> amps(std::size_t{1} << n);
    for (auto &a : amps)
        a = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    Statevector st(std::move(amps));
    st.normalize();
    return st;
}

/**
 * Deterministic 24-term Hamiltonian with realistic xmask sharing: Z
 * fields and a ZZ chain (one xmask-0 group) plus XX and YY pairs on
 * the same bonds (shared per-bond xmasks) — the TFIM/Heisenberg shape
 * the >=2x floor is gated on.
 */
PauliSum
benchHamiltonian(int n)
{
    const auto width = static_cast<std::size_t>(n);
    PauliSum h(n);
    int terms = 0;
    for (int q = 0; q < n && terms < 8; ++q, ++terms) {
        std::string label(width, 'I');
        label[static_cast<std::size_t>(q)] = 'Z';
        h.add(0.9 - 0.05 * q, label);
    }
    for (int q = 0; q + 1 < n && terms < 14; ++q, ++terms) {
        std::string label(width, 'I');
        label[static_cast<std::size_t>(q)] = 'Z';
        label[static_cast<std::size_t>(q) + 1] = 'Z';
        h.add(0.5 + 0.03 * q, label);
    }
    for (int q = 0; q + 1 < n && terms < 19; ++q, ++terms) {
        std::string label(width, 'I');
        label[static_cast<std::size_t>(q)] = 'X';
        label[static_cast<std::size_t>(q) + 1] = 'X';
        h.add(0.4 - 0.02 * q, label);
    }
    for (int q = 0; q + 1 < n && terms < 24; ++q, ++terms) {
        std::string label(width, 'I');
        label[static_cast<std::size_t>(q)] = 'Y';
        label[static_cast<std::size_t>(q) + 1] = 'Y';
        h.add(0.3 + 0.01 * q, label);
    }
    return h;
}

void
setThroughputCounters(benchmark::State &state, int n,
                      std::size_t num_terms)
{
    const double amps = static_cast<double>(std::size_t{1} << n);
    // The quantity the single-sweep engine optimizes: (amplitude,
    // term) pairs touched per second. Legacy does one full amplitude
    // walk per term; batched does one walk per xmask group.
    state.counters["amp_terms_per_sec"] = benchmark::Counter(
        amps * static_cast<double>(num_terms),
        benchmark::Counter::kIsIterationInvariantRate);
    state.counters["amps_per_sec"] = benchmark::Counter(
        amps, benchmark::Counter::kIsIterationInvariantRate);
    state.SetLabel(simdBackendName());
}

void
BM_SumExpectation(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    BatchedScope batched(state.range(1) != 0);
    SimdScope simd(state.range(2) != 0);
    const Statevector st = benchState(n);
    const PauliSum h = benchHamiltonian(n);

    for (auto _ : state) {
        benchmark::DoNotOptimize(expectation(st, h));
    }
    setThroughputCounters(state, n, h.numTerms());
}
BENCHMARK(BM_SumExpectation)
    ->ArgsProduct({{10, 12, 14}, {0, 1}, {0, 1}})
    ->ArgNames({"qubits", "batched", "simd"});

void
BM_PlanEvaluate(benchmark::State &state)
{
    // The cross-iteration steady state: plan compiled once (a cache
    // hit in EnergyEstimator terms), evaluate per iteration.
    const int n = static_cast<int>(state.range(0));
    SimdScope simd(state.range(1) != 0);
    const Statevector st = benchState(n);
    const PauliSum h = benchHamiltonian(n);
    const ExpectationPlan plan(h);

    for (auto _ : state) {
        benchmark::DoNotOptimize(plan.evaluate(st));
    }
    setThroughputCounters(state, n, h.numTerms());
}
BENCHMARK(BM_PlanEvaluate)
    ->ArgsProduct({{10, 12, 14}, {0, 1}})
    ->ArgNames({"qubits", "simd"});

void
BM_PlanCompile(benchmark::State &state)
{
    // The cache-miss cost the ExpectationPlanCache amortizes away.
    const int n = static_cast<int>(state.range(0));
    const PauliSum h = benchHamiltonian(n);
    for (auto _ : state) {
        const ExpectationPlan plan(h);
        benchmark::DoNotOptimize(plan.numGroups());
    }
    state.counters["terms_per_sec"] = benchmark::Counter(
        static_cast<double>(h.numTerms()),
        benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PlanCompile)->Arg(10)->Arg(14);

void
BM_DensityMatrixSumExpectation(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    BatchedScope batched(state.range(1) != 0);
    const DensityMatrix rho{benchState(n)};
    const PauliSum h = benchHamiltonian(n);

    for (auto _ : state) {
        benchmark::DoNotOptimize(expectation(rho, h));
    }
    setThroughputCounters(state, n, h.numTerms());
}
BENCHMARK(BM_DensityMatrixSumExpectation)
    ->ArgsProduct({{6, 8}, {0, 1}})
    ->ArgNames({"qubits", "batched"});

} // namespace

int
main(int argc, char **argv)
{
    qismet::bench::configureThreads(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
