/**
 * @file
 * Extension: topology-aware routing overhead and its transient
 * consequences. The paper's Section-3.2 depth argument, made concrete:
 * the same logical ansatz routed onto the 7-qubit H lattice
 * (Casablanca/Jakarta) needs SWAP chains, so it runs more two-qubit
 * gates, has a lower survival factor, and is more exposed to
 * transients than on a linear Falcon segment.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "circuit/metrics.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"
#include "transpile/router.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Extension — routing onto device topologies",
        "Expect: the H-lattice machines pay SWAP overhead for the same "
        "logical ansatz, lowering the survival factor.");

    TablePrinter table("RealAmplitudes(6q) routed per machine topology");
    table.setHeader({"machine", "topology", "reps", "SWAPs", "CX count",
                     "survival factor"});

    for (const auto &machine_name : machineNames()) {
        const MachineModel machine = machineModel(machine_name);
        const CouplingMap map =
            CouplingMap::forMachine(machine_name, machine.numQubits);

        for (int reps : {2, 4}) {
            const auto ansatz = makeAnsatz("RA", 6, reps);
            const Circuit logical = ansatz->build();
            const auto routed = routeCircuit(logical, map);

            const StaticNoiseModel noise = machine.staticModel();
            table.addRow(
                {machine_name,
                 map.edges().size() == 6 && machine.numQubits == 7
                     ? "7q H lattice"
                     : "linear",
                 std::to_string(reps),
                 std::to_string(routed.swapsInserted),
                 std::to_string(
                     computeMetrics(routed.circuit).twoQubitGates),
                 formatDouble(noise.survivalFactor(routed.circuit), 3)});
        }
    }
    table.print(std::cout);

    std::cout << "Shape check: casablanca/jakarta rows pay SWAPs and "
                 "lose survival factor relative to the linear Falcons — "
                 "one concrete reason the paper's deepest apps on those "
                 "machines benefit most from QISMET.\n";
    return 0;
}
