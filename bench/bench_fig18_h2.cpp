/**
 * @file
 * Fig. 18 reproduction: potential energy of the H2 molecule over ten
 * bond lengths (0.4-2.0 Å), each a separate VQE experiment, with
 * transient noise only (no static noise component).
 *
 * Paper claim: QISMET's curve closely tracks the noise-free curve while
 * the baseline steadily deviates away from it.
 *
 * Substitution: the H2 Hamiltonians are built from first principles
 * (STO-3G integrals → symmetry-adapted HF → Jordan-Wigner; see
 * src/chem) instead of Qiskit's chemistry stack.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "hamiltonian/h2_molecule.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Fig. 18 — H2 potential-energy curve under transient-only noise",
        "Expect: QISMET close to the noise-free curve at every bond "
        "length; baseline deviates upward.");

    // Transient-only machine (static noise zeroed per the paper), with
    // a transient-dominated personality.
    MachineModel machine = machineModel("guadalupe");
    machine.staticNoise.p1q = 0.0;
    machine.staticNoise.p2q = 0.0;
    machine.staticNoise.readoutP10 = 0.0;
    machine.staticNoise.readoutP01 = 0.0;
    machine.transient.burst.ratePerStep = 0.06;
    machine.transient.burst.magnitudeMedian = 0.7;

    TablePrinter table("H2 energy per bond length (Hartree, "
                       "seed-averaged; 900 jobs per point)");
    table.setHeader({"R (A)", "exact FCI", "noise-free", "baseline",
                     "QISMET", "baseline err", "QISMET err"});

    double base_err_total = 0.0, qismet_err_total = 0.0;
    for (const H2Problem &prob : h2BondScan(0.4, 2.0, 10)) {
        const auto ansatz = makeAnsatz("SU2", 4, 3);
        const QismetVqe runner(prob.hamiltonian, ansatz->build(), machine,
                               prob.fciEnergy);

        QismetVqeConfig cfg;
        cfg.totalJobs = 900;
        cfg.spsaInitialStep = 1.5; // shallow chemistry landscape

        const auto noise_free =
            bench::runAveraged(runner, cfg, Scheme::NoiseFree);
        const auto base =
            bench::runAveraged(runner, cfg, Scheme::Baseline);
        const auto qismet =
            bench::runAveraged(runner, cfg, Scheme::Qismet);

        const double be = base.meanEstimate - prob.fciEnergy;
        const double qe = qismet.meanEstimate - prob.fciEnergy;
        base_err_total += std::abs(be);
        qismet_err_total += std::abs(qe);

        table.addRow({formatDouble(prob.bondAngstrom, 2),
                      formatDouble(prob.fciEnergy, 4),
                      formatDouble(noise_free.meanEstimate, 4),
                      formatDouble(base.meanEstimate, 4),
                      formatDouble(qismet.meanEstimate, 4),
                      formatDouble(be, 3), formatDouble(qe, 3)});
    }
    table.print(std::cout);

    std::cout << "Total |error| across the curve: baseline "
              << formatDouble(base_err_total, 3) << " Ha vs QISMET "
              << formatDouble(qismet_err_total, 3)
              << " Ha (paper: QISMET high-accuracy, baseline steadily "
                 "deviating).\n";
    return 0;
}
