/**
 * @file
 * Fig. 16 reproduction: Kalman filtering against QISMET and the
 * baseline on App6 over 500 iterations, sweeping the filter's
 * hyper-parameters MV ∈ {0.01, 0.1} and T ∈ {0.9, 0.99, 1}.
 *
 * Paper claims: low MV lets transient spikes through; high MV saturates
 * early; T < 1 forces a descent that hurts near minima. The best Kalman
 * instance gains ~1.4x over the baseline but QISMET is ~3x better than
 * the best Kalman variant, and the best instance varies by application.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Fig. 16 — Kalman filtering vs QISMET on App6 (500 iterations)",
        "Expect: Kalman variants between the baseline and QISMET at "
        "best; behavior strongly depends on (MV, T).");

    const Application app = application(6);
    const QismetVqe runner = app.makeRunner();

    QismetVqeConfig cfg;
    cfg.totalJobs = 1000; // ~500 iterations

    const auto base = bench::runAveraged(runner, cfg, Scheme::Baseline);
    const auto qismet = bench::runAveraged(runner, cfg, Scheme::Qismet);

    TablePrinter table("Kalman hyper-parameter sweep (seed-averaged "
                       "final reported estimate)");
    table.setHeader({"instance", "final estimate", "vs baseline",
                     "series (seed 7)"});
    table.addRow({"Baseline", formatDouble(base.meanEstimate, 3), "-",
                  sparkline(base.exampleSeries, 24)});

    double best_kalman = 1e9;
    std::string best_name;
    for (double mv : {0.01, 0.1}) {
        for (double t : {0.9, 0.99, 1.0}) {
            QismetVqeConfig c = cfg;
            c.kalman.measurementVariance = mv;
            c.kalman.transition = t;
            const auto out =
                bench::runAveraged(runner, c, Scheme::Kalman);
            const std::string name = "Kalman MV=" + formatDouble(mv, 2) +
                                     " T=" + formatDouble(t, 2);
            table.addRow({name, formatDouble(out.meanEstimate, 3),
                          formatDouble(100.0 *
                                           bench::percentImprovement(
                                               base.meanEstimate,
                                               out.meanEstimate),
                                       1) +
                              "%",
                          sparkline(out.exampleSeries, 24)});
            if (out.meanEstimate < best_kalman) {
                best_kalman = out.meanEstimate;
                best_name = name;
            }
        }
    }
    table.addRow({"QISMET", formatDouble(qismet.meanEstimate, 3),
                  formatDouble(100.0 * bench::percentImprovement(
                                   base.meanEstimate,
                                   qismet.meanEstimate),
                               1) +
                      "%",
                  sparkline(qismet.exampleSeries, 24)});
    table.print(std::cout);

    std::cout << "Best Kalman instance: " << best_name << " at "
              << formatDouble(best_kalman, 3)
              << "; QISMET reaches " << formatDouble(qismet.meanEstimate, 3)
              << " (paper: QISMET ~3x better than the best Kalman "
                 "variant).\n";
    return 0;
}
