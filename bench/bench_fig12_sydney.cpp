/**
 * @file
 * Fig. 12 reproduction: QISMET vs baseline on (simulated) IBMQ Sydney,
 * ~350 iterations over 48 hours.
 *
 * Paper claim: Sydney is smooth except one sharp turbulence phase that
 * heavily impacts the baseline; QISMET skips it and continues its
 * steady progress, improving the final estimation by ~50%.
 */

#include <algorithm>
#include <iostream>

#include "apps/applications.hpp"
#include "common/statistics.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Fig. 12 — QISMET vs baseline on simulated Sydney "
        "(~350 iterations, one sharp transient phase)",
        "Expect: a single turbulent phase on the baseline curve; QISMET "
        "avoids it (~50% improvement in the paper).");

    Application app = application(2);
    app.machine = machineModel("sydney");
    const QismetVqe runner = app.makeRunner();

    QismetVqeConfig cfg;
    cfg.totalJobs = 700; // ~350 iterations
    // The observation window containing Sydney's single sharp phase.
    cfg.traceVersion = 5;

    const auto base = bench::runAveraged(runner, cfg, Scheme::Baseline);
    const auto qismet = bench::runAveraged(runner, cfg, Scheme::Qismet);

    bench::printSeries("Baseline", base.exampleSeries);
    bench::printSeries("QISMET", qismet.exampleSeries);

    // Census of turbulent phases in the trace (Sydney's personality:
    // rare but sharp). Smooth over the within-phase flicker first so a
    // single multi-job phase counts once.
    const TransientTrace trace =
        app.machine.traceGenerator(5).generate(700);
    const auto smoothed = movingAverage(trace.values(), 8);
    int phases = 0;
    bool in_phase = false;
    for (double v : smoothed) {
        const bool hot = v > 0.25;
        if (hot && !in_phase)
            ++phases;
        in_phase = hot;
    }

    TablePrinter table("Final VQA estimation (mean over seeds)");
    table.setHeader({"scheme", "final estimate", "skip fraction"});
    table.addRow({"Baseline", formatDouble(base.meanEstimate, 3), "-"});
    table.addRow({"QISMET", formatDouble(qismet.meanEstimate, 3),
                  formatDouble(qismet.meanSkipFraction, 3)});
    table.print(std::cout);

    const double pct = bench::percentImprovement(base.meanEstimate,
                                                 qismet.meanEstimate);
    std::cout << "Turbulent phases in the 700-job trace: " << phases
              << " (paper: one sharp phase)\n";
    std::cout << "Measured improvement: "
              << formatDouble(100.0 * pct, 1)
              << "%   (paper: ~50% over 350 iterations)\n";
    return 0;
}
