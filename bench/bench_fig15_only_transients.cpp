/**
 * @file
 * Fig. 15 reproduction: the alternative "only-transients" skipping
 * approach on App1 with thresholds swept from 99p (skip <1% of
 * iterations) down to 50p (skip up to half).
 *
 * Paper claim: every threshold performs *worse* than the baseline, and
 * higher thresholds (fewer skips) always perform better than lower
 * ones — magnitude-only skipping discards constructive iterations and
 * delays convergence, motivating the gradient-faithful controller.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Fig. 15 — only-transients skipping on App1 (threshold sweep)",
        "Expect: all thresholds at or below the baseline; higher "
        "percentile (fewer skips) better than lower.");

    const Application app = application(1);
    const QismetVqe runner = app.makeRunner();

    QismetVqeConfig cfg;
    cfg.totalJobs = 2000;

    const auto base = bench::runAveraged(runner, cfg, Scheme::Baseline);
    const auto qismet = bench::runAveraged(runner, cfg, Scheme::Qismet);

    TablePrinter table("Only-transients skipping vs baseline "
                       "(seed-averaged)");
    table.setHeader({"variant", "skip target", "final estimate",
                     "observed skips", "vs baseline"});
    table.addRow({"Baseline", "-", formatDouble(base.meanEstimate, 3),
                  "-", "-"});

    for (double target : {0.01, 0.10, 0.25, 0.50}) {
        QismetVqeConfig c = cfg;
        c.onlyTransientsSkipTarget = target;
        const auto out =
            bench::runAveraged(runner, c, Scheme::OnlyTransients);
        const double pct = bench::percentImprovement(base.meanEstimate,
                                                     out.meanEstimate);
        table.addRow({std::to_string(static_cast<int>(
                          100.0 * (1.0 - target))) + "p threshold",
                      formatDouble(target, 2),
                      formatDouble(out.meanEstimate, 3),
                      formatDouble(out.meanSkipFraction, 3),
                      formatDouble(100.0 * pct, 1) + "%"});
    }
    table.addRow({"QISMET (for contrast)", "0.10",
                  formatDouble(qismet.meanEstimate, 3),
                  formatDouble(qismet.meanSkipFraction, 3),
                  formatDouble(100.0 * bench::percentImprovement(
                                   base.meanEstimate,
                                   qismet.meanEstimate),
                               1) +
                      "%"});
    table.print(std::cout);

    std::cout << "Paper-shape check: only-transients rows hover at or "
                 "below the baseline while QISMET clearly improves.\n";
    return 0;
}
