/**
 * @file
 * Ablation (paper Section 8.3): QISMET's circuit-execution overhead.
 * Each QISMET job reruns the previous iteration's circuits, so at zero
 * skips the overhead is exactly 2x a baseline with no transient
 * mitigation; measurement-mitigation circuits run alongside the primary
 * circuits dilute the relative overhead.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Ablation — circuit-execution overhead (Section 8.3)",
        "Expect: QISMET/baseline circuit ratio ~2x (analytic path), "
        "smaller when mitigation circuits ride along (sampling path).");

    const Application app = application(1);
    const QismetVqe runner = app.makeRunner();

    TablePrinter table("Circuits executed over a 600-job run "
                       "(seed-averaged)");
    table.setHeader({"configuration", "baseline circuits",
                     "QISMET circuits", "overhead"});

    for (const bool sampling : {false, true}) {
        QismetVqeConfig cfg;
        cfg.totalJobs = 600;
        cfg.estimator.mode = sampling ? EstimatorMode::Sampling
                                      : EstimatorMode::Analytic;
        cfg.estimator.shots = 1024;

        const auto base =
            bench::runAveraged(runner, cfg, Scheme::Baseline);
        const auto qismet =
            bench::runAveraged(runner, cfg, Scheme::Qismet);

        table.addRow({sampling ? "sampling + measurement mitigation"
                               : "analytic (no mitigation circuits)",
                      formatDouble(base.meanCircuits, 0),
                      formatDouble(qismet.meanCircuits, 0),
                      formatDouble(qismet.meanCircuits /
                                       base.meanCircuits,
                                   2) +
                          "x"});
    }
    table.print(std::cout);

    std::cout << "Paper claim: at least 2x without supporting circuits; "
                 "overheads shrink when mitigation circuits are present "
                 "anyway.\n";
    return 0;
}
