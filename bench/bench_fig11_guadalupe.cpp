/**
 * @file
 * Fig. 11 reproduction: QISMET vs baseline on (simulated) IBMQ
 * Guadalupe, ~270 VQA iterations over 48 hours, run synchronously so
 * both schemes see the same transient phases.
 *
 * Paper claim: phases of moderate transient error hit the baseline (one
 * recoverable, one causing ~50-100 iterations of stagnation); QISMET
 * predominantly avoids them, improving the final VQA estimation by
 * ~40%.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Fig. 11 — QISMET vs baseline on simulated Guadalupe "
        "(~270 iterations)",
        "Expect: transient phases visible on the baseline curve only; "
        "QISMET improves the final estimate by roughly 40%.");

    const Application app = application(2); // 6q TFIM on guadalupe
    const QismetVqe runner = app.makeRunner();

    QismetVqeConfig cfg;
    cfg.totalJobs = 540; // 2 evaluations per iteration -> ~270 iterations
    // Trace version selects the 48-hour observation window; this one
    // contains the two moderate transient phases the figure describes.
    cfg.traceVersion = 10;

    const auto base = bench::runAveraged(runner, cfg, Scheme::Baseline);
    const auto qismet = bench::runAveraged(runner, cfg, Scheme::Qismet);

    bench::printSeries("Baseline", base.exampleSeries);
    bench::printSeries("QISMET", qismet.exampleSeries);

    TablePrinter table("Final VQA estimation (mean over seeds)");
    table.setHeader({"scheme", "final estimate", "skip fraction"});
    table.addRow({"Baseline", formatDouble(base.meanEstimate, 3), "-"});
    table.addRow({"QISMET", formatDouble(qismet.meanEstimate, 3),
                  formatDouble(qismet.meanSkipFraction, 3)});
    table.print(std::cout);

    const double pct = bench::percentImprovement(base.meanEstimate,
                                                 qismet.meanEstimate);
    std::cout << "Measured improvement: "
              << formatDouble(100.0 * pct, 1)
              << "%   (paper: ~40% over 270 iterations)\n";
    return 0;
}
