/**
 * @file
 * Fig. 10 reproduction: VQA simulation with the transient-noise
 * magnitude swept from 0% to 50% of the ideal VQA objective
 * estimations.
 *
 * Paper claim: as the transient-noise magnitude grows, the accuracy and
 * convergence of the baseline VQA estimates monotonically worsen.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Fig. 10 — transient-magnitude sweep (0-50% of the objective)",
        "Expect: baseline VQA estimates monotonically worsen with the "
        "transient scale.");

    const Application app = application(2);
    const QismetVqe runner = app.makeRunner();

    QismetVqeConfig cfg;
    cfg.totalJobs = 1500;

    TablePrinter table("Final baseline estimate vs transient magnitude "
                       "(seed-averaged)");
    table.setHeader({"transient scale", "final estimate", "vs exact",
                     "series (seed 7)"});

    for (double scale : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
        // The machine's native trace is normalized to intensity ~1 at
        // full burst; `transientScale` rescales it to the requested
        // fraction of the objective magnitude (Section 6.2).
        QismetVqeConfig c = cfg;
        c.transientScale = 2.0 * scale; // native median burst ~0.5
        const auto out =
            bench::runAveraged(runner, c, Scheme::Baseline);
        table.addRow({formatDouble(scale, 1) + " of objective",
                      formatDouble(out.meanEstimate, 3),
                      formatDouble(out.meanEstimate -
                                       app.exactGroundEnergy,
                                   3),
                      sparkline(out.exampleSeries, 24)});
    }
    table.print(std::cout);

    std::cout << "Paper-shape check: the final-estimate column should "
                 "increase (worsen) down the table.\n";
    return 0;
}
