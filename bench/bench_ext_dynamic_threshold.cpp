/**
 * @file
 * Extension (paper Section 7.7: "intelligent dynamic thresholding can
 * potentially be used to improve these benefits further, but is beyond
 * our current scope"): QISMET with an online-adapted error threshold.
 *
 * The adaptive controller re-calibrates its relative threshold from the
 * trailing window of observed transient magnitudes, so it needs no
 * pilot trace and tracks regime changes. Test: a machine whose
 * transient scale doubles halfway through the run — the static
 * threshold is calibrated for the pilot (pre-change) regime, the
 * dynamic one follows.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Extension — dynamic thresholding (Section 7.7 future work)",
        "Expect: on stationary noise, dynamic ~ static QISMET; the "
        "dynamic controller needs no pilot-trace calibration.");

    const Application app = application(2);
    const QismetVqe runner = app.makeRunner();

    for (double scale : {1.0, 2.5}) {
        QismetVqeConfig cfg;
        cfg.totalJobs = 2000;
        cfg.transientScale = scale;

        const auto base =
            bench::runAveraged(runner, cfg, Scheme::Baseline);

        TablePrinter table("Transient scale " + formatDouble(scale, 1) +
                           " (seed-averaged)");
        table.setHeader({"scheme", "final estimate", "skips",
                         "improvement"});
        table.addRow({"Baseline", formatDouble(base.meanEstimate, 3),
                      "-", "-"});
        for (Scheme s : {Scheme::Qismet, Scheme::QismetDynamic}) {
            const auto out = bench::runAveraged(runner, cfg, s);
            table.addRow(
                {out.scheme, formatDouble(out.meanEstimate, 3),
                 formatDouble(out.meanSkipFraction, 3),
                 formatDouble(100.0 * bench::percentImprovement(
                                  base.meanEstimate, out.meanEstimate),
                              1) +
                     "%"});
        }
        table.print(std::cout);
    }
    return 0;
}
