#include "support.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>

#include "common/table_printer.hpp"
#include "common/thread_pool.hpp"

namespace qismet::bench {

AveragedOutcome
runAveraged(const QismetVqe &runner, QismetVqeConfig config, Scheme scheme,
            const std::vector<std::uint64_t> &seeds)
{
    AveragedOutcome out;
    out.scheme = schemeName(scheme);
    config.scheme = scheme;
    const double n = static_cast<double>(seeds.size());
    const std::vector<QismetVqeResult> results =
        runner.runEnsemble(config, seeds);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const QismetVqeResult &res = results[i];
        out.meanEstimate += res.run.finalEstimate / n;
        out.meanIdealEnergy += res.run.finalIdealEnergy / n;
        out.meanSkipFraction += res.skipFraction / n;
        out.meanCircuits +=
            static_cast<double>(res.run.circuitsUsed) / n;
        if (i == 0)
            out.exampleSeries = res.run.iterationEnergies;
    }
    return out;
}

std::size_t
configureThreads(int &argc, char **argv)
{
    // Consume every occurrence (last wins) so downstream argv parsers —
    // google-benchmark in bench_perf_kernels rejects unknown flags —
    // never see the option.
    for (int i = 1; i < argc;) {
        const char *arg = argv[i];
        const char *value = nullptr;
        int consumed = 0;
        if (std::strncmp(arg, "--threads=", 10) == 0) {
            value = arg + 10;
            consumed = 1;
        } else if (std::strcmp(arg, "--threads") == 0) {
            if (i + 1 >= argc) {
                std::cerr << "bench: --threads needs a value\n";
                std::exit(2);
            }
            value = argv[i + 1];
            consumed = 2;
        } else {
            ++i;
            continue;
        }
        try {
            const long parsed = std::stol(value);
            if (parsed < 0)
                throw std::invalid_argument("negative");
            ParallelExecutor::setGlobalThreads(
                static_cast<std::size_t>(parsed));
        } catch (const std::exception &) {
            std::cerr << "bench: bad --threads value '" << value
                      << "' (want a non-negative integer)\n";
            std::exit(2);
        }
        for (int j = i; j + consumed <= argc; ++j)
            argv[j] = argv[j + consumed];
        argc -= consumed;
        // Re-examine index i: the shift moved the next argument into it.
    }
    const std::size_t active = ParallelExecutor::global().threads();
    if (active > 1)
        std::cout << "[threads] " << active << " workers\n";
    return active;
}

void
printSeries(const std::string &label, const std::vector<double> &series)
{
    if (series.empty()) {
        std::cout << "  " << label << ": (empty)\n";
        return;
    }
    std::cout << "  " << label << "\n    " << sparkline(series) << "\n"
              << "    start " << formatDouble(series.front(), 3)
              << "  end " << formatDouble(series.back(), 3) << "  min "
              << formatDouble(*std::min_element(series.begin(),
                                                series.end()),
                              3)
              << "  max "
              << formatDouble(*std::max_element(series.begin(),
                                                series.end()),
                              3)
              << "\n";
}

double
percentImprovement(double base_estimate, double scheme_estimate)
{
    if (std::abs(base_estimate) < 1e-12)
        return 0.0;
    return (base_estimate - scheme_estimate) / std::abs(base_estimate);
}

void
printHeader(const std::string &figure, const std::string &claim)
{
    std::cout << "\n================================================================\n"
              << figure << "\n" << claim << "\n"
              << "================================================================\n";
}

} // namespace qismet::bench
