#include "support.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table_printer.hpp"

namespace qismet::bench {

AveragedOutcome
runAveraged(const QismetVqe &runner, QismetVqeConfig config, Scheme scheme,
            const std::vector<std::uint64_t> &seeds)
{
    AveragedOutcome out;
    out.scheme = schemeName(scheme);
    config.scheme = scheme;
    const double n = static_cast<double>(seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        config.seed = seeds[i];
        const QismetVqeResult res = runner.run(config);
        out.meanEstimate += res.run.finalEstimate / n;
        out.meanIdealEnergy += res.run.finalIdealEnergy / n;
        out.meanSkipFraction += res.skipFraction / n;
        out.meanCircuits +=
            static_cast<double>(res.run.circuitsUsed) / n;
        if (i == 0)
            out.exampleSeries = res.run.iterationEnergies;
    }
    return out;
}

void
printSeries(const std::string &label, const std::vector<double> &series)
{
    if (series.empty()) {
        std::cout << "  " << label << ": (empty)\n";
        return;
    }
    std::cout << "  " << label << "\n    " << sparkline(series) << "\n"
              << "    start " << formatDouble(series.front(), 3)
              << "  end " << formatDouble(series.back(), 3) << "  min "
              << formatDouble(*std::min_element(series.begin(),
                                                series.end()),
                              3)
              << "  max "
              << formatDouble(*std::max_element(series.begin(),
                                                series.end()),
                              3)
              << "\n";
}

double
percentImprovement(double base_estimate, double scheme_estimate)
{
    if (std::abs(base_estimate) < 1e-12)
        return 0.0;
    return (base_estimate - scheme_estimate) / std::abs(base_estimate);
}

void
printHeader(const std::string &figure, const std::string &claim)
{
    std::cout << "\n================================================================\n"
              << figure << "\n" << claim << "\n"
              << "================================================================\n";
}

} // namespace qismet::bench
