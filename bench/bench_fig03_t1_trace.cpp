/**
 * @file
 * Fig. 3 reproduction: transient fluctuations in T1 times over 65 hours.
 *
 * Paper claim: T1 wanders around its mean with rare deep outlier dips
 * (circled in the paper); impactful transients are the exception, not
 * the norm.
 *
 * Substitution: the paper shows measured transmon data (Burnett et al.);
 * we drive the same plot from the library's TLS-burst + OU-drift model
 * with a 100 us baseline T1 sampled every 5 minutes.
 */

#include <algorithm>
#include <iostream>

#include "common/statistics.hpp"
#include "common/table_printer.hpp"
#include "noise/ou_process.hpp"
#include "noise/tls_burst.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Fig. 3 — T1 transient fluctuations over 65 hours",
        "Expect: T1 wanders near its mean; a few deep outlier dips.");

    const double base_t1_us = 100.0;
    const int samples = 65 * 12; // 5-minute samples over 65 hours

    // Slow drift of the T1 baseline plus TLS dips that transiently
    // collapse it.
    Rng rng(2023);
    OuProcess drift(0.0, 0.02, 0.012);
    TlsBurstParams burst;
    burst.ratePerStep = 0.012;
    burst.magnitudeMedian = 0.45;
    burst.magnitudeSigma = 0.5;
    burst.meanDurationSteps = 4.0;
    TlsBurstProcess dips(burst, rng.split());

    std::vector<double> t1_series;
    t1_series.reserve(samples);
    for (int s = 0; s < samples; ++s) {
        const double d = drift.step(1.0, rng);
        const double dip = std::min(0.85, dips.step());
        t1_series.push_back(base_t1_us * (1.0 + d) * (1.0 - dip));
    }

    RunningStats stats;
    for (double v : t1_series)
        stats.add(v);

    int outliers = 0; // the paper's circled events: deep T1 dips
    const double outlier_level = 0.7 * stats.mean();
    for (double v : t1_series)
        if (v < outlier_level)
            ++outliers;

    bench::printSeries("T1 (us) over 65 h (5-min samples)", t1_series);

    TablePrinter table("T1 trace statistics");
    table.setHeader({"metric", "value"});
    table.addRow({"samples", std::to_string(samples)});
    table.addRow({"mean T1 (us)", formatDouble(stats.mean(), 1)});
    table.addRow({"stddev (us)", formatDouble(stats.stddev(), 1)});
    table.addRow({"min T1 (us)", formatDouble(stats.min(), 1)});
    table.addRow({"deep-dip outliers (<70% of mean)",
                  std::to_string(outliers)});
    table.addRow({"outlier fraction",
                  formatDouble(outliers / static_cast<double>(samples), 4)});
    table.print(std::cout);

    std::cout << "Paper-shape check: outliers are rare ("
              << formatDouble(100.0 * outliers / samples, 1)
              << "% of samples) yet deep (min "
              << formatDouble(stats.min(), 0) << " us vs mean "
              << formatDouble(stats.mean(), 0) << " us).\n";
    return 0;
}
