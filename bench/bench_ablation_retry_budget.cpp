/**
 * @file
 * Ablation (paper Section 8.1): the QISMET retry budget. The paper
 * fixes it to 5 and observes that real transients disappear within one
 * or two repetitions, so small budgets should already capture most of
 * the benefit while very large ones waste jobs on long-lived changes.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Ablation — QISMET retry budget (Section 8.1)",
        "Expect: benefit saturates within a few retries; the paper "
        "fixes the budget to 5.");

    const Application app = application(2);
    const QismetVqe runner = app.makeRunner();

    QismetVqeConfig cfg;
    cfg.totalJobs = 2000;

    const auto base = bench::runAveraged(runner, cfg, Scheme::Baseline);

    TablePrinter table("Final estimate vs retry budget (seed-averaged)");
    table.setHeader({"retry budget", "final estimate", "skips",
                     "improvement"});
    table.addRow({"baseline", formatDouble(base.meanEstimate, 3), "-",
                  "-"});
    for (int budget : {1, 2, 3, 5, 10, 20}) {
        QismetVqeConfig c = cfg;
        c.retryBudget = budget;
        const auto out = bench::runAveraged(runner, c, Scheme::Qismet);
        table.addRow({std::to_string(budget),
                      formatDouble(out.meanEstimate, 3),
                      formatDouble(out.meanSkipFraction, 3),
                      formatDouble(100.0 * bench::percentImprovement(
                                       base.meanEstimate,
                                       out.meanEstimate),
                                   1) +
                          "%"});
    }
    table.print(std::cout);
    return 0;
}
