/**
 * @file
 * Fig. 4 reproduction: circuit fidelity over a 45-hour period for a
 * shallow (4q / 6 CX) and a deep (8q / ~50 CX) circuit, with a zoom
 * into the variation across one batch of 140 circuits.
 *
 * Paper claim: the shallow circuit averages ~83% fidelity with ~5%
 * total variation; the deep circuit averages ~25% with ~35% variation,
 * and within a single turbulent batch the deep circuit's fidelity can
 * vary enormously.
 */

#include <algorithm>
#include <iostream>

#include "common/statistics.hpp"
#include "common/table_printer.hpp"
#include "noise/machine_model.hpp"
#include "sim/density_matrix.hpp"
#include "support.hpp"

using namespace qismet;

namespace {

Circuit
shallowCircuit()
{
    // 4 qubits, 6 CX deep.
    Circuit c(4);
    for (int layer = 0; layer < 3; ++layer) {
        for (int q = 0; q < 4; ++q)
            c.ry(q, 0.4 + 0.1 * q);
        c.cx(0, 1).cx(2, 3);
    }
    return c;
}

Circuit
deepCircuit()
{
    // 8 qubits, ~50 CX.
    Circuit c(8);
    for (int layer = 0; layer < 7; ++layer) {
        for (int q = 0; q < 8; ++q)
            c.ry(q, 0.3 + 0.05 * q);
        for (int q = 0; q + 1 < 8; ++q)
            c.cx(q, q + 1);
    }
    return c;
}

/**
 * Fidelity of the noisy execution vs ideal, as a function of the
 * transient T1 degradation. Density-matrix sims are expensive at 8
 * qubits, so a small grid is computed exactly and interpolated.
 */
class FidelityCurve
{
  public:
    FidelityCurve(const Circuit &circuit, const StaticNoiseModel &noise)
    {
        Statevector ideal(circuit.numQubits());
        ideal.run(circuit);
        for (double s : kGrid) {
            DensityMatrix rho(circuit.numQubits());
            noise.runNoisy(rho, circuit, {}, s);
            fidelity_.push_back(rho.fidelity(ideal));
        }
    }

    double at(double t1_scale) const
    {
        const double s = std::clamp(t1_scale, kGrid.front(), kGrid.back());
        for (std::size_t i = 0; i + 1 < kGrid.size(); ++i) {
            if (s <= kGrid[i + 1]) {
                const double f =
                    (s - kGrid[i]) / (kGrid[i + 1] - kGrid[i]);
                return fidelity_[i] * (1.0 - f) + fidelity_[i + 1] * f;
            }
        }
        return fidelity_.back();
    }

  private:
    static inline const std::vector<double> kGrid = {
        0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0, 1.2};
    std::vector<double> fidelity_;
};

struct BatchResult
{
    std::vector<double> hourly_means;
    std::vector<double> zoom_batch;
};

BatchResult
runStudy(const Circuit &circuit, std::uint64_t seed, double hit_probability)
{
    const MachineModel machine = machineModel("jakarta");
    const StaticNoiseModel noise = machine.staticModel();
    const FidelityCurve curve(circuit, noise);

    // One transient intensity per hour-batch, with per-circuit flicker
    // inside the batch.
    MachineModel m = machine;
    m.transient.burst.ratePerStep = 0.06;
    m.transient.burst.magnitudeMedian = 0.5;
    m.transient.burst.meanDurationSteps = 3.0;
    const TransientTrace trace =
        TransientTraceGenerator(m.transient, seed).generate(45);

    Rng rng(seed * 31 + 5);
    BatchResult out;
    std::size_t worst_batch = 0;
    double worst_spread = -1.0;
    std::vector<std::vector<double>> batches;
    for (int hour = 0; hour < 45; ++hour) {
        std::vector<double> batch;
        for (int c = 0; c < 140; ++c) {
            // Section 3.2(a): a transient lives on specific qubits, so
            // a wider circuit is more likely to contain an affected
            // qubit at all.
            const bool hit = rng.bernoulli(hit_probability);
            const double tau = hit
                ? std::abs(trace.at(hour) * (0.7 + 0.6 * rng.uniform()) +
                           rng.normal(0.0, 0.01))
                : std::abs(rng.normal(0.0, 0.01));
            // Transient intensity tau shrinks T1 multiplicatively.
            const double t1_scale = std::max(0.02, 1.0 - tau);
            batch.push_back(curve.at(t1_scale));
        }
        const double mean_f = mean(batch);
        out.hourly_means.push_back(mean_f);
        // Zoom target: the most turbulent batch (largest spread), the
        // paper's bottom panel.
        const double spread =
            *std::max_element(batch.begin(), batch.end()) -
            *std::min_element(batch.begin(), batch.end());
        if (spread > worst_spread) {
            worst_spread = spread;
            worst_batch = batches.size();
        }
        batches.push_back(std::move(batch));
    }
    out.zoom_batch = batches[worst_batch];
    return out;
}

void
report(const char *label, const BatchResult &res, double paper_mean,
       double paper_variation)
{
    RunningStats stats;
    for (double f : res.hourly_means)
        stats.add(f);

    bench::printSeries(std::string(label) + " hourly mean fidelity",
                       res.hourly_means);

    RunningStats zoom;
    for (double f : res.zoom_batch)
        zoom.add(f);

    TablePrinter table(std::string(label) + " summary");
    table.setHeader({"metric", "measured", "paper"});
    table.addRow({"mean fidelity", formatDouble(stats.mean(), 3),
                  formatDouble(paper_mean, 2)});
    table.addRow({"total variation (max-min)",
                  formatDouble(stats.max() - stats.min(), 3),
                  formatDouble(paper_variation, 2)});
    table.addRow({"worst-batch intra variation",
                  formatDouble(zoom.max() - zoom.min(), 3), "up to ~1.0"});
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Fig. 4 — transient impact on circuit fidelity (45 h, 140-circuit "
        "hourly batches)",
        "Expect: the deep 8q/50CX circuit has far lower fidelity and far "
        "larger variation than the shallow 4q/6CX circuit.");

    const auto shallow = runStudy(shallowCircuit(), 11, 4.0 / 8.0);
    report("4q / 6 CX circuit", shallow, 0.83, 0.05);

    const auto deep = runStudy(deepCircuit(), 13, 1.0);
    report("8q / ~50 CX circuit", deep, 0.25, 0.35);

    std::cout << "Paper-shape check: deeper circuit mean fidelity is much "
                 "lower and its variation much larger.\n";
    return 0;
}
