/**
 * @file
 * qbench: a minimal, vendored micro-benchmark harness exposing the
 * subset of the google-benchmark API our perf suites use, under the
 * same `benchmark::` names so the bench sources are drop-in
 * source-compatible.
 *
 * Why vendor instead of find_package(benchmark): the perf baselines
 * (BENCH_kernels.json, BENCH_expectation.json) gate CI, and a
 * measurement loop compiled with assertions enabled skews every
 * number. The system libbenchmark ships compiled without NDEBUG and
 * stamps `context.library_build_type: "debug"` into each report —
 * which tools/bench-compare.sh now treats as a hard error in the
 * committed baseline. Building the harness in-tree with the repo's
 * own Release flags makes the recorded build type a property of this
 * build, not of whatever distro package is installed.
 *
 * Faithfully reproduced semantics (the parts CI depends on):
 *  - run names: "BM_Name/arg0:v0/arg1:v1" with ArgNames, bare values
 *    without;
 *  - adaptive iteration sizing until --benchmark_min_time elapses,
 *    then --benchmark_repetitions timed repetitions, each emitted as
 *    a run_type:"iteration" JSON row (bench-compare takes min-of-N);
 *  - Counter::kIsIterationInvariantRate = value * iterations / cpu
 *    seconds, inlined into the JSON row under the counter's name;
 *  - context.library_build_type from NDEBUG at harness compile time.
 */

#ifndef QISMET_BENCH_QBENCH_HPP
#define QISMET_BENCH_QBENCH_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

enum TimeUnit
{
    kNanosecond,
    kMicrosecond,
    kMillisecond,
    kSecond,
};

/** User-visible counter; rate flags mirror google-benchmark's. */
class Counter
{
  public:
    enum Flags
    {
        kDefaults = 0,
        /** Report value * iterations / cpu-seconds. */
        kIsIterationInvariantRate = 1,
    };

    Counter() = default;
    // Implicit by design: `counters["x"] = 3.0` must work, matching
    // the google-benchmark API.
    Counter(double v, Flags f = kDefaults) : value(v), flags(f) {}

    double value = 0.0;
    Flags flags = kDefaults;
};

/** Per-run state handed to the benchmark function. */
class State
{
  public:
    State(std::vector<std::int64_t> args, std::uint64_t max_iterations);

    /** The i-th value attached via Arg/Args/ArgsProduct. */
    std::int64_t range(std::size_t i = 0) const;

    void SetLabel(const std::string &label) { label_ = label; }

    /** Abort the run and mark the row as errored. */
    void SkipWithError(const std::string &message);

    std::uint64_t iterations() const { return maxIterations_; }

    std::map<std::string, Counter> counters;

    /**
     * Range-for protocol: `for (auto _ : state)` starts the timers on
     * begin(), yields max_iterations times, and stops the timers when
     * the count is exhausted (or an error skipped the run).
     */
    struct iterator
    {
        // The attribute keeps `for (auto _ : state)` clean under
        // -Wunused-but-set-variable, as google-benchmark does with
        // BENCHMARK_UNUSED on its Value struct.
        struct __attribute__((unused)) Value
        {
        };

        Value operator*() const { return Value{}; }

        iterator &operator++()
        {
            --remaining;
            return *this;
        }

        bool operator!=(const iterator &)
        {
            if (remaining != 0)
                return true;
            parent->finish();
            return false;
        }

        State *parent = nullptr;
        std::uint64_t remaining = 0;
    };

    iterator begin();
    iterator end() { return iterator{}; }

    // --- harness-facing results (read by the runner) -----------------
    double realSeconds() const { return realSeconds_; }
    double cpuSeconds() const { return cpuSeconds_; }
    bool errorOccurred() const { return error_; }
    const std::string &errorMessage() const { return errorMessage_; }
    const std::string &label() const { return label_; }

  private:
    friend struct iterator;
    void start();
    void finish();

    std::vector<std::int64_t> args_;
    std::uint64_t maxIterations_ = 0;
    bool started_ = false;
    bool finished_ = false;
    bool error_ = false;
    std::string errorMessage_;
    std::string label_;
    double realStart_ = 0.0;
    double cpuStart_ = 0.0;
    double realSeconds_ = 0.0;
    double cpuSeconds_ = 0.0;
};

namespace internal {

using Function = void (*)(State &);

/** One registered benchmark family plus its argument matrix. */
class Benchmark
{
  public:
    Benchmark(std::string name, Function fn);

    Benchmark *Arg(std::int64_t value);
    Benchmark *Args(const std::vector<std::int64_t> &values);
    Benchmark *ArgsProduct(
        const std::vector<std::vector<std::int64_t>> &lists);
    Benchmark *ArgNames(const std::vector<std::string> &names);
    Benchmark *Unit(TimeUnit unit);

    const std::string &name() const { return name_; }
    Function function() const { return fn_; }
    const std::vector<std::vector<std::int64_t>> &argLists() const
    {
        return argLists_;
    }
    const std::vector<std::string> &argNames() const { return argNames_; }
    TimeUnit unit() const { return unit_; }

  private:
    std::string name_;
    Function fn_;
    std::vector<std::vector<std::int64_t>> argLists_;
    std::vector<std::string> argNames_;
    TimeUnit unit_ = kNanosecond;
};

/** Register into the global family list; returns a borrowed pointer
    for the BENCHMARK macro's ->Arg() chains. */
Benchmark *RegisterBenchmarkInternal(const char *name, Function fn);

} // namespace internal

/** Parse and strip --benchmark_* flags from argc/argv. */
void Initialize(int *argc, char **argv);

/** True (after printing a diagnostic) if unparsed args remain. */
bool ReportUnrecognizedArguments(int argc, char **argv);

/** Run every registered benchmark matching --benchmark_filter; prints
    a console table and writes --benchmark_out if set. Returns the
    number of runs executed. */
std::size_t RunSpecifiedBenchmarks();

void Shutdown();

/** Compiler sink: forces `value` to be materialized. */
template <class T>
inline void
DoNotOptimize(T const &value)
{
    __asm__ __volatile__("" : : "r,m"(value) : "memory");
}

template <class T>
inline void
DoNotOptimize(T &value)
{
    __asm__ __volatile__("" : "+r,m"(value) : : "memory");
}

} // namespace benchmark

#define QBENCH_CONCAT_IMPL(a, b) a##b
#define QBENCH_CONCAT(a, b) QBENCH_CONCAT_IMPL(a, b)

/** Register `fn`; chain ->Arg()/->ArgsProduct()/->Unit() like
    google-benchmark's BENCHMARK macro. */
#define BENCHMARK(fn)                                                    \
    static ::benchmark::internal::Benchmark *QBENCH_CONCAT(              \
        qbench_registration_, __LINE__) [[maybe_unused]] =               \
        ::benchmark::internal::RegisterBenchmarkInternal(#fn, fn)

#endif // QISMET_BENCH_QBENCH_HPP
