/**
 * @file
 * Drop-in header shim: bench sources keep `#include
 * <benchmark/benchmark.h>` and resolve to the vendored qbench harness
 * through this directory being on the include path (see
 * bench/qbench/qbench.hpp for why the harness is vendored).
 */

#ifndef QISMET_BENCH_QBENCH_SHIM_H
#define QISMET_BENCH_QBENCH_SHIM_H

#include "../qbench.hpp"

#endif // QISMET_BENCH_QBENCH_SHIM_H
