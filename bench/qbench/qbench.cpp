/** @file qbench harness implementation (see qbench.hpp). */

#include "qbench.hpp"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <memory>
#include <regex>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

namespace benchmark {

namespace {

/** Monotonic wall clock, seconds. */
double
wallNow()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** Process CPU clock, seconds. */
double
cpuNow()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct Flags
{
    double minTime = 0.5;
    std::size_t repetitions = 1;
    std::string filter;
    std::string outPath;
    std::string outFormat = "json";
};

Flags g_flags;
std::string g_executable = "qbench";

std::vector<std::unique_ptr<internal::Benchmark>> &
registry()
{
    static std::vector<std::unique_ptr<internal::Benchmark>> families;
    return families;
}

const char *
unitName(TimeUnit unit)
{
    switch (unit) {
      case kNanosecond:
        return "ns";
      case kMicrosecond:
        return "us";
      case kMillisecond:
        return "ms";
      case kSecond:
        return "s";
    }
    return "ns";
}

double
unitPerSecond(TimeUnit unit)
{
    switch (unit) {
      case kNanosecond:
        return 1e9;
      case kMicrosecond:
        return 1e6;
      case kMillisecond:
        return 1e3;
      case kSecond:
        return 1.0;
    }
    return 1e9;
}

/** One emitted report row (one repetition of one run). */
struct RunResult
{
    std::string runName;
    std::size_t familyIndex = 0;
    std::size_t instanceIndex = 0;
    std::size_t repetitions = 1;
    std::size_t repetitionIndex = 0;
    std::uint64_t iterations = 0;
    double realTime = 0.0; ///< per-iteration, in `unit`
    double cpuTime = 0.0;  ///< per-iteration, in `unit`
    TimeUnit unit = kNanosecond;
    std::map<std::string, double> counters;
    std::string label;
    bool error = false;
    std::string errorMessage;
};

std::string
runName(const internal::Benchmark &family,
        const std::vector<std::int64_t> &args)
{
    std::string name = family.name();
    for (std::size_t i = 0; i < args.size(); ++i) {
        name += '/';
        if (i < family.argNames().size() &&
            !family.argNames()[i].empty()) {
            name += family.argNames()[i];
            name += ':';
        }
        name += std::to_string(args[i]);
    }
    return name;
}

/** One timed invocation; returns wall seconds of the whole batch. */
State
timedRun(const internal::Benchmark &family,
         const std::vector<std::int64_t> &args, std::uint64_t iterations)
{
    State state(args, iterations);
    family.function()(state);
    return state;
}

RunResult
toResult(const internal::Benchmark &family, const State &state,
         const std::string &name)
{
    RunResult row;
    row.runName = name;
    row.unit = family.unit();
    row.iterations = state.iterations();
    row.label = state.label();
    row.error = state.errorOccurred();
    row.errorMessage = state.errorMessage();

    const double iters =
        static_cast<double>(std::max<std::uint64_t>(1, state.iterations()));
    const double scale = unitPerSecond(family.unit());
    row.realTime = state.realSeconds() / iters * scale;
    row.cpuTime = state.cpuSeconds() / iters * scale;

    for (const auto &[counter_name, counter] : state.counters) {
        double value = counter.value;
        if ((counter.flags & Counter::kIsIterationInvariantRate) != 0) {
            // Rate per CPU second (google-benchmark divides rate
            // counters by CPU time, which the tracked baselines
            // already encode).
            const double cpu = std::max(state.cpuSeconds(), 1e-12);
            value = counter.value * iters / cpu;
        }
        row.counters[counter_name] = value;
    }
    return row;
}

/** Minimal JSON string escaping (names/labels are ASCII). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

void
writeJson(const std::vector<RunResult> &rows, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        throw std::runtime_error("qbench: cannot open " + path);

    char host[256] = "unknown";
    gethostname(host, sizeof host - 1);
    char date[64] = "";
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    std::strftime(date, sizeof date, "%FT%T+00:00", &tm_utc);

    // The build-type stamp the whole vendoring exercise exists for:
    // a property of THIS translation unit's compile, not of a distro
    // package (bench-compare.sh hard-fails a debug baseline).
#ifdef NDEBUG
    const char *build_type = "release";
#else
    const char *build_type = "debug";
#endif

    std::fprintf(f, "{\n  \"context\": {\n");
    std::fprintf(f, "    \"date\": \"%s\",\n", date);
    std::fprintf(f, "    \"host_name\": \"%s\",\n", jsonEscape(host).c_str());
    std::fprintf(f, "    \"executable\": \"%s\",\n",
                 jsonEscape(g_executable).c_str());
    const long cpus = sysconf(_SC_NPROCESSORS_ONLN);
    std::fprintf(f, "    \"num_cpus\": %ld,\n", cpus > 0 ? cpus : 1);
    std::fprintf(f, "    \"caches\": [],\n");
    std::fprintf(f, "    \"harness\": \"qbench\",\n");
    std::fprintf(f, "    \"library_build_type\": \"%s\"\n", build_type);
    std::fprintf(f, "  },\n  \"benchmarks\": [\n");

    for (std::size_t i = 0; i < rows.size(); ++i) {
        const RunResult &r = rows[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"name\": \"%s\",\n",
                     jsonEscape(r.runName).c_str());
        std::fprintf(f, "      \"family_index\": %zu,\n", r.familyIndex);
        std::fprintf(f, "      \"per_family_instance_index\": %zu,\n",
                     r.instanceIndex);
        std::fprintf(f, "      \"run_name\": \"%s\",\n",
                     jsonEscape(r.runName).c_str());
        std::fprintf(f, "      \"run_type\": \"iteration\",\n");
        std::fprintf(f, "      \"repetitions\": %zu,\n", r.repetitions);
        std::fprintf(f, "      \"repetition_index\": %zu,\n",
                     r.repetitionIndex);
        std::fprintf(f, "      \"threads\": 1,\n");
        if (r.error) {
            std::fprintf(f, "      \"error_occurred\": true,\n");
            std::fprintf(f, "      \"error_message\": \"%s\",\n",
                         jsonEscape(r.errorMessage).c_str());
        }
        std::fprintf(f, "      \"iterations\": %llu,\n",
                     static_cast<unsigned long long>(r.iterations));
        std::fprintf(f, "      \"real_time\": %.17g,\n", r.realTime);
        std::fprintf(f, "      \"cpu_time\": %.17g,\n", r.cpuTime);
        std::fprintf(f, "      \"time_unit\": \"%s\"", unitName(r.unit));
        for (const auto &[counter_name, value] : r.counters)
            std::fprintf(f, ",\n      \"%s\": %.17g",
                         jsonEscape(counter_name).c_str(), value);
        if (!r.label.empty())
            std::fprintf(f, ",\n      \"label\": \"%s\"",
                         jsonEscape(r.label).c_str());
        std::fprintf(f, "\n    }%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

void
printConsoleRow(const RunResult &r)
{
    if (r.error) {
        std::printf("%-52s ERROR: %s\n", r.runName.c_str(),
                    r.errorMessage.c_str());
        return;
    }
    std::string extra;
    for (const auto &[counter_name, value] : r.counters) {
        char buf[96];
        std::snprintf(buf, sizeof buf, " %s=%.4g", counter_name.c_str(),
                      value);
        extra += buf;
    }
    if (!r.label.empty())
        extra += " " + r.label;
    std::printf("%-52s %12.1f %s %12.1f %s %10llu%s\n", r.runName.c_str(),
                r.realTime, unitName(r.unit), r.cpuTime, unitName(r.unit),
                static_cast<unsigned long long>(r.iterations),
                extra.c_str());
}

} // namespace

// --- State -----------------------------------------------------------

State::State(std::vector<std::int64_t> args, std::uint64_t max_iterations)
    : args_(std::move(args)), maxIterations_(max_iterations)
{
}

std::int64_t
State::range(std::size_t i) const
{
    if (i >= args_.size())
        throw std::out_of_range("qbench: State::range index");
    return args_[i];
}

void
State::SkipWithError(const std::string &message)
{
    error_ = true;
    errorMessage_ = message;
    if (started_ && !finished_)
        finish();
}

State::iterator
State::begin()
{
    start();
    iterator it;
    it.parent = this;
    it.remaining = error_ ? 0 : maxIterations_;
    return it;
}

void
State::start()
{
    started_ = true;
    finished_ = false;
    cpuStart_ = cpuNow();
    realStart_ = wallNow();
}

void
State::finish()
{
    if (finished_)
        return;
    realSeconds_ = wallNow() - realStart_;
    cpuSeconds_ = cpuNow() - cpuStart_;
    finished_ = true;
}

// --- Benchmark registration ------------------------------------------

namespace internal {

Benchmark::Benchmark(std::string name, Function fn)
    : name_(std::move(name)), fn_(fn)
{
}

Benchmark *
Benchmark::Arg(std::int64_t value)
{
    argLists_.push_back({value});
    return this;
}

Benchmark *
Benchmark::Args(const std::vector<std::int64_t> &values)
{
    argLists_.push_back(values);
    return this;
}

Benchmark *
Benchmark::ArgsProduct(const std::vector<std::vector<std::int64_t>> &lists)
{
    std::vector<std::vector<std::int64_t>> product{{}};
    for (const auto &axis : lists) {
        std::vector<std::vector<std::int64_t>> next;
        next.reserve(product.size() * axis.size());
        for (const auto &prefix : product) {
            for (std::int64_t value : axis) {
                next.push_back(prefix);
                next.back().push_back(value);
            }
        }
        product = std::move(next);
    }
    for (auto &combo : product)
        argLists_.push_back(std::move(combo));
    return this;
}

Benchmark *
Benchmark::ArgNames(const std::vector<std::string> &names)
{
    argNames_ = names;
    return this;
}

Benchmark *
Benchmark::Unit(TimeUnit unit)
{
    unit_ = unit;
    return this;
}

Benchmark *
RegisterBenchmarkInternal(const char *name, Function fn)
{
    registry().push_back(std::make_unique<Benchmark>(name, fn));
    return registry().back().get();
}

} // namespace internal

// --- Flags and driver ------------------------------------------------

void
Initialize(int *argc, char **argv)
{
    if (*argc > 0)
        g_executable = argv[0];
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const std::string arg = argv[i];
        const auto valueOf = [&arg](const char *prefix,
                                    std::string &dst) {
            const std::size_t n = std::string(prefix).size();
            if (arg.rfind(prefix, 0) != 0)
                return false;
            dst = arg.substr(n);
            return true;
        };
        std::string value;
        if (valueOf("--benchmark_min_time=", value)) {
            // Accept both "0.1" and google-benchmark's "0.1s" form.
            if (!value.empty() && value.back() == 's')
                value.pop_back();
            g_flags.minTime = std::stod(value);
        } else if (valueOf("--benchmark_repetitions=", value)) {
            g_flags.repetitions =
                static_cast<std::size_t>(std::stoul(value));
        } else if (valueOf("--benchmark_filter=", value)) {
            g_flags.filter = value;
        } else if (valueOf("--benchmark_out_format=", value)) {
            g_flags.outFormat = value;
        } else if (valueOf("--benchmark_out=", value)) {
            g_flags.outPath = value;
        } else {
            argv[out++] = argv[i];
        }
    }
    for (int i = out; i < *argc; ++i)
        argv[i] = nullptr;
    *argc = out;
}

bool
ReportUnrecognizedArguments(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        std::fprintf(stderr, "qbench: unrecognized argument: %s\n",
                     argv[i]);
    return argc > 1;
}

std::size_t
RunSpecifiedBenchmarks()
{
    if (g_flags.repetitions == 0)
        g_flags.repetitions = 1;
    std::regex filter;
    const bool filtered = !g_flags.filter.empty();
    if (filtered)
        filter = std::regex(g_flags.filter);

    std::printf("%-52s %15s %15s %10s\n", "benchmark", "real", "cpu",
                "iterations");
    std::vector<RunResult> rows;
    std::size_t runs = 0;
    for (std::size_t fam = 0; fam < registry().size(); ++fam) {
        const internal::Benchmark &family = *registry()[fam];
        std::vector<std::vector<std::int64_t>> instances =
            family.argLists();
        if (instances.empty())
            instances.push_back({});
        for (std::size_t inst = 0; inst < instances.size(); ++inst) {
            const std::string name = runName(family, instances[inst]);
            if (filtered && !std::regex_search(name, filter))
                continue;
            ++runs;

            // Adaptive sizing: grow the batch until one invocation
            // runs for at least minTime (capped to bound pathological
            // cases), then time `repetitions` batches at that size.
            std::uint64_t iters = 1;
            double elapsed = 0.0;
            for (;;) {
                State probe = timedRun(family, instances[inst], iters);
                elapsed = probe.realSeconds();
                if (probe.errorOccurred() || elapsed >= g_flags.minTime ||
                    iters >= (std::uint64_t{1} << 40))
                    break;
                double factor = 2.0;
                if (elapsed > 1e-9)
                    factor = std::clamp(g_flags.minTime * 1.4 / elapsed,
                                        2.0, 10.0);
                iters = static_cast<std::uint64_t>(
                    static_cast<double>(iters) * factor);
            }

            for (std::size_t rep = 0; rep < g_flags.repetitions; ++rep) {
                const State state =
                    timedRun(family, instances[inst], iters);
                RunResult row = toResult(family, state, name);
                row.familyIndex = fam;
                row.instanceIndex = inst;
                row.repetitions = g_flags.repetitions;
                row.repetitionIndex = rep;
                if (rep == 0 || state.errorOccurred())
                    printConsoleRow(row);
                rows.push_back(std::move(row));
                if (rows.back().error)
                    break;
            }
        }
    }

    if (!g_flags.outPath.empty()) {
        if (g_flags.outFormat != "json")
            throw std::runtime_error(
                "qbench: only --benchmark_out_format=json is supported");
        writeJson(rows, g_flags.outPath);
    }
    return runs;
}

void
Shutdown()
{
}

} // namespace benchmark
