/**
 * @file
 * Fig. 17 (and Table 1) reproduction: all six TFIM applications, five
 * schemes, 2000 iterations each under the SPSA tuner. The Kalman column
 * follows the paper's protocol — hyper-parameters tuned per application
 * with only the best case reported.
 *
 * Paper claims: QISMET consistently outperforms everything, with mean
 * improvements over Baseline / Blocking / Resampling / 2nd-order /
 * Kalman of 2x (up to 3x) / 1.7x / 1.6x / 2.4x / 1.85x; Blocking and
 * Resampling are inconsistent (worse than baseline on some apps) and
 * 2nd-order consistently underperforms the baseline.
 */

#include <iostream>
#include <map>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

namespace {

double
bestKalmanEstimate(const QismetVqe &runner, const QismetVqeConfig &cfg)
{
    double best = 1e9;
    for (double mv : {0.01, 0.1}) {
        for (double t : {0.9, 0.99, 1.0}) {
            QismetVqeConfig c = cfg;
            c.kalman.measurementVariance = mv;
            c.kalman.transition = t;
            const auto out =
                qismet::bench::runAveraged(runner, c, Scheme::Kalman);
            best = std::min(best, out.meanEstimate);
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Fig. 17 — six applications x five schemes (2000 iterations)",
        "Expect: QISMET always on top; Blocking/Resampling inconsistent; "
        "2nd-order below baseline; tuned Kalman modest.");

    // Table 1 echo.
    TablePrinter t1("Table 1 — TFIM VQA applications");
    t1.setHeader({"app", "qubits", "ansatz", "reps", "machine/trial"});
    for (int i = 1; i <= 6; ++i) {
        const auto spec = applicationSpec(i);
        t1.addRow({spec.id, std::to_string(spec.numQubits),
                   spec.ansatzName, std::to_string(spec.reps),
                   spec.machineName + " (v" +
                       std::to_string(spec.traceVersion) + ")"});
    }
    t1.print(std::cout);

    QismetVqeConfig cfg;
    cfg.totalJobs = 2000;

    const Scheme schemes[] = {Scheme::Qismet, Scheme::Blocking,
                              Scheme::Resampling, Scheme::SecondOrder};

    TablePrinter table("Fidelity-improvement factor over the baseline "
                       "(seed-averaged)");
    table.setHeader({"app", "QISMET", "Blocking", "Resampling",
                     "2nd-order", "Kalman(best)"});

    std::map<std::string, double> factor_sum;
    for (int i = 1; i <= 6; ++i) {
        const Application app = application(i);
        const QismetVqe runner = app.makeRunner();
        QismetVqeConfig c = cfg;
        c.traceVersion = app.spec.traceVersion;

        const auto base =
            bench::runAveraged(runner, c, Scheme::Baseline);

        std::vector<std::string> row = {app.spec.id};
        for (Scheme s : schemes) {
            const auto out = bench::runAveraged(runner, c, s);
            const double factor = improvementFactor(
                base.meanEstimate, out.meanEstimate, 0.0,
                app.exactGroundEnergy);
            factor_sum[schemeName(s)] += factor;
            row.push_back(formatDouble(factor, 2) + "x");
        }
        const double kalman_est = bestKalmanEstimate(runner, c);
        const double kalman_factor = improvementFactor(
            base.meanEstimate, kalman_est, 0.0, app.exactGroundEnergy);
        factor_sum["Kalman"] += kalman_factor;
        row.push_back(formatDouble(kalman_factor, 2) + "x");
        table.addRow(std::move(row));
    }
    table.addRow({"mean", formatDouble(factor_sum["QISMET"] / 6, 2) + "x",
                  formatDouble(factor_sum["Blocking"] / 6, 2) + "x",
                  formatDouble(factor_sum["Resampling"] / 6, 2) + "x",
                  formatDouble(factor_sum["2nd-order"] / 6, 2) + "x",
                  formatDouble(factor_sum["Kalman"] / 6, 2) + "x"});
    table.print(std::cout);

    std::cout << "Paper means: QISMET 2x (up to 3x); Blocking ~1.2x; "
                 "Resampling ~1.25x; 2nd-order <1x; best-case Kalman "
                 "~1.1x (QISMET 1.85x better).\n";
    return 0;
}
