/**
 * @file
 * Ablation (paper Section 8.2): QISMET's acknowledged weak spots.
 *
 *  - Gradually accumulating drift: every step stays inside the error
 *    threshold, so QISMET follows the baseline (should be ~no worse).
 *  - Very long high-magnitude transients: the retry budget is spent and
 *    the effect is accepted anyway — QISMET pays the lost jobs and can
 *    end slightly *worse* than the baseline.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Ablation — adversarial transient scenarios (Section 8.2)",
        "Expect: slow drift -> QISMET ~ baseline; very long transients "
        "-> QISMET loses its retry jobs and ties or trails slightly.");

    TablePrinter table("Adversarial scenarios (seed-averaged)");
    table.setHeader({"scenario", "baseline", "QISMET", "QISMET skips",
                     "improvement"});

    // Scenario 1: pure slow drift, no bursts.
    {
        Application app = application(2);
        app.machine.transient.burst.ratePerStep = 0.0;
        app.machine.transient.driftStddev = 0.06;
        app.machine.transient.driftReversion = 0.01; // slow wander
        const QismetVqe runner = app.makeRunner();
        QismetVqeConfig cfg;
        cfg.totalJobs = 1500;
        const auto base =
            bench::runAveraged(runner, cfg, Scheme::Baseline);
        const auto qismet =
            bench::runAveraged(runner, cfg, Scheme::Qismet);
        table.addRow({"accumulating drift",
                      formatDouble(base.meanEstimate, 3),
                      formatDouble(qismet.meanEstimate, 3),
                      formatDouble(qismet.meanSkipFraction, 3),
                      formatDouble(100.0 * bench::percentImprovement(
                                       base.meanEstimate,
                                       qismet.meanEstimate),
                                   1) +
                          "%"});
    }

    // Scenario 2: rare but very long, non-decaying transients (e.g. a
    // recalibration-scale change) lasting far beyond the retry budget.
    {
        Application app = application(2);
        app.machine.transient.burst.ratePerStep = 0.004;
        app.machine.transient.burst.magnitudeMedian = 0.8;
        app.machine.transient.burst.magnitudeSigma = 0.2;
        app.machine.transient.burst.meanDurationSteps = 120.0;
        app.machine.transient.burst.decayPerStep = 1.0;
        app.machine.transient.burst.flicker = false; // no clean windows
        const QismetVqe runner = app.makeRunner();
        QismetVqeConfig cfg;
        cfg.totalJobs = 1500;
        const auto base =
            bench::runAveraged(runner, cfg, Scheme::Baseline);
        const auto qismet =
            bench::runAveraged(runner, cfg, Scheme::Qismet);
        table.addRow({"long-lived transients",
                      formatDouble(base.meanEstimate, 3),
                      formatDouble(qismet.meanEstimate, 3),
                      formatDouble(qismet.meanSkipFraction, 3),
                      formatDouble(100.0 * bench::percentImprovement(
                                       base.meanEstimate,
                                       qismet.meanEstimate),
                                   1) +
                          "%"});
    }
    table.print(std::cout);

    std::cout << "Paper claim: QISMET performs no worse than the "
                 "baseline under drift, and can be slightly worse when "
                 "transients outlast the retry budget.\n";
    return 0;
}
