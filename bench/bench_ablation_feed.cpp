/**
 * @file
 * Design ablation (DESIGN.md §5): the two halves of our QISMET
 * controller —
 *  (1) skipping sign-flipped iterations (paper Fig. 9), and
 *  (2) handing the tuner the transient-free prediction E_p whenever the
 *      estimated transient exceeds the threshold (paper Fig. 8's G_p
 *      "kept faithful to the transient-free scenario").
 * This bench isolates (2) by toggling the corrected feed off, leaving
 * skip-only behavior.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Ablation — gradient-faithful feed vs skip-only QISMET",
        "Expect: skipping alone recovers part of the benefit; feeding "
        "the tuner G_p-faithful energies recovers the rest.");

    TablePrinter table("Per-application final estimates (seed-averaged, "
                       "2000 jobs)");
    table.setHeader({"app", "baseline", "skip-only QISMET",
                     "full QISMET"});

    for (int i : {1, 2, 5}) {
        const Application app = application(i);
        const QismetVqe runner = app.makeRunner();
        QismetVqeConfig cfg;
        cfg.totalJobs = 2000;
        cfg.traceVersion = app.spec.traceVersion;

        const auto base =
            bench::runAveraged(runner, cfg, Scheme::Baseline);

        QismetVqeConfig skip_only = cfg;
        skip_only.qismetCorrectedFeed = false;
        const auto skip =
            bench::runAveraged(runner, skip_only, Scheme::Qismet);

        const auto full = bench::runAveraged(runner, cfg, Scheme::Qismet);

        table.addRow({app.spec.id, formatDouble(base.meanEstimate, 3),
                      formatDouble(skip.meanEstimate, 3),
                      formatDouble(full.meanEstimate, 3)});
    }
    table.print(std::cout);
    return 0;
}
