/**
 * @file
 * Fig. 13 reproduction: QISMET's benefit over the baseline across six
 * (simulated) IBMQ machines, with per-machine iteration counts set by
 * "machine availability".
 *
 * Paper claim: QISMET improves the measured VQA expectation by 29-51%
 * across machines (mean 39%) over 200-450 iterations.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Fig. 13 — QISMET benefit across six machines",
        "Expect: 29-51% improvement in the measured expectation on every "
        "machine (paper mean 39%), over 200-450 iterations.");

    // Machine, iteration budget, and the trace version selecting the
    // 48-hour observation window (the paper likewise reports specific
    // machine-time windows in which transients occurred).
    const struct
    {
        const char *machine;
        std::size_t iterations;
        int traceVersion;
    } runs[] = {
        {"guadalupe", 270, 10}, {"toronto", 450, 9}, {"sydney", 350, 5},
        {"casablanca", 220, 4}, {"jakarta", 200, 3}, {"mumbai", 400, 2},
    };

    TablePrinter table("QISMET vs baseline per machine (seed-averaged)");
    table.setHeader({"machine", "iterations", "baseline", "QISMET",
                     "improvement"});

    double pct_sum = 0.0;
    for (const auto &run : runs) {
        Application app = application(2);
        app.machine = machineModel(run.machine);
        const QismetVqe runner = app.makeRunner();

        QismetVqeConfig cfg;
        cfg.totalJobs = 2 * run.iterations;
        cfg.traceVersion = run.traceVersion;

        const auto base =
            bench::runAveraged(runner, cfg, Scheme::Baseline);
        const auto qismet =
            bench::runAveraged(runner, cfg, Scheme::Qismet);

        const double pct = bench::percentImprovement(
            base.meanEstimate, qismet.meanEstimate);
        pct_sum += pct;

        table.addRow({run.machine, std::to_string(run.iterations),
                      formatDouble(base.meanEstimate, 3),
                      formatDouble(qismet.meanEstimate, 3),
                      formatDouble(100.0 * pct, 1) + "%"});
    }
    table.print(std::cout);

    std::cout << "Mean improvement: "
              << formatDouble(100.0 * pct_sum / 6.0, 1)
              << "%   (paper: 29-51%, mean 39%)\n";
    return 0;
}
