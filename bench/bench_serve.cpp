/**
 * @file
 * Serve-layer scaling bench: one fixed multi-tenant workload pushed
 * through the ServeScheduler at increasing worker counts, reporting
 * wall-clock throughput and proving the combined trajectory digest is
 * identical at every scale (the determinism contract, measured).
 *
 *   ./build/bench/bench_serve [--runs N] [--backends K]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/chaos.hpp"
#include "serve/scheduler.hpp"
#include "support.hpp"

using namespace qismet;

namespace {

/** Deterministic mixed-tenant workload (all in-memory, no crashes). */
std::vector<ServeJobSpec>
makeWorkload(std::size_t runs)
{
    std::vector<ServeJobSpec> specs;
    specs.reserve(runs);
    for (std::size_t i = 0; i < runs; ++i) {
        Rng rng(deriveStreamSeed(7202, StreamDomain::kSoakSpec, i));
        ServeJobSpec spec;
        spec.tenantId = rng.uniformInt(4);
        spec.priority = static_cast<int>(rng.uniformInt(2));
        spec.kind = WorkloadKind::TfimApp;
        spec.appIndex = static_cast<int>(1 + rng.uniformInt(6));
        spec.seed = rng.engine()();
        spec.totalJobs = 8 + rng.uniformInt(8);
        spec.withFaults = rng.bernoulli(0.25);
        specs.push_back(spec);
    }
    return specs;
}

/** Run the workload at one worker count; returns {seconds, digest}.
 * With a chaos schedule the fleet faults and migrates while it is
 * being measured — the digest check holds regardless. */
std::pair<double, std::uint64_t>
soakOnce(const std::vector<ServeJobSpec> &specs, std::size_t workers,
         std::size_t backends, const ChaosSchedule *chaos = nullptr)
{
    ServeSchedulerConfig cfg;
    cfg.workers = workers;
    cfg.backends.assign(backends, "guadalupe");
    cfg.chaos = chaos;

    const auto start = std::chrono::steady_clock::now();
    ServeScheduler scheduler(cfg);
    for (const ServeJobSpec &spec : specs)
        scheduler.submit(spec);
    scheduler.drain();
    const auto stop = std::chrono::steady_clock::now();

    std::string table;
    for (std::uint64_t id : scheduler.jobIds()) {
        const auto info = scheduler.poll(id);
        if (info && info->state == ServeJobState::Completed)
            table += std::to_string(id) + ',' +
                     info->trajectoryDigest + '\n';
    }
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    return {seconds, fnv1a64(table)};
}

} // namespace

int
main(int argc, char **argv)
{
    // Keep the run physics single-threaded: this bench scales the
    // *scheduler* workers, so run-level parallelism would only blur
    // the speedup attribution.
    qismet::bench::configureThreads(argc, argv);

    std::size_t runs = 48;
    std::size_t backends = 8;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--runs" && i + 1 < argc)
            runs = static_cast<std::size_t>(std::atol(argv[++i]));
        else if (arg == "--backends" && i + 1 < argc)
            backends = static_cast<std::size_t>(std::atol(argv[++i]));
    }

    qismet::bench::printHeader(
        "serve scaling",
        "multi-tenant serve throughput scales with workers while every "
        "run stays bit-identical to its solo execution");

    const std::vector<ServeJobSpec> specs = makeWorkload(runs);
    std::printf("%zu runs over %zu backends\n\n", runs, backends);
    std::printf("%-8s %-10s %-10s %s\n", "workers", "seconds",
                "runs/s", "combined digest");

    std::uint64_t reference = 0;
    bool mismatch = false;
    for (std::size_t workers : {1, 2, 4, 8}) {
        const auto [seconds, digest] = soakOnce(specs, workers, backends);
        if (workers == 1)
            reference = digest;
        else if (digest != reference)
            mismatch = true;
        std::printf("%-8zu %-10.3f %-10.1f %016llx%s\n", workers,
                    seconds, static_cast<double>(runs) / seconds,
                    static_cast<unsigned long long>(digest),
                    digest == reference ? "" : "  << MISMATCH");
    }

    if (mismatch) {
        std::fprintf(stderr,
                     "\nbench_serve: digest drift across worker "
                     "counts — determinism contract violated\n");
        return 1;
    }
    std::printf("\nall worker counts produced identical digests\n");

    // Second pass: the same workload through a chaotic fleet (staggered
    // outages + a slowdown window). Migrations cost throughput but no
    // spec carries a migration budget, so every run still completes and
    // the combined digest must equal the calm fleet's — chaos overhead
    // measured, determinism re-proven.
    ChaosConfig chaosCfg;
    chaosCfg.backends = backends;
    chaosCfg.tenants = 4;
    chaosCfg.horizonTicks = runs * 2 < 16 ? 16 : runs * 2;
    const ChaosSchedule schedule = generateChaosSchedule(chaosCfg, 99);
    std::printf("\nchaotic fleet (%zu events, same workload):\n\n",
                schedule.events().size());
    std::printf("%-8s %-10s %-10s %s\n", "workers", "seconds",
                "runs/s", "combined digest");
    for (std::size_t workers : {1, 2, 4, 8}) {
        const auto [seconds, digest] =
            soakOnce(specs, workers, backends, &schedule);
        if (digest != reference)
            mismatch = true;
        std::printf("%-8zu %-10.3f %-10.1f %016llx%s\n", workers,
                    seconds, static_cast<double>(runs) / seconds,
                    static_cast<unsigned long long>(digest),
                    digest == reference ? "" : "  << MISMATCH");
    }
    if (mismatch) {
        std::fprintf(stderr,
                     "\nbench_serve: chaotic-fleet digest diverged "
                     "from the calm fleet — migration leaked into a "
                     "run's randomness\n");
        return 1;
    }
    std::printf("\nchaotic fleet matched the calm fleet's digests\n");
    return 0;
}
