/**
 * @file
 * Fig. 19 reproduction: the QISMET error-threshold sweep
 * (conservative 1% / best 10% / aggressive 25% skip targets) on two
 * simulated use cases with low and high transient noise.
 *
 * Paper claims: the conservative threshold skips too few instances and
 * tracks the baseline; the aggressive threshold wastes skips in the
 * low-noise case but still helps in the high-noise case; the best-case
 * threshold wins in both (1.2x low, 3x high).
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Fig. 19 — QISMET error-threshold sweep on low- and high-"
        "transient use cases",
        "Expect: conservative ~ baseline; best threshold strong in both "
        "cases; aggressive pays extra skips in the low-noise case.");

    const Application app = application(2);
    const QismetVqe runner = app.makeRunner();

    const struct
    {
        const char *label;
        double scale;
    } cases[] = {{"low transient noise", 0.35},
                 {"high transient noise", 1.6}};

    for (const auto &c : cases) {
        QismetVqeConfig cfg;
        cfg.totalJobs = 2000;
        cfg.transientScale = c.scale;

        const auto base =
            bench::runAveraged(runner, cfg, Scheme::Baseline);

        TablePrinter table(std::string("Use case: ") + c.label +
                           " (seed-averaged)");
        table.setHeader({"variant", "final estimate", "skips",
                         "improvement factor"});
        table.addRow({"Baseline", formatDouble(base.meanEstimate, 3), "-",
                      "1.00x"});
        for (Scheme s : {Scheme::QismetConservative, Scheme::Qismet,
                         Scheme::QismetAggressive}) {
            const auto out = bench::runAveraged(runner, cfg, s);
            const double factor = improvementFactor(
                base.meanEstimate, out.meanEstimate, 0.0,
                app.exactGroundEnergy);
            table.addRow({out.scheme,
                          formatDouble(out.meanEstimate, 3),
                          formatDouble(out.meanSkipFraction, 3),
                          formatDouble(factor, 2) + "x"});
        }
        table.print(std::cout);
    }

    std::cout << "Paper targets: best threshold 1.2x (low) and 3x "
                 "(high); conservative ~ baseline in both.\n";
    return 0;
}
