/**
 * @file
 * Fig. 5 reproduction: extreme transient impact on a baseline VQA run
 * (paper: IBMQ Jakarta over ~24 hours, ~500 iterations).
 *
 * Paper claim: multiple sharp upward spikes punctuate the tuning curve,
 * and the expectation at iteration 500 is no better than at ~100 — the
 * transients stall progress.
 */

#include <algorithm>
#include <iostream>

#include "apps/applications.hpp"
#include "common/statistics.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Fig. 5 — transient spikes on a baseline VQA (simulated Jakarta)",
        "Expect: sharp upward spikes; late-run estimate barely better "
        "than the early-run estimate.");

    Application app = application(2);
    app.machine = machineModel("jakarta");
    const QismetVqe runner = app.makeRunner();

    QismetVqeConfig cfg;
    cfg.totalJobs = 1000; // ~500 SPSA iterations
    cfg.seed = 29;
    cfg.scheme = Scheme::Baseline;
    cfg.transientScale = 1.5; // a severe episode, like the paper's run
    const auto res = runner.run(cfg);

    const auto &series = res.run.iterationEnergies;
    bench::printSeries("Baseline VQA expectation per iteration", series);

    // Spike census: upward jumps several times the typical
    // iteration-to-iteration movement (robust MAD scale).
    std::vector<double> jumps;
    for (std::size_t i = 1; i < series.size(); ++i)
        jumps.push_back(series[i] - series[i - 1]);
    std::vector<double> abs_jumps;
    for (double j : jumps)
        abs_jumps.push_back(std::abs(j));
    const double typical = quantile(abs_jumps, 0.5);
    const double swing = std::abs(res.exactGroundEnergy);
    int spikes = 0;
    double biggest = 0.0;
    for (double j : jumps) {
        if (j > std::max(6.0 * typical, 0.05 * swing))
            ++spikes;
        biggest = std::max(biggest, j);
    }

    auto window_mean = [&](std::size_t lo, std::size_t hi) {
        double s = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
            s += series[i];
        return s / static_cast<double>(hi - lo);
    };
    const std::size_t n = series.size();
    const double at100 = window_mean(90, 110);
    const double at_end = window_mean(n - 20, n);

    TablePrinter table("Spike census (simulated 24 h Jakarta run)");
    table.setHeader({"metric", "value"});
    table.addRow({"iterations", std::to_string(n)});
    table.addRow({"sharp upward spikes (>20% of swing)",
                  std::to_string(spikes)});
    table.addRow({"largest single-iteration jump",
                  formatDouble(biggest, 3)});
    table.addRow({"mean estimate around iteration 100",
                  formatDouble(at100, 3)});
    table.addRow({"mean estimate at run end", formatDouble(at_end, 3)});
    table.addRow({"late-vs-early gain",
                  formatDouble(at100 - at_end, 3)});
    table.print(std::cout);

    std::cout << "Paper-shape check: multiple spikes ("
              << spikes << " here) and end-of-run estimate close to the "
              << "iteration-100 level (gain "
              << formatDouble(at100 - at_end, 2) << ", small relative to "
              << "the swing " << formatDouble(swing, 1) << ").\n";
    return 0;
}
