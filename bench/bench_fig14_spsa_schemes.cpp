/**
 * @file
 * Fig. 14 reproduction: App2 simulated for 2000 iterations under the
 * SPSA tuner, comparing Baseline, QISMET, Resampling, Blocking and
 * 2nd-order.
 *
 * Paper claims: QISMET is best (~65% improvement over the baseline);
 * Blocking and Resampling improve ~30% less than QISMET; 2nd-order is
 * ~35% *worse* than the baseline and ~2.5x worse than QISMET.
 */

#include <iostream>

#include "apps/applications.hpp"
#include "common/table_printer.hpp"
#include "support.hpp"

using namespace qismet;

int
main(int argc, char **argv)
{
    bench::configureThreads(argc, argv);
    bench::printHeader(
        "Fig. 14 — App2 vs SPSA optimization schemes (2000 iterations)",
        "Expect: QISMET best; Blocking/Resampling in between; 2nd-order "
        "below the baseline.");

    const Application app = application(2);
    const QismetVqe runner = app.makeRunner();

    QismetVqeConfig cfg;
    cfg.totalJobs = 2000;

    const Scheme schemes[] = {Scheme::Baseline, Scheme::Qismet,
                              Scheme::Resampling, Scheme::Blocking,
                              Scheme::SecondOrder};

    TablePrinter table("Final VQA expectation after 2000 jobs "
                       "(seed-averaged; exact ground energy " +
                       formatDouble(app.exactGroundEnergy, 3) + ")");
    table.setHeader({"scheme", "final estimate", "improvement",
                     "series (seed 7)"});

    double base_estimate = 0.0;
    for (Scheme s : schemes) {
        const auto out = bench::runAveraged(runner, cfg, s);
        if (s == Scheme::Baseline)
            base_estimate = out.meanEstimate;
        const double pct =
            bench::percentImprovement(base_estimate, out.meanEstimate);
        table.addRow({out.scheme, formatDouble(out.meanEstimate, 3),
                      formatDouble(100.0 * pct, 1) + "%",
                      sparkline(out.exampleSeries, 28)});
    }
    table.print(std::cout);

    std::cout << "Paper targets: QISMET +65%; Blocking/Resampling ~30% "
                 "below QISMET's gain; 2nd-order ~-35%.\n";
    return 0;
}
