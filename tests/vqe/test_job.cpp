/** @file Tests for the job executor and its transient invariant. */

#include <gtest/gtest.h>

#include <cmath>

#include "ansatz/real_amplitudes.hpp"
#include "hamiltonian/tfim.hpp"
#include "noise/machine_model.hpp"
#include "vqe/job.hpp"

namespace qismet {
namespace {

struct Fixture
{
    Fixture()
        : hamiltonian(tfimHamiltonian({.numQubits = 4})),
          ansatz(RealAmplitudes(4, 2).build()),
          estimator(hamiltonian, ansatz,
                    machineModel("guadalupe").staticModel(),
                    makeConfig())
    {
    }

    static EstimatorConfig makeConfig()
    {
        EstimatorConfig cfg;
        cfg.mode = EstimatorMode::Analytic;
        cfg.shots = 1 << 20; // ~noiseless shots to isolate transients
        return cfg;
    }

    std::vector<double> theta(double v) const
    {
        return std::vector<double>(
            static_cast<std::size_t>(ansatz.numParams()), v);
    }

    PauliSum hamiltonian;
    Circuit ansatz;
    EnergyEstimator estimator;
};

TEST(JobExecutor, Validation)
{
    Fixture f;
    EXPECT_THROW(JobExecutor(f.estimator, TransientTrace{}, 1, -0.1),
                 std::invalid_argument);
    JobExecutor exec(f.estimator, TransientTrace{}, 1);
    EXPECT_THROW(exec.execute(JobRequest{}), std::invalid_argument);
}

TEST(JobExecutor, ConsumesTraceSequentially)
{
    Fixture f;
    TransientTrace trace({0.1, 0.5, 0.0});
    JobExecutor exec(f.estimator, trace, 7);

    JobRequest req;
    req.evaluations.push_back(f.theta(0.3));

    EXPECT_DOUBLE_EQ(exec.peekNextIntensity(), 0.1);
    const auto r0 = exec.execute(req);
    EXPECT_DOUBLE_EQ(r0.transientIntensity, 0.1);
    EXPECT_EQ(r0.jobIndex, 0u);

    EXPECT_DOUBLE_EQ(exec.peekNextIntensity(), 0.5);
    const auto r1 = exec.execute(req);
    EXPECT_DOUBLE_EQ(r1.transientIntensity, 0.5);
    EXPECT_EQ(exec.jobsExecuted(), 2u);
}

TEST(JobExecutor, SharedTransientWithinJob)
{
    // The QISMET invariant: circuits in one job see (approximately) the
    // same transient. With zero jitter the reference rerun estimates
    // the transient on the primary exactly (up to shot noise, which the
    // huge shot count suppresses).
    Fixture f;
    TransientTrace trace({0.0, 0.6});
    JobExecutor exec(f.estimator, trace, 11, /*intra_job_jitter=*/0.0,
                     /*relative_jitter=*/0.0);

    const auto point = f.theta(0.3);

    JobRequest first;
    first.evaluations.push_back(point);
    const double e_clean = exec.execute(first).energies[0];

    JobRequest second;
    second.evaluations.push_back(point);
    second.evaluations.push_back(point); // rerun in the same job
    const auto res = exec.execute(second);
    // Both evaluations of the same point in one job agree closely.
    EXPECT_NEAR(res.energies[0], res.energies[1], 1e-2);
    // And both differ from the clean job (transient 0.6 hit them).
    EXPECT_GT(res.energies[0] - e_clean, 0.1);
}

TEST(JobExecutor, JitterBreaksExactEquality)
{
    Fixture f;
    TransientTrace trace({0.5});
    JobExecutor exec(f.estimator, trace, 13, 0.05, 0.5);
    JobRequest req;
    req.evaluations.push_back(f.theta(0.3));
    req.evaluations.push_back(f.theta(0.3));
    const auto res = exec.execute(req);
    EXPECT_NE(res.energies[0], res.energies[1]);
}

TEST(JobExecutor, CircuitAccounting)
{
    Fixture f;
    JobExecutor exec(f.estimator, TransientTrace{}, 1, 0.0, 0.0,
                     /*mitigation_circuits=*/2);
    JobRequest req;
    req.evaluations.push_back(f.theta(0.1));
    req.evaluations.push_back(f.theta(0.2));
    exec.execute(req);
    // 2 evaluations x numGroups circuits + 2 mitigation circuits.
    EXPECT_EQ(exec.circuitsExecuted(),
              2 * f.estimator.numGroups() + 2);
}

TEST(JobExecutor, PastTraceEndIsQuiet)
{
    Fixture f;
    TransientTrace trace({0.9});
    JobExecutor exec(f.estimator, trace, 17, 0.0, 0.0);
    JobRequest req;
    req.evaluations.push_back(f.theta(0.3));
    exec.execute(req); // consumes the only entry
    const auto res = exec.execute(req);
    EXPECT_DOUBLE_EQ(res.transientIntensity, 0.0);
}

} // namespace
} // namespace qismet
