/** @file Tests for the noisy energy estimator. */

#include <gtest/gtest.h>

#include <cmath>

#include "ansatz/real_amplitudes.hpp"
#include "common/statistics.hpp"
#include "hamiltonian/tfim.hpp"
#include "noise/machine_model.hpp"
#include "vqe/energy_estimator.hpp"

namespace qismet {
namespace {

struct Fixture
{
    Fixture()
        : hamiltonian(tfimHamiltonian({.numQubits = 4})),
          ansatz(RealAmplitudes(4, 2).build()),
          noise(machineModel("guadalupe").staticModel())
    {
    }

    PauliSum hamiltonian;
    Circuit ansatz;
    StaticNoiseModel noise;

    std::vector<double> theta(double value = 0.4) const
    {
        return std::vector<double>(
            static_cast<std::size_t>(ansatz.numParams()), value);
    }
};

TEST(EnergyEstimator, Validation)
{
    Fixture f;
    EstimatorConfig cfg;
    cfg.shots = 0;
    EXPECT_THROW(EnergyEstimator(f.hamiltonian, f.ansatz, f.noise, cfg),
                 std::invalid_argument);

    EstimatorConfig ok;
    EXPECT_THROW(EnergyEstimator(f.hamiltonian, f.ansatz, std::nullopt, ok),
                 std::invalid_argument); // noisy mode without noise model

    PauliSum wrong(3);
    wrong.add(1.0, "ZZZ");
    EXPECT_THROW(EnergyEstimator(wrong, f.ansatz, f.noise, ok),
                 std::invalid_argument);
}

TEST(EnergyEstimator, IdealModeIsExact)
{
    Fixture f;
    EstimatorConfig cfg;
    cfg.mode = EstimatorMode::Ideal;
    EnergyEstimator est(f.hamiltonian, f.ansatz, std::nullopt, cfg);
    Rng rng(1);
    const auto t = f.theta();
    EXPECT_DOUBLE_EQ(est.estimate(t, 0.0, rng), est.idealEnergy(t));
    EXPECT_DOUBLE_EQ(est.estimate(t, 0.9, rng), est.idealEnergy(t));
}

TEST(EnergyEstimator, MixedEnergyIsIdentityCoefficient)
{
    Fixture f;
    PauliSum shifted = f.hamiltonian;
    shifted.add(1.75, "IIII");
    EnergyEstimator est(shifted, f.ansatz, f.noise, {});
    EXPECT_DOUBLE_EQ(est.mixedEnergy(), 1.75);
}

TEST(EnergyEstimator, AnalyticMeanMatchesComposition)
{
    Fixture f;
    EstimatorConfig cfg;
    cfg.mode = EstimatorMode::Analytic;
    cfg.shots = 1 << 14;
    EnergyEstimator est(f.hamiltonian, f.ansatz, f.noise, cfg);

    const auto t = f.theta();
    const double ideal = est.idealEnergy(t);

    // Average many noisy estimates at tau = 0: expect f_static * ideal
    // (mixed energy is 0 for the TFIM).
    Rng rng(3);
    RunningStats stats;
    for (int i = 0; i < 2000; ++i)
        stats.add(est.estimate(t, 0.0, rng));

    Statevector st(4);
    st.run(f.ansatz, t);
    const double kappa = EnergyEstimator::transientSensitivity(st);
    (void)kappa;
    EXPECT_NEAR(stats.mean(), est.staticSurvival() * ideal, 0.02);
}

TEST(EnergyEstimator, FullTransientScramblesToMixed)
{
    Fixture f;
    EnergyEstimator est(f.hamiltonian, f.ansatz, f.noise, {});
    Rng rng(5);

    // Prepare a half-excited state so the sensitivity is ~1 and tau = 1
    // fully scrambles.
    const auto t = f.theta(M_PI / 2.0);
    Statevector st(4);
    st.run(f.ansatz, t);
    const double kappa = EnergyEstimator::transientSensitivity(st);
    const double tau = 1.0 / kappa;

    RunningStats stats;
    for (int i = 0; i < 500; ++i)
        stats.add(est.estimate(t, tau, rng));
    EXPECT_NEAR(stats.mean(), est.mixedEnergy(), 0.05);
}

TEST(EnergyEstimator, TransientPullsTowardMixed)
{
    Fixture f;
    EnergyEstimator est(f.hamiltonian, f.ansatz, f.noise, {});
    Rng rng(7);
    const auto t = f.theta();

    RunningStats clean, noisy;
    for (int i = 0; i < 500; ++i) {
        clean.add(est.estimate(t, 0.0, rng));
        noisy.add(est.estimate(t, 0.5, rng));
    }
    // Energies are negative; transients pull up toward 0.
    EXPECT_LT(clean.mean(), noisy.mean());
}

TEST(EnergyEstimator, TransientSensitivityLimits)
{
    // |0000>: no excitation, immune. |1111>: doubly sensitive.
    Statevector ground(4);
    EXPECT_DOUBLE_EQ(EnergyEstimator::transientSensitivity(ground), 0.0);

    Statevector excited(4);
    Circuit flip(4);
    flip.x(0).x(1).x(2).x(3);
    excited.run(flip);
    EXPECT_DOUBLE_EQ(EnergyEstimator::transientSensitivity(excited), 2.0);

    Statevector half(4);
    Circuit two(4);
    two.x(0).x(1);
    half.run(two);
    EXPECT_DOUBLE_EQ(EnergyEstimator::transientSensitivity(half), 1.0);
}

TEST(EnergyEstimator, SamplingAgreesWithAnalyticOnAverage)
{
    Fixture f;
    EstimatorConfig a;
    a.mode = EstimatorMode::Analytic;
    a.shots = 4096;
    EstimatorConfig s;
    s.mode = EstimatorMode::Sampling;
    s.shots = 4096;

    EnergyEstimator ea(f.hamiltonian, f.ansatz, f.noise, a);
    EnergyEstimator es(f.hamiltonian, f.ansatz, f.noise, s);

    const auto t = f.theta(-0.7);
    Rng rng(11);
    RunningStats sa, ss;
    for (int i = 0; i < 300; ++i) {
        sa.add(ea.estimate(t, 0.1, rng));
        ss.add(es.estimate(t, 0.1, rng));
    }
    // The sampling path adds SPAM modeling; mitigation should bring the
    // two paths close.
    EXPECT_NEAR(sa.mean(), ss.mean(), 0.08);
}

TEST(EnergyEstimator, SamplingWithoutMitigationIsBiased)
{
    Fixture f;
    EstimatorConfig with;
    with.mode = EstimatorMode::Sampling;
    with.mitigateMeasurement = true;
    EstimatorConfig without = with;
    without.mitigateMeasurement = false;

    EnergyEstimator ew(f.hamiltonian, f.ansatz, f.noise, with);
    EnergyEstimator eo(f.hamiltonian, f.ansatz, f.noise, without);

    const auto t = f.theta(0.3);
    Rng rng(13);
    RunningStats sw, so;
    for (int i = 0; i < 300; ++i) {
        sw.add(ew.estimate(t, 0.0, rng));
        so.add(eo.estimate(t, 0.0, rng));
    }
    // Un-mitigated readout pulls the estimate further from ideal.
    const double ideal = ew.idealEnergy(t) * ew.staticSurvival();
    EXPECT_LT(std::abs(sw.mean() - ideal), std::abs(so.mean() - ideal));
}

TEST(EnergyEstimator, GroupCountMatchesHamiltonianStructure)
{
    Fixture f;
    EnergyEstimator est(f.hamiltonian, f.ansatz, f.noise, {});
    EXPECT_EQ(est.numGroups(), 2u); // TFIM: one ZZ group + one X group
}

} // namespace
} // namespace qismet
