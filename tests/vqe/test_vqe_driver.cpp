/** @file Tests for the VQE driver loop and base policies. */

#include <gtest/gtest.h>

#include <cmath>

#include "ansatz/real_amplitudes.hpp"
#include "hamiltonian/tfim.hpp"
#include "noise/machine_model.hpp"
#include "vqe/vqe_driver.hpp"

namespace qismet {
namespace {

struct Fixture
{
    Fixture()
        : hamiltonian(tfimHamiltonian({.numQubits = 4})),
          ansatz_gen(4, 2), ansatz(ansatz_gen.build()),
          estimator(hamiltonian, ansatz,
                    machineModel("guadalupe").staticModel(), makeConfig())
    {
    }

    static EstimatorConfig makeConfig()
    {
        EstimatorConfig cfg;
        cfg.mode = EstimatorMode::Analytic;
        return cfg;
    }

    std::vector<double> initialTheta()
    {
        Rng rng(1);
        return ansatz_gen.randomInitialPoint(rng);
    }

    PauliSum hamiltonian;
    RealAmplitudes ansatz_gen;
    Circuit ansatz;
    EnergyEstimator estimator;
};

/** Test policy that retries the first N judgments. */
class RetryNTimesPolicy : public TuningPolicy
{
  public:
    explicit RetryNTimesPolicy(int n) : remaining_(n) {}
    std::string name() const override { return "RetryN"; }
    bool wantsReferenceRerun() const override { return true; }
    Decision judgeEvaluation(const EvalContext &) override
    {
        if (remaining_ > 0) {
            --remaining_;
            return Decision::Retry;
        }
        return Decision::Accept;
    }

  private:
    int remaining_;
};

TEST(VqeDriver, Validation)
{
    Fixture f;
    JobExecutor exec(f.estimator, TransientTrace{}, 1);
    Spsa opt;
    AlwaysAcceptPolicy policy;
    VqeDriverConfig cfg;
    cfg.totalJobs = 0;
    EXPECT_THROW(VqeDriver(f.estimator, exec, opt, policy, cfg),
                 std::invalid_argument);
}

TEST(VqeDriver, RespectsJobBudget)
{
    Fixture f;
    JobExecutor exec(f.estimator, TransientTrace{}, 3);
    Spsa opt(SpsaGains::forHorizon(100, 0.02));
    AlwaysAcceptPolicy policy;
    VqeDriverConfig cfg;
    cfg.totalJobs = 101; // odd: last iteration cannot finish its pair
    VqeDriver driver(f.estimator, exec, opt, policy, cfg);

    const auto result = driver.run(f.initialTheta());
    EXPECT_EQ(result.jobsUsed, 101u);
    EXPECT_EQ(result.history.size(), 101u);
    EXPECT_EQ(exec.jobsExecuted(), 101u);
    // One iteration energy per completed evaluation pair.
    EXPECT_EQ(result.iterationEnergies.size(), 50u);
}

TEST(VqeDriver, BaselineConvergesNoiseFree)
{
    Fixture f;
    EstimatorConfig ideal;
    ideal.mode = EstimatorMode::Ideal;
    EnergyEstimator est(f.hamiltonian, f.ansatz, std::nullopt, ideal);

    JobExecutor exec(est, TransientTrace{}, 5);
    Spsa opt(SpsaGains::forHorizon(1200, 0.03));
    AlwaysAcceptPolicy policy;
    VqeDriverConfig cfg;
    cfg.totalJobs = 1200;
    cfg.seed = 9;
    VqeDriver driver(est, exec, opt, policy, cfg);

    const auto result = driver.run(f.initialTheta());
    const double exact = tfimExactGroundEnergy({.numQubits = 4});
    // Reaches at least 85% of the exact ground energy.
    EXPECT_LT(result.finalIdealEnergy, 0.85 * exact);
    EXPECT_NEAR(result.finalIdealEnergy, exact, 0.8);
}

TEST(VqeDriver, RetriesConsumeBudgetAndAreRecorded)
{
    Fixture f;
    JobExecutor exec(f.estimator, TransientTrace{}, 7);
    Spsa opt(SpsaGains::forHorizon(40, 0.02));
    RetryNTimesPolicy policy(5);
    VqeDriverConfig cfg;
    cfg.totalJobs = 40;
    VqeDriver driver(f.estimator, exec, opt, policy, cfg);

    const auto result = driver.run(f.initialTheta());
    EXPECT_EQ(result.retriesUsed, 5u);
    int retries_seen = 0;
    for (const auto &rec : result.history)
        if (!rec.accepted)
            ++retries_seen;
    EXPECT_EQ(retries_seen, 5);
    // Retry records must show increasing retryIndex for the same eval.
    EXPECT_EQ(result.history[1].retryIndex, 0);
    EXPECT_EQ(result.history[2].retryIndex, 1);
}

TEST(VqeDriver, BlockingRejectsWorseningMoves)
{
    Fixture f;
    // A huge transient on a mid-run job makes iteration energies jump;
    // blocking should reject at least one move.
    std::vector<double> taus(60, 0.0);
    for (int i = 20; i < 26; ++i)
        taus[static_cast<std::size_t>(i)] = 1.0;
    JobExecutor exec(f.estimator, TransientTrace(taus), 11, 0.0, 0.0);
    Spsa opt(SpsaGains::forHorizon(60, 0.02));
    BlockingPolicy policy(0.05);
    VqeDriverConfig cfg;
    cfg.totalJobs = 60;
    VqeDriver driver(f.estimator, exec, opt, policy, cfg);

    const auto result = driver.run(f.initialTheta());
    EXPECT_GT(result.rejections, 0u);
}

TEST(VqeDriver, BlockingToleranceValidation)
{
    EXPECT_THROW(BlockingPolicy(-0.1), std::invalid_argument);
    BlockingPolicy p(0.1);
    EXPECT_TRUE(p.acceptMove(1.0, 1.05));
    EXPECT_FALSE(p.acceptMove(1.0, 1.2));
    EXPECT_TRUE(p.acceptMove(1.0, 0.5));
}

TEST(VqeDriver, HistorySeriesAccessors)
{
    Fixture f;
    JobExecutor exec(f.estimator, TransientTrace{}, 13);
    Spsa opt(SpsaGains::forHorizon(20, 0.02));
    AlwaysAcceptPolicy policy;
    VqeDriverConfig cfg;
    cfg.totalJobs = 20;
    VqeDriver driver(f.estimator, exec, opt, policy, cfg);

    const auto result = driver.run(f.initialTheta());
    EXPECT_EQ(result.perJobEnergySeries().size(), result.history.size());
    EXPECT_EQ(result.acceptedEnergySeries().size(), 20u);
    EXPECT_EQ(result.finalTheta.size(),
              static_cast<std::size_t>(f.ansatz.numParams()));
}

TEST(VqeDriver, DeterministicGivenSeed)
{
    Fixture f;
    auto run_once = [&](std::uint64_t seed) {
        JobExecutor exec(f.estimator, TransientTrace{}, 17);
        Spsa opt(SpsaGains::forHorizon(30, 0.02));
        AlwaysAcceptPolicy policy;
        VqeDriverConfig cfg;
        cfg.totalJobs = 30;
        cfg.seed = seed;
        VqeDriver driver(f.estimator, exec, opt, policy, cfg);
        return driver.run(f.initialTheta()).finalEstimate;
    };
    EXPECT_DOUBLE_EQ(run_once(5), run_once(5));
    EXPECT_NE(run_once(5), run_once(6));
}

} // namespace
} // namespace qismet
