/**
 * @file
 * End-to-end integration tests asserting the paper's headline *shape*
 * claims on reduced (test-sized) budgets. The full-scale numbers live
 * in the bench binaries; these tests guard the qualitative results
 * against regressions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/experiment_runner.hpp"
#include "hamiltonian/h2_molecule.hpp"

namespace qismet {
namespace {

double
meanFinalEstimate(const QismetVqe &runner, Scheme scheme,
                  std::size_t jobs, int trace_version,
                  const std::vector<std::uint64_t> &seeds)
{
    double sum = 0.0;
    for (auto seed : seeds) {
        QismetVqeConfig cfg;
        cfg.totalJobs = jobs;
        cfg.seed = seed;
        cfg.scheme = scheme;
        cfg.traceVersion = trace_version;
        sum += runner.run(cfg).run.finalEstimate;
    }
    return sum / static_cast<double>(seeds.size());
}

TEST(EndToEnd, QismetBeatsBaselineOnTransientHeavyApp)
{
    // The headline claim (Figs. 11-14, 17): QISMET lands a materially
    // better measured expectation than the baseline.
    const Application app = application(2);
    const QismetVqe runner = app.makeRunner();
    const std::vector<std::uint64_t> seeds = {7, 17, 27};

    const double base =
        meanFinalEstimate(runner, Scheme::Baseline, 1200,
                          app.spec.traceVersion, seeds);
    const double qismet =
        meanFinalEstimate(runner, Scheme::Qismet, 1200,
                          app.spec.traceVersion, seeds);
    EXPECT_LT(qismet, base - 0.3);
}

TEST(EndToEnd, SecondOrderWorseThanBaseline)
{
    // Fig. 14/17: 2nd-order is detrimental under transients.
    const Application app = application(2);
    const QismetVqe runner = app.makeRunner();
    const std::vector<std::uint64_t> seeds = {7, 17, 27};

    const double base = meanFinalEstimate(
        runner, Scheme::Baseline, 1200, app.spec.traceVersion, seeds);
    const double second = meanFinalEstimate(
        runner, Scheme::SecondOrder, 1200, app.spec.traceVersion, seeds);
    EXPECT_GT(second, base - 0.2);
}

TEST(EndToEnd, QismetBeatsOnlyTransientsSkipping)
{
    // Fig. 15: magnitude-only skipping underperforms QISMET.
    const Application app = application(1);
    const QismetVqe runner = app.makeRunner();
    const std::vector<std::uint64_t> seeds = {7, 17, 27};

    const double qismet = meanFinalEstimate(
        runner, Scheme::Qismet, 1200, app.spec.traceVersion, seeds);
    const double only = meanFinalEstimate(
        runner, Scheme::OnlyTransients, 1200, app.spec.traceVersion,
        seeds);
    EXPECT_LT(qismet, only + 0.1);
}

TEST(EndToEnd, NoiseFreeIsTheBestAnyScheme)
{
    const Application app = application(1);
    const QismetVqe runner = app.makeRunner();
    const std::vector<std::uint64_t> seeds = {7, 17};

    const double noise_free = meanFinalEstimate(
        runner, Scheme::NoiseFree, 1200, app.spec.traceVersion, seeds);
    for (Scheme s : {Scheme::Baseline, Scheme::Qismet, Scheme::Blocking}) {
        EXPECT_LT(noise_free,
                  meanFinalEstimate(runner, s, 1200,
                                    app.spec.traceVersion, seeds) +
                      0.05)
            << schemeName(s);
    }
}

TEST(EndToEnd, H2QismetTracksNoiseFreeCurve)
{
    // Fig. 18 (shrunk): on a transient-only setup the QISMET estimate
    // stays closer to the exact curve than the baseline at a stretched
    // bond length.
    const H2Problem prob = h2Problem(1.5);
    MachineModel machine = machineModel("guadalupe");
    machine.staticNoise.p1q = 0.0;
    machine.staticNoise.p2q = 0.0;
    machine.staticNoise.readoutP10 = 0.0;
    machine.staticNoise.readoutP01 = 0.0;
    machine.transient.burst.ratePerStep = 0.06;
    machine.transient.burst.magnitudeMedian = 0.7;

    const auto ansatz = makeAnsatz("SU2", 4, 3);
    const QismetVqe runner(prob.hamiltonian, ansatz->build(), machine,
                           prob.fciEnergy);

    double base_err = 0.0, qismet_err = 0.0;
    for (std::uint64_t seed : {5ull, 15ull, 25ull}) {
        QismetVqeConfig cfg;
        cfg.totalJobs = 900;
        cfg.seed = seed;
        cfg.spsaInitialStep = 1.5; // shallow H2 landscape needs big steps
        cfg.scheme = Scheme::Baseline;
        base_err += std::abs(runner.run(cfg).estimateError());
        cfg.scheme = Scheme::Qismet;
        qismet_err += std::abs(runner.run(cfg).estimateError());
    }
    EXPECT_LT(qismet_err, base_err);
}

TEST(EndToEnd, SamplingModePipelineRuns)
{
    // The full sampling pipeline (counts, readout, mitigation) must run
    // end to end and produce sane energies.
    const Application app = application(1);
    const QismetVqe runner = app.makeRunner();
    QismetVqeConfig cfg;
    cfg.totalJobs = 60;
    cfg.estimator.mode = EstimatorMode::Sampling;
    cfg.estimator.shots = 1024;
    cfg.scheme = Scheme::Qismet;
    const auto res = runner.run(cfg);
    EXPECT_EQ(res.run.jobsUsed, 60u);
    EXPECT_LT(res.run.finalEstimate, 1.0);
    EXPECT_GT(res.run.finalEstimate, app.exactGroundEnergy - 1.0);
}

} // namespace
} // namespace qismet
