/**
 * @file
 * Integration tests for the fault-injection & resilience layer: every
 * fault kind is recovered per policy, degraded-mode trajectories stay
 * finite and bounded, and full fault-injected trajectories are
 * bit-identical at every thread count (the determinism contract).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "apps/applications.hpp"
#include "common/thread_pool.hpp"
#include "core/qismet_vqe.hpp"
#include "fault/fault_injector.hpp"

namespace qismet {
namespace {

/** Restores the global executor's thread count on scope exit. */
class GlobalThreadsGuard
{
  public:
    GlobalThreadsGuard() : saved_(ParallelExecutor::global().threads()) {}
    ~GlobalThreadsGuard() { ParallelExecutor::setGlobalThreads(saved_); }

  private:
    std::size_t saved_;
};

FaultPolicy
mixedFaults(double total_rate)
{
    FaultPolicy policy;
    policy.timeoutRate = 0.4 * total_rate;
    policy.errorRate = 0.2 * total_rate;
    policy.partialRate = 0.2 * total_rate;
    policy.referenceLossRate = 0.2 * total_rate;
    policy.burstCoupling = 1.0;
    return policy;
}

QismetVqeConfig
faultedConfig(Scheme scheme, double total_rate, std::uint64_t seed = 11)
{
    QismetVqeConfig cfg;
    cfg.scheme = scheme;
    cfg.totalJobs = 250;
    cfg.seed = seed;
    cfg.faults = mixedFaults(total_rate);
    return cfg;
}

void
expectFiniteAndBounded(const QismetVqeResult &result)
{
    // Degraded-mode sanity: every reported energy is finite and lies
    // within the physically meaningful band [ground, mixed] widened by
    // a noise margin on both sides.
    const double span =
        std::abs(result.mixedEnergy - result.exactGroundEnergy);
    const double lo = result.exactGroundEnergy - 0.5 * span;
    const double hi = result.mixedEnergy + 0.5 * span;
    ASSERT_FALSE(result.run.iterationEnergies.empty());
    for (double e : result.run.iterationEnergies) {
        EXPECT_TRUE(std::isfinite(e));
        EXPECT_GE(e, lo);
        EXPECT_LE(e, hi);
    }
    EXPECT_TRUE(std::isfinite(result.run.finalEstimate));
    EXPECT_TRUE(std::isfinite(result.run.finalIdealEnergy));
    for (double t : result.run.finalTheta)
        EXPECT_TRUE(std::isfinite(t));
}

TEST(FaultResilience, FaultFreeConfigMatchesLegacyTrajectory)
{
    // All-zero fault rates must leave the pipeline byte-identical to a
    // run that never heard of the fault layer.
    const QismetVqe runner = application(2).makeRunner();
    QismetVqeConfig cfg;
    cfg.scheme = Scheme::Qismet;
    cfg.totalJobs = 120;
    cfg.seed = 5;

    QismetVqeConfig with_layer = cfg;
    with_layer.faults = FaultPolicy{}; // explicit, still disabled

    const auto a = runner.run(cfg);
    const auto b = runner.run(with_layer);
    ASSERT_EQ(a.run.history.size(), b.run.history.size());
    for (std::size_t i = 0; i < a.run.history.size(); ++i)
        EXPECT_DOUBLE_EQ(a.run.history[i].eMeasured,
                         b.run.history[i].eMeasured);
    EXPECT_DOUBLE_EQ(a.run.finalEstimate, b.run.finalEstimate);
    EXPECT_EQ(a.run.faultsSeen, 0u);
    EXPECT_EQ(b.run.faultsSeen, 0u);
    EXPECT_EQ(b.run.evalsCarriedForward, 0u);
    EXPECT_DOUBLE_EQ(b.run.backoffSeconds, 0.0);
}

TEST(FaultResilience, TimeoutsAreRetriedWithBackoffInSimulatedTime)
{
    const QismetVqe runner = application(2).makeRunner();
    QismetVqeConfig cfg = faultedConfig(Scheme::Baseline, 0.0);
    cfg.faults.timeoutRate = 0.25;
    cfg.faults.burstCoupling = 0.0;

    const auto out = runner.run(cfg);
    EXPECT_GT(out.run.faultsSeen, 0u);
    EXPECT_GT(out.run.faultRetries, 0u);
    EXPECT_GT(out.run.backoffSeconds, 0.0);
    // Simulated time = one slot per job + all backoff waits.
    EXPECT_DOUBLE_EQ(out.run.simTimeSeconds,
                     static_cast<double>(out.run.jobsUsed) * 1.0 +
                         out.run.backoffSeconds);
    // Every timed-out record is marked and never accepted.
    std::size_t timeouts = 0;
    for (const auto &rec : out.run.history)
        if (rec.status == JobStatus::TimedOut) {
            ++timeouts;
            EXPECT_FALSE(rec.accepted);
        }
    EXPECT_GT(timeouts, 0u);
    expectFiniteAndBounded(out);
}

TEST(FaultResilience, ErrorStormDegradesToCarryForwardNotCollapse)
{
    // A fleet that errors most jobs: past the shared retry budget the
    // driver carries the previous estimate forward. The trajectory must
    // stay finite and inside physical bounds.
    const QismetVqe runner = application(2).makeRunner();
    QismetVqeConfig cfg = faultedConfig(Scheme::Qismet, 0.0);
    cfg.faults.errorRate = 0.55;
    cfg.faults.burstCoupling = 0.0;
    cfg.retryBudget = 2;

    const auto out = runner.run(cfg);
    EXPECT_GT(out.run.evalsCarriedForward, 0u);
    expectFiniteAndBounded(out);

    // Carried-forward records are failed jobs at the budget's edge.
    for (const auto &rec : out.run.history)
        if (rec.carriedForward) {
            EXPECT_TRUE(rec.status == JobStatus::TimedOut ||
                        rec.status == JobStatus::Failed);
            EXPECT_GE(rec.retryIndex, 2);
        }
}

TEST(FaultResilience, PartialResultsAreAcceptedWithWidenedBand)
{
    const QismetVqe runner = application(2).makeRunner();
    QismetVqeConfig cfg = faultedConfig(Scheme::Qismet, 0.0);
    cfg.faults.partialRate = 0.5;
    cfg.faults.minShotFraction = 0.3;
    cfg.faults.burstCoupling = 0.0;

    const auto out = runner.run(cfg);
    std::size_t partials = 0;
    for (const auto &rec : out.run.history)
        if (rec.status == JobStatus::PartialResult)
            ++partials;
    EXPECT_GT(partials, 0u);
    EXPECT_GE(out.run.faultsSeen, partials);
    // Partial jobs never fail the run; no carry-forward needed.
    EXPECT_EQ(out.run.evalsCarriedForward, 0u);
    expectFiniteAndBounded(out);
}

TEST(FaultResilience, ReferenceLossFallsBackToMachineEstimate)
{
    // Reference reruns are always lost: QISMET cannot form T_m and must
    // fall back to the widened-band machine-estimate rule. The run
    // completes, stays bounded, and the controller keeps judging.
    const QismetVqe runner = application(2).makeRunner();
    QismetVqeConfig cfg = faultedConfig(Scheme::Qismet, 0.0);
    cfg.faults.referenceLossRate = 1.0;
    cfg.faults.burstCoupling = 0.0;

    const auto out = runner.run(cfg);
    std::size_t ref_lost = 0;
    for (const auto &rec : out.run.history)
        if (rec.status == JobStatus::ReferenceLost)
            ++ref_lost;
    EXPECT_GT(ref_lost, 0u);
    expectFiniteAndBounded(out);
}

TEST(FaultResilience, RetriesNeverExceedSharedBudget)
{
    const QismetVqe runner = application(2).makeRunner();
    for (int budget : {1, 3, 5}) {
        QismetVqeConfig cfg = faultedConfig(Scheme::Qismet, 0.10);
        cfg.retryBudget = budget;
        const auto out = runner.run(cfg);
        for (const auto &rec : out.run.history)
            EXPECT_LE(rec.retryIndex, budget)
                << "evaluation " << rec.evalIndex
                << " exceeded the shared retry budget";
    }
}

TEST(FaultResilience, FaultTrajectoryBitIdenticalAcrossThreadCounts)
{
    // The acceptance criterion: fault schedules and full fault-injected
    // trajectories are byte-identical across --threads=1/2/4/8.
    GlobalThreadsGuard guard;
    const QismetVqe runner = application(2).makeRunner();
    const QismetVqeConfig cfg = faultedConfig(Scheme::Qismet, 0.12);

    std::vector<QismetVqeResult> results;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        ParallelExecutor::setGlobalThreads(threads);
        results.push_back(runner.run(cfg));
    }

    const auto &ref = results.front();
    EXPECT_GT(ref.run.faultsSeen, 0u);
    for (std::size_t r = 1; r < results.size(); ++r) {
        const auto &other = results[r];
        ASSERT_EQ(ref.run.history.size(), other.run.history.size());
        for (std::size_t i = 0; i < ref.run.history.size(); ++i) {
            const auto &ra = ref.run.history[i];
            const auto &rb = other.run.history[i];
            EXPECT_EQ(ra.status, rb.status);
            EXPECT_EQ(ra.accepted, rb.accepted);
            EXPECT_EQ(ra.carriedForward, rb.carriedForward);
            EXPECT_EQ(ra.retryIndex, rb.retryIndex);
            EXPECT_DOUBLE_EQ(ra.eMeasured, rb.eMeasured);
        }
        EXPECT_DOUBLE_EQ(ref.run.finalEstimate, other.run.finalEstimate);
        EXPECT_DOUBLE_EQ(ref.run.simTimeSeconds,
                         other.run.simTimeSeconds);
        EXPECT_EQ(ref.run.faultsSeen, other.run.faultsSeen);
        EXPECT_EQ(ref.run.evalsCarriedForward,
                  other.run.evalsCarriedForward);
    }
}

TEST(FaultResilience, LiveFaultStatusesMatchPrecomputedSchedule)
{
    // The executor's live fault decisions equal the injector's
    // precomputed schedule, job for job.
    const QismetVqe runner = application(2).makeRunner();
    const QismetVqeConfig cfg = faultedConfig(Scheme::Baseline, 0.15, 23);
    const auto out = runner.run(cfg);

    // Rebuild the same injector the experiment constructed internally.
    const FaultInjector injector(
        cfg.faults, cfg.seed * 0xD1342543DE82EF95ull + 0xFA17ull);
    for (const auto &rec : out.run.history) {
        const FaultEvent ev =
            injector.eventFor(rec.jobIndex, rec.transientIntensity);
        switch (ev.kind) {
          case FaultKind::JobTimeout:
            EXPECT_EQ(rec.status, JobStatus::TimedOut);
            break;
          case FaultKind::JobError:
            EXPECT_EQ(rec.status, JobStatus::Failed);
            break;
          case FaultKind::PartialResult:
            EXPECT_EQ(rec.status, JobStatus::PartialResult);
            break;
          case FaultKind::ReferenceLoss:
            // Jobs without a reference rerun complete normally.
            EXPECT_TRUE(rec.status == JobStatus::ReferenceLost ||
                        rec.status == JobStatus::Completed);
            break;
          case FaultKind::None:
            EXPECT_EQ(rec.status, JobStatus::Completed);
            break;
        }
    }
}

TEST(FaultResilience, QismetStillBeatsBaselineUnderFaults)
{
    // The resilience story end to end: at a 10% fault rate QISMET's
    // final estimate error stays comparable to its fault-free self.
    const QismetVqe runner = application(2).makeRunner();

    QismetVqeConfig clean;
    clean.scheme = Scheme::Qismet;
    clean.totalJobs = 400;
    clean.seed = 7;
    const double clean_err =
        std::abs(runner.run(clean).estimateError());

    QismetVqeConfig faulty = clean;
    faulty.faults = mixedFaults(0.10);
    const double fault_err =
        std::abs(runner.run(faulty).estimateError());

    // Bounded degradation (acceptance criterion allows 1.5x on the
    // seed-averaged bench; a single seed gets a little more slack).
    EXPECT_LT(fault_err, 2.0 * clean_err + 0.05);
}

} // namespace
} // namespace qismet
