/**
 * @file
 * ChaosSchedule: deterministic generation, query semantics and digest
 * stability of the fleet-scoped chaos artifact (fault/chaos.hpp).
 */

#include "fault/chaos.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace qismet {
namespace {

ChaosConfig
denseConfig()
{
    ChaosConfig cfg;
    cfg.backends = 3;
    cfg.tenants = 5;
    cfg.horizonTicks = 128;
    cfg.outagesPerBackend = 2.0;
    cfg.slowdownsPerBackend = 2.0;
    cfg.stormsPerBackend = 1.0;
    cfg.floods = 2;
    return cfg;
}

TEST(ChaosConfig, RejectsMalformedFields)
{
    ChaosConfig cfg;
    cfg.backends = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = ChaosConfig{};
    cfg.tenants = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = ChaosConfig{};
    cfg.horizonTicks = 8;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = ChaosConfig{};
    cfg.outagesPerBackend = -1.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ChaosSchedule, GenerationIsPure)
{
    const ChaosConfig cfg = denseConfig();
    const ChaosSchedule a = generateChaosSchedule(cfg, 99);
    const ChaosSchedule b = generateChaosSchedule(cfg, 99);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.digest(), b.digest());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].startTick, b.events()[i].startTick);
        EXPECT_EQ(a.events()[i].endTick, b.events()[i].endTick);
        EXPECT_EQ(a.events()[i].target, b.events()[i].target);
    }
}

TEST(ChaosSchedule, SeedsDecorrelate)
{
    const ChaosConfig cfg = denseConfig();
    EXPECT_NE(generateChaosSchedule(cfg, 1).digest(),
              generateChaosSchedule(cfg, 2).digest());
}

TEST(ChaosSchedule, EventsStayInsideHorizonAndWellFormed)
{
    const ChaosConfig cfg = denseConfig();
    const ChaosSchedule sched = generateChaosSchedule(cfg, 7);
    for (const ChaosEvent &e : sched.events()) {
        EXPECT_LT(e.startTick, e.endTick);
        EXPECT_LE(e.endTick, cfg.horizonTicks);
        EXPECT_GE(e.magnitude, 1.0);
        if (e.kind == ChaosKind::TenantFlood) {
            EXPECT_LT(e.target, cfg.tenants);
            EXPECT_GT(e.count, 0u);
        }
        else {
            EXPECT_LT(e.target, cfg.backends);
        }
    }
    EXPECT_LE(sched.horizon(), cfg.horizonTicks);
}

TEST(ChaosSchedule, OutageQueryMatchesWindows)
{
    std::vector<ChaosEvent> events;
    ChaosEvent outage;
    outage.kind = ChaosKind::BackendOutage;
    outage.target = 1;
    outage.startTick = 10;
    outage.endTick = 20;
    events.push_back(outage);
    const ChaosSchedule sched(std::move(events));

    EXPECT_FALSE(sched.outageAt(1, 9));
    EXPECT_TRUE(sched.outageAt(1, 10));
    EXPECT_TRUE(sched.outageAt(1, 19));
    EXPECT_FALSE(sched.outageAt(1, 20)); // half-open window
    EXPECT_FALSE(sched.outageAt(0, 15)); // other backend unaffected
}

TEST(ChaosSchedule, OverlappingSlowdownsMultiply)
{
    std::vector<ChaosEvent> events;
    ChaosEvent slow;
    slow.kind = ChaosKind::BackendSlowdown;
    slow.target = 0;
    slow.startTick = 0;
    slow.endTick = 30;
    slow.magnitude = 2.0;
    events.push_back(slow);
    slow.startTick = 10;
    slow.endTick = 20;
    slow.magnitude = 3.0;
    events.push_back(slow);
    const ChaosSchedule sched(std::move(events));

    EXPECT_DOUBLE_EQ(sched.slowdownAt(0, 5), 2.0);
    EXPECT_DOUBLE_EQ(sched.slowdownAt(0, 15), 6.0);
    EXPECT_DOUBLE_EQ(sched.slowdownAt(0, 25), 2.0);
    EXPECT_DOUBLE_EQ(sched.slowdownAt(0, 40), 1.0);
    EXPECT_DOUBLE_EQ(sched.slowdownAt(1, 15), 1.0);
}

TEST(ChaosSchedule, StormIndicesAndFloods)
{
    std::vector<ChaosEvent> events;
    ChaosEvent storm;
    storm.kind = ChaosKind::CalibrationStorm;
    storm.target = 2;
    storm.startTick = 5;
    storm.endTick = 6;
    storm.count = 3;
    events.push_back(storm);
    ChaosEvent flood;
    flood.kind = ChaosKind::TenantFlood;
    flood.target = 1;
    flood.startTick = 0;
    flood.endTick = 1;
    flood.count = 7;
    events.push_back(flood);
    const ChaosSchedule sched(std::move(events));

    EXPECT_TRUE(sched.stormsAt(2, 4).empty());
    const std::vector<std::size_t> hits = sched.stormsAt(2, 5);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(sched.events()[hits[0]].count, 3u);

    const std::vector<ChaosEvent> floods = sched.floods();
    ASSERT_EQ(floods.size(), 1u);
    EXPECT_EQ(floods[0].target, 1u);
    EXPECT_EQ(floods[0].count, 7u);
}

TEST(ChaosSchedule, EmptyScheduleIsBenign)
{
    const ChaosSchedule sched;
    EXPECT_EQ(sched.size(), 0u);
    EXPECT_FALSE(sched.outageAt(0, 0));
    EXPECT_DOUBLE_EQ(sched.slowdownAt(0, 0), 1.0);
    EXPECT_TRUE(sched.stormsAt(0, 0).empty());
    EXPECT_EQ(sched.horizon(), 0u);
}

TEST(ChaosSchedule, KindNamesAreStable)
{
    EXPECT_EQ(chaosKindName(ChaosKind::BackendOutage), "backend-outage");
    EXPECT_EQ(chaosKindName(ChaosKind::TenantFlood), "tenant-flood");
}

} // namespace
} // namespace qismet
