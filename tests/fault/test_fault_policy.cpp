/** @file Tests for FaultPolicy / RetryPolicy configuration objects. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/fault_policy.hpp"

namespace qismet {
namespace {

TEST(FaultPolicy, DefaultIsDisabledAndValid)
{
    FaultPolicy policy;
    EXPECT_FALSE(policy.enabled());
    EXPECT_DOUBLE_EQ(policy.totalBaseRate(), 0.0);
    EXPECT_NO_THROW(policy.validate());
}

TEST(FaultPolicy, AnyPositiveRateEnables)
{
    FaultPolicy policy;
    policy.partialRate = 0.01;
    EXPECT_TRUE(policy.enabled());
    EXPECT_DOUBLE_EQ(policy.totalBaseRate(), 0.01);
}

TEST(FaultPolicy, ValidationRejectsBadParameters)
{
    FaultPolicy policy;
    policy.timeoutRate = -0.1;
    EXPECT_THROW(policy.validate(), std::invalid_argument);

    policy = FaultPolicy{};
    policy.errorRate = 1.5;
    EXPECT_THROW(policy.validate(), std::invalid_argument);

    policy = FaultPolicy{};
    policy.burstCoupling = -1.0;
    EXPECT_THROW(policy.validate(), std::invalid_argument);

    policy = FaultPolicy{};
    policy.burstScale = 0.0;
    EXPECT_THROW(policy.validate(), std::invalid_argument);

    policy = FaultPolicy{};
    policy.minShotFraction = 0.0;
    EXPECT_THROW(policy.validate(), std::invalid_argument);

    policy = FaultPolicy{};
    policy.maxFaultProbability = 1.0;
    EXPECT_THROW(policy.validate(), std::invalid_argument);
}

TEST(FaultPolicy, KindNamesAreDistinct)
{
    EXPECT_EQ(faultKindName(FaultKind::None), "none");
    EXPECT_EQ(faultKindName(FaultKind::JobTimeout), "timeout");
    EXPECT_EQ(faultKindName(FaultKind::JobError), "error");
    EXPECT_EQ(faultKindName(FaultKind::PartialResult), "partial");
    EXPECT_EQ(faultKindName(FaultKind::ReferenceLoss), "reference-loss");
}

TEST(RetryPolicy, BackoffIsBoundedExponential)
{
    RetryPolicy retry;
    retry.baseBackoffSeconds = 2.0;
    retry.backoffMultiplier = 2.0;
    retry.maxBackoffSeconds = 10.0;

    EXPECT_DOUBLE_EQ(retry.backoffSecondsFor(0), 2.0);
    EXPECT_DOUBLE_EQ(retry.backoffSecondsFor(1), 4.0);
    EXPECT_DOUBLE_EQ(retry.backoffSecondsFor(2), 8.0);
    // Capped from here on.
    EXPECT_DOUBLE_EQ(retry.backoffSecondsFor(3), 10.0);
    EXPECT_DOUBLE_EQ(retry.backoffSecondsFor(20), 10.0);
}

TEST(RetryPolicy, BackoffIsMonotoneNonDecreasing)
{
    RetryPolicy retry;
    retry.baseBackoffSeconds = 0.5;
    retry.backoffMultiplier = 1.7;
    retry.maxBackoffSeconds = 42.0;
    double prev = 0.0;
    for (int attempt = 0; attempt < 30; ++attempt) {
        const double b = retry.backoffSecondsFor(attempt);
        EXPECT_GE(b, prev);
        EXPECT_LE(b, retry.maxBackoffSeconds);
        prev = b;
    }
}

TEST(RetryPolicy, ValidationRejectsBadParameters)
{
    RetryPolicy retry;
    retry.maxRetries = 0;
    EXPECT_THROW(retry.validate(), std::invalid_argument);

    retry = RetryPolicy{};
    retry.baseBackoffSeconds = -1.0;
    EXPECT_THROW(retry.validate(), std::invalid_argument);

    retry = RetryPolicy{};
    retry.backoffMultiplier = 0.5;
    EXPECT_THROW(retry.validate(), std::invalid_argument);

    retry = RetryPolicy{};
    retry.maxBackoffSeconds = 0.1; // below the 2.0 default base
    EXPECT_THROW(retry.validate(), std::invalid_argument);

    EXPECT_THROW(RetryPolicy{}.backoffSecondsFor(-1),
                 std::invalid_argument);
}

} // namespace
} // namespace qismet
