/** @file Tests for the deterministic fault injector and its schedules. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "common/thread_pool.hpp"
#include "fault/fault_injector.hpp"
#include "noise/transient_trace.hpp"

namespace qismet {
namespace {

FaultPolicy
mixedPolicy()
{
    FaultPolicy policy;
    policy.timeoutRate = 0.04;
    policy.errorRate = 0.02;
    policy.partialRate = 0.03;
    policy.referenceLossRate = 0.03;
    policy.burstCoupling = 1.0;
    return policy;
}

TransientTrace
rampTrace(std::size_t n)
{
    std::vector<double> taus(n);
    for (std::size_t i = 0; i < n; ++i)
        taus[i] = 0.4 * static_cast<double>(i) / static_cast<double>(n);
    return TransientTrace(taus);
}

TEST(FaultInjector, RejectsMalformedPolicy)
{
    FaultPolicy bad;
    bad.timeoutRate = 2.0;
    EXPECT_THROW(FaultInjector(bad, 1), std::invalid_argument);
}

TEST(FaultInjector, EventForIsPureInIndexAndSeed)
{
    const FaultInjector a(mixedPolicy(), 99);
    const FaultInjector b(mixedPolicy(), 99);
    for (std::size_t i = 0; i < 500; ++i) {
        const FaultEvent ea = a.eventFor(i, 0.1);
        // Repeated calls and a twin injector agree exactly.
        EXPECT_TRUE(ea == a.eventFor(i, 0.1));
        EXPECT_TRUE(ea == b.eventFor(i, 0.1));
    }
    // A different seed realizes a different schedule.
    const FaultInjector c(mixedPolicy(), 100);
    std::size_t differing = 0;
    for (std::size_t i = 0; i < 500; ++i)
        if (!(a.eventFor(i, 0.1) == c.eventFor(i, 0.1)))
            ++differing;
    EXPECT_GT(differing, 0u);
}

TEST(FaultInjector, ScheduleMatchesLiveDecisions)
{
    const FaultInjector injector(mixedPolicy(), 7);
    const TransientTrace trace = rampTrace(400);
    const FaultSchedule schedule = injector.schedule(trace, 400);
    ASSERT_EQ(schedule.size(), 400u);
    for (std::size_t i = 0; i < 400; ++i)
        EXPECT_TRUE(schedule.at(i) == injector.eventFor(i, trace.at(i)));
    // Past the end the schedule reads fault-free.
    EXPECT_EQ(schedule.at(400).kind, FaultKind::None);
}

TEST(FaultInjector, ScheduleDigestIdenticalAcrossThreadCounts)
{
    // The schedule derivation itself is serial, but this pins the
    // byte-identity contract end to end: derive the schedule under
    // different global thread counts and compare digests.
    const std::size_t saved = ParallelExecutor::global().threads();
    const TransientTrace trace = rampTrace(300);
    std::vector<std::string> digests;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        ParallelExecutor::setGlobalThreads(threads);
        const FaultInjector injector(mixedPolicy(), 21);
        digests.push_back(injector.schedule(trace, 300).digest());
    }
    ParallelExecutor::setGlobalThreads(saved);
    for (std::size_t i = 1; i < digests.size(); ++i)
        EXPECT_EQ(digests[0], digests[i]);
}

TEST(FaultInjector, RatesApproximatelyHonored)
{
    FaultPolicy policy;
    policy.timeoutRate = 0.10;
    policy.errorRate = 0.05;
    policy.partialRate = 0.05;
    const FaultInjector injector(policy, 3);
    const std::size_t n = 20000;
    const FaultSchedule schedule =
        injector.schedule(TransientTrace{}, n);

    const auto frac = [&](FaultKind kind) {
        return static_cast<double>(schedule.count(kind)) /
               static_cast<double>(n);
    };
    EXPECT_NEAR(frac(FaultKind::JobTimeout), 0.10, 0.01);
    EXPECT_NEAR(frac(FaultKind::JobError), 0.05, 0.01);
    EXPECT_NEAR(frac(FaultKind::PartialResult), 0.05, 0.01);
    EXPECT_DOUBLE_EQ(frac(FaultKind::ReferenceLoss), 0.0);
    EXPECT_NEAR(schedule.faultFraction(), 0.20, 0.02);
}

TEST(FaultInjector, BurstCouplingRaisesFaultOddsAtHighTau)
{
    FaultPolicy policy;
    policy.errorRate = 0.05;
    policy.burstCoupling = 2.0;
    policy.burstScale = 0.3;
    const FaultInjector injector(policy, 11);

    const std::size_t n = 20000;
    std::size_t calm = 0, bursty = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (injector.eventFor(i, 0.0).kind != FaultKind::None)
            ++calm;
        if (injector.eventFor(i, 0.6).kind != FaultKind::None)
            ++bursty;
    }
    // tau = 0.6 with coupling 2 and scale 0.3 => rate x5.
    EXPECT_NEAR(static_cast<double>(calm) / static_cast<double>(n),
                0.05, 0.01);
    EXPECT_NEAR(static_cast<double>(bursty) / static_cast<double>(n),
                0.25, 0.02);
}

TEST(FaultInjector, CombinedProbabilityIsCapped)
{
    FaultPolicy policy;
    policy.timeoutRate = 0.8;
    policy.errorRate = 0.8;
    policy.maxFaultProbability = 0.6;
    const FaultInjector injector(policy, 5);
    const std::size_t n = 20000;
    const FaultSchedule schedule =
        injector.schedule(TransientTrace{}, n);
    EXPECT_NEAR(schedule.faultFraction(), 0.6, 0.02);
    // The cap rescales uniformly, preserving the kind mix.
    EXPECT_NEAR(static_cast<double>(schedule.count(FaultKind::JobTimeout)) /
                    static_cast<double>(n),
                0.3, 0.02);
}

TEST(FaultInjector, PartialFaultsCarryBoundedShotFractions)
{
    FaultPolicy policy;
    policy.partialRate = 1.0; // maxFaultProbability caps this at 0.9
    policy.minShotFraction = 0.4;
    const FaultInjector injector(policy, 13);
    std::size_t partials = 0;
    for (std::size_t i = 0; i < 2000; ++i) {
        const FaultEvent ev = injector.eventFor(i, 0.0);
        if (ev.kind != FaultKind::PartialResult) {
            EXPECT_DOUBLE_EQ(ev.shotFraction, 1.0);
            continue;
        }
        ++partials;
        EXPECT_GE(ev.shotFraction, 0.4);
        EXPECT_LT(ev.shotFraction, 1.0);
    }
    EXPECT_GT(partials, 1000u);
}

TEST(FaultSchedule, DigestDetectsAnyDifference)
{
    std::vector<FaultEvent> events(10);
    const FaultSchedule a{events};
    events[7].kind = FaultKind::JobTimeout;
    const FaultSchedule b{events};
    events[7].kind = FaultKind::None;
    events[7].shotFraction = 0.999;
    const FaultSchedule c{events};

    EXPECT_NE(a.digest(), b.digest());
    EXPECT_NE(a.digest(), c.digest());
    EXPECT_NE(b.digest(), c.digest());
    // Identical schedules digest identically.
    EXPECT_EQ(a.digest(),
              FaultSchedule(std::vector<FaultEvent>(10)).digest());
}

} // namespace
} // namespace qismet
