/** @file Tests for STO-3G Gaussian integrals. */

#include <gtest/gtest.h>

#include <cmath>

#include "chem/sto3g.hpp"

namespace qismet {
namespace {

TEST(Sto3g, SelfOverlapIsOne)
{
    const auto g = sto3gHydrogen(0.0);
    EXPECT_NEAR(overlapIntegral(g, g), 1.0, 1e-12);
}

TEST(Sto3g, OverlapSymmetricAndDecaying)
{
    const auto a = sto3gHydrogen(0.0);
    const auto b = sto3gHydrogen(1.4);
    const auto c = sto3gHydrogen(3.0);
    EXPECT_NEAR(overlapIntegral(a, b), overlapIntegral(b, a), 1e-14);
    EXPECT_GT(overlapIntegral(a, b), overlapIntegral(a, c));
    EXPECT_GT(overlapIntegral(a, b), 0.0);
    EXPECT_LT(overlapIntegral(a, b), 1.0);
}

TEST(Sto3g, SzaboOstlundReferenceValuesAtR14)
{
    // Szabo & Ostlund, Table 3.5-ish values for H2 at R = 1.4 bohr with
    // zeta = 1.24 STO-3G (loose tolerances: different contraction
    // roundings exist in the literature).
    const auto a = sto3gHydrogen(0.0);
    const auto b = sto3gHydrogen(1.4);
    EXPECT_NEAR(overlapIntegral(a, b), 0.6593, 2e-3);
    EXPECT_NEAR(kineticIntegral(a, a), 0.7600, 2e-3);
    EXPECT_NEAR(kineticIntegral(a, b), 0.2365, 2e-3);
    // Attraction of basis function 1 to its own nucleus.
    EXPECT_NEAR(nuclearIntegral(a, a, 0.0, 1.0), -1.2266, 3e-3);
    // (11|11) two-electron integral.
    EXPECT_NEAR(eriIntegral(a, a, a, a), 0.7746, 2e-3);
}

TEST(Sto3g, KineticPositiveDiagonal)
{
    const auto g = sto3gHydrogen(0.5);
    EXPECT_GT(kineticIntegral(g, g), 0.0);
}

TEST(Sto3g, NuclearAttractionNegative)
{
    const auto g = sto3gHydrogen(0.0);
    EXPECT_LT(nuclearIntegral(g, g, 0.0, 1.0), 0.0);
    // Farther nucleus binds less strongly.
    EXPECT_LT(std::abs(nuclearIntegral(g, g, 5.0, 1.0)),
              std::abs(nuclearIntegral(g, g, 0.0, 1.0)));
}

TEST(Sto3g, NuclearScalesWithCharge)
{
    const auto g = sto3gHydrogen(0.0);
    EXPECT_NEAR(nuclearIntegral(g, g, 0.7, 2.0),
                2.0 * nuclearIntegral(g, g, 0.7, 1.0), 1e-12);
}

TEST(Sto3g, EriPermutationSymmetry)
{
    const auto a = sto3gHydrogen(0.0);
    const auto b = sto3gHydrogen(1.4);
    const double abab = eriIntegral(a, b, a, b);
    EXPECT_NEAR(abab, eriIntegral(b, a, a, b), 1e-12);
    EXPECT_NEAR(abab, eriIntegral(a, b, b, a), 1e-12);
    const double aabb = eriIntegral(a, a, b, b);
    EXPECT_NEAR(aabb, eriIntegral(b, b, a, a), 1e-12);
}

TEST(Sto3g, EriPositive)
{
    const auto a = sto3gHydrogen(0.0);
    const auto b = sto3gHydrogen(1.4);
    EXPECT_GT(eriIntegral(a, a, b, b), 0.0);
    EXPECT_GT(eriIntegral(a, b, a, b), 0.0);
}

} // namespace
} // namespace qismet
