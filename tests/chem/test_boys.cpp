/** @file Tests for the Boys function. */

#include <gtest/gtest.h>

#include <cmath>

#include "chem/boys.hpp"

namespace qismet {
namespace {

TEST(Boys, ValueAtZero)
{
    EXPECT_DOUBLE_EQ(boysF0(0.0), 1.0);
}

TEST(Boys, KnownValues)
{
    // F0(t) = (1/2) sqrt(pi/t) erf(sqrt(t)).
    EXPECT_NEAR(boysF0(1.0), 0.7468241328, 1e-9);
    EXPECT_NEAR(boysF0(0.5), 0.8556243919, 1e-9);
    EXPECT_NEAR(boysF0(10.0),
                0.5 * std::sqrt(M_PI / 10.0) * std::erf(std::sqrt(10.0)),
                1e-12);
}

TEST(Boys, ContinuousAcrossSeriesSwitch)
{
    // The Taylor branch and the closed form must agree near the switch.
    const double lo = boysF0(0.99e-8);
    const double hi = boysF0(1.01e-8);
    // The two points differ by ~dt/3 ≈ 7e-11 in exact arithmetic; the
    // branches must agree at that scale.
    EXPECT_NEAR(lo, hi, 1e-10);
}

TEST(Boys, MonotonicallyDecreasing)
{
    double prev = boysF0(0.0);
    for (double t = 0.1; t < 30.0; t += 0.3) {
        const double v = boysF0(t);
        EXPECT_LT(v, prev);
        EXPECT_GT(v, 0.0);
        prev = v;
    }
}

} // namespace
} // namespace qismet
