/** @file Tests for the Pauli algebra and Jordan-Wigner transform. */

#include <gtest/gtest.h>

#include <cmath>

#include "chem/jordan_wigner.hpp"
#include "hamiltonian/exact_solver.hpp"

namespace qismet {
namespace {

TEST(MulPauliOp, FullMultiplicationTable)
{
    const Complex one(1, 0), i(0, 1);
    struct Case
    {
        PauliOp a, b, expect_op;
        Complex expect_phase;
    };
    const Case cases[] = {
        {PauliOp::I, PauliOp::X, PauliOp::X, one},
        {PauliOp::X, PauliOp::I, PauliOp::X, one},
        {PauliOp::X, PauliOp::X, PauliOp::I, one},
        {PauliOp::Y, PauliOp::Y, PauliOp::I, one},
        {PauliOp::Z, PauliOp::Z, PauliOp::I, one},
        {PauliOp::X, PauliOp::Y, PauliOp::Z, i},
        {PauliOp::Y, PauliOp::X, PauliOp::Z, -i},
        {PauliOp::Y, PauliOp::Z, PauliOp::X, i},
        {PauliOp::Z, PauliOp::Y, PauliOp::X, -i},
        {PauliOp::Z, PauliOp::X, PauliOp::Y, i},
        {PauliOp::X, PauliOp::Z, PauliOp::Y, -i},
    };
    for (const auto &c : cases) {
        const auto [phase, op] = mulPauliOp(c.a, c.b);
        EXPECT_EQ(op, c.expect_op);
        EXPECT_NEAR(std::abs(phase - c.expect_phase), 0.0, 1e-14);
    }
}

TEST(MulPauliString, MatchesDenseProduct)
{
    const auto a = PauliString::fromLabel("XYZ");
    const auto b = PauliString::fromLabel("ZZY");
    const auto [phase, prod] = mulPauliString(a, b);
    const Matrix dense = a.toMatrix() * b.toMatrix();
    const Matrix reconstructed = prod.toMatrix() * phase;
    EXPECT_NEAR(dense.maxAbsDiff(reconstructed), 0.0, 1e-12);
}

TEST(PauliPolynomial, SimplifyMerges)
{
    PauliPolynomial p(2);
    p.add(Complex(1, 0), PauliString::fromLabel("XZ"));
    p.add(Complex(2, 1), PauliString::fromLabel("XZ"));
    p.add(Complex(0, 0), PauliString::fromLabel("YY"));
    p.simplify();
    ASSERT_EQ(p.terms().size(), 1u);
    EXPECT_NEAR(std::abs(p.terms()[0].first - Complex(3, 1)), 0.0, 1e-14);
}

TEST(PauliPolynomial, ToRealSumRejectsComplex)
{
    PauliPolynomial p(1);
    p.add(Complex(0, 1), PauliString::fromLabel("X"));
    EXPECT_THROW(p.toRealSum(), std::runtime_error);
}

TEST(JordanWigner, AnnihilatorSquaresToZero)
{
    const auto a0 = jwAnnihilation(0, 3);
    auto sq = a0 * a0;
    sq.simplify();
    EXPECT_TRUE(sq.terms().empty());
}

TEST(JordanWigner, CanonicalAnticommutators)
{
    // {a_p, a†_q} = δ_pq for all p, q on 3 modes.
    for (int p = 0; p < 3; ++p) {
        for (int q = 0; q < 3; ++q) {
            const auto ap = jwAnnihilation(p, 3);
            const auto aqd = jwCreation(q, 3);
            auto anti = (ap * aqd) + (aqd * ap);
            anti.simplify();
            if (p == q) {
                ASSERT_EQ(anti.terms().size(), 1u);
                EXPECT_TRUE(anti.terms()[0].second.isIdentity());
                EXPECT_NEAR(std::abs(anti.terms()[0].first - Complex(1, 0)),
                            0.0, 1e-12);
            } else {
                EXPECT_TRUE(anti.terms().empty())
                    << "p=" << p << " q=" << q;
            }
        }
    }
}

TEST(JordanWigner, NumberOperatorForm)
{
    // a†_0 a_0 = (I - Z_0) / 2.
    auto n0 = jwCreation(0, 2) * jwAnnihilation(0, 2);
    n0.simplify();
    const PauliSum sum = n0.toRealSum();
    ASSERT_EQ(sum.numTerms(), 2u);
    EXPECT_NEAR(sum.identityCoefficient(), 0.5, 1e-14);
}

TEST(JordanWigner, OneBodyHoppingSpectrum)
{
    // H = a†_0 a_1 + a†_1 a_0 has single-particle eigenvalues ±1, so the
    // full Fock spectrum is {-1, 0, 0, 1}.
    MolecularHamiltonian mol;
    mol.oneBody = {{0.0, 1.0}, {1.0, 0.0}};
    const PauliSum h = jordanWigner(mol);
    const auto sol = solveExact(h);
    EXPECT_NEAR(sol.spectrum[0], -1.0, 1e-10);
    EXPECT_NEAR(sol.spectrum[1], 0.0, 1e-10);
    EXPECT_NEAR(sol.spectrum[2], 0.0, 1e-10);
    EXPECT_NEAR(sol.spectrum[3], 1.0, 1e-10);
}

TEST(JordanWigner, ConstantTermCarriesThrough)
{
    MolecularHamiltonian mol;
    mol.constant = 2.5;
    mol.oneBody = {{0.0}};
    const PauliSum h = jordanWigner(mol);
    EXPECT_NEAR(h.identityCoefficient(), 2.5, 1e-12);
}

TEST(JordanWigner, TwoBodyInteractionEnergy)
{
    // H = n_0 n_1 via <01|01> physicist integrals: the |11> state has
    // energy 1, all other occupations 0.
    MolecularHamiltonian mol;
    mol.oneBody = {{0.0, 0.0}, {0.0, 0.0}};
    mol.twoBody.assign(
        2, std::vector<std::vector<std::vector<double>>>(
               2, std::vector<std::vector<double>>(
                      2, std::vector<double>(2, 0.0))));
    // (1/2)[ <01|01> a†0 a†1 a1 a0 + <10|10> a†1 a†0 a0 a1 ] = n0 n1.
    mol.twoBody[0][1][0][1] = 1.0;
    mol.twoBody[1][0][1][0] = 1.0;

    const PauliSum h = jordanWigner(mol);
    const auto sol = solveExact(h);
    EXPECT_NEAR(sol.spectrum[0], 0.0, 1e-10);
    EXPECT_NEAR(sol.spectrum[3], 1.0, 1e-10);
}

TEST(JordanWigner, EmptyHamiltonianRejected)
{
    MolecularHamiltonian mol;
    EXPECT_THROW(jordanWigner(mol), std::invalid_argument);
}

} // namespace
} // namespace qismet
