/** @file Tests for the circuit IR: building, binding, composing, inverse. */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace qismet {
namespace {

TEST(Circuit, ConstructionValidation)
{
    EXPECT_THROW(Circuit(0), std::invalid_argument);
    EXPECT_THROW(Circuit(-1), std::invalid_argument);
    EXPECT_THROW(Circuit(2, -1), std::invalid_argument);
    Circuit c(3, 2);
    EXPECT_EQ(c.numQubits(), 3);
    EXPECT_EQ(c.numParams(), 2);
    EXPECT_EQ(c.size(), 0u);
}

TEST(Circuit, FluentBuilding)
{
    Circuit c(2);
    c.h(0).cx(0, 1).rz(1, 0.5);
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.gates()[0].type, GateType::H);
    EXPECT_EQ(c.gates()[1].type, GateType::CX);
    EXPECT_DOUBLE_EQ(c.gates()[2].angle, 0.5);
}

TEST(Circuit, QubitRangeChecked)
{
    Circuit c(2);
    EXPECT_THROW(c.h(2), std::out_of_range);
    EXPECT_THROW(c.h(-1), std::out_of_range);
    EXPECT_THROW(c.cx(0, 2), std::out_of_range);
}

TEST(Circuit, TwoQubitGatesRejectEqualQubits)
{
    Circuit c(2);
    EXPECT_THROW(c.cx(1, 1), std::invalid_argument);
    EXPECT_THROW(c.cz(0, 0), std::invalid_argument);
    EXPECT_THROW(c.swap(1, 1), std::invalid_argument);
}

TEST(Circuit, ParameterIndexChecked)
{
    Circuit c(2, 2);
    c.ryParam(0, 0).ryParam(1, 1);
    EXPECT_THROW(c.ryParam(0, 2), std::out_of_range);
}

TEST(Circuit, OnlyRotationsParameterizable)
{
    Circuit c(2, 1);
    Gate g;
    g.type = GateType::H;
    g.qubits = {0, 0};
    g.paramIndex = 0;
    EXPECT_THROW(c.append(g), std::invalid_argument);
}

TEST(Circuit, BindResolvesAngles)
{
    Circuit c(1, 2);
    c.rxParam(0, 0, 2.0, 0.1).rzParam(0, 1);
    const Circuit bound = c.bind({0.5, -1.0});
    EXPECT_EQ(bound.numParams(), 0);
    EXPECT_DOUBLE_EQ(bound.gates()[0].angle, 1.1);
    EXPECT_DOUBLE_EQ(bound.gates()[1].angle, -1.0);
    EXPECT_FALSE(bound.gates()[0].isParameterized());
}

TEST(Circuit, BindChecksCount)
{
    Circuit c(1, 2);
    EXPECT_THROW(c.bind({1.0}), std::invalid_argument);
    EXPECT_THROW(c.bind({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Circuit, ComposeShiftsParameters)
{
    Circuit a(2, 1);
    a.ryParam(0, 0);
    Circuit b(2, 1);
    b.ryParam(1, 0);

    Circuit all(2, 2);
    all.compose(a, 0).compose(b, 1);
    EXPECT_EQ(all.size(), 2u);
    EXPECT_EQ(all.gates()[0].paramIndex, 0);
    EXPECT_EQ(all.gates()[1].paramIndex, 1);
}

TEST(Circuit, ComposeRejectsWidthMismatch)
{
    Circuit a(2), b(3);
    EXPECT_THROW(a.compose(b), std::invalid_argument);
}

TEST(Circuit, InverseRequiresBound)
{
    Circuit c(1, 1);
    c.ryParam(0, 0);
    EXPECT_THROW(c.inverse(), std::logic_error);
}

TEST(Circuit, InverseUndoesRandomCircuit)
{
    Rng rng(101);
    Circuit c(3);
    // Random circuit touching all gate kinds with inverses.
    c.h(0).s(1).t(2).sx(0).cx(0, 1).cz(1, 2).swap(0, 2);
    c.rx(0, 0.3).ry(1, -1.2).rz(2, 2.2).x(0).y(1).z(2).sdg(0).tdg(1);

    Statevector st(3);
    // Start from a random product state so identity is non-trivial.
    for (int q = 0; q < 3; ++q) {
        st.apply1q(q, Gate{GateType::RY, {q, 0},
                           rng.uniform(-3.0, 3.0)}.matrix());
    }
    Statevector reference = st;

    st.run(c);
    st.run(c.inverse());
    EXPECT_NEAR(st.fidelity(reference), 1.0, 1e-10);
}

TEST(Circuit, ToStringContainsGates)
{
    Circuit c(2, 1);
    c.h(0).cx(0, 1).ryParam(1, 0);
    const std::string s = c.toString();
    EXPECT_NE(s.find("h q0"), std::string::npos);
    EXPECT_NE(s.find("cx q0, q1"), std::string::npos);
    EXPECT_NE(s.find("theta[0]"), std::string::npos);
}

TEST(Circuit, BindPreservesSemantics)
{
    // Running a parameterized circuit with params == running the bound
    // circuit without params.
    Rng rng(7);
    Circuit c(2, 3);
    c.ryParam(0, 0).rzParam(1, 1).cx(0, 1).rxParam(0, 2, -1.0, 0.25);
    const std::vector<double> theta = {0.4, -0.9, 1.7};

    Statevector a(2), b(2);
    a.run(c, theta);
    b.run(c.bind(theta));
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
}

} // namespace
} // namespace qismet
