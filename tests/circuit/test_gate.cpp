/** @file Tests for the gate set: arity, names, matrices, parameters. */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/gate.hpp"

namespace qismet {
namespace {

const GateType kAllGates[] = {
    GateType::I,  GateType::H,   GateType::X,  GateType::Y,  GateType::Z,
    GateType::S,  GateType::Sdg, GateType::T,  GateType::Tdg,
    GateType::SX, GateType::RX,  GateType::RY, GateType::RZ,
    GateType::CX, GateType::CZ,  GateType::SWAP};

TEST(Gate, ArityMatchesKind)
{
    EXPECT_EQ(gateArity(GateType::H), 1);
    EXPECT_EQ(gateArity(GateType::RZ), 1);
    EXPECT_EQ(gateArity(GateType::CX), 2);
    EXPECT_EQ(gateArity(GateType::CZ), 2);
    EXPECT_EQ(gateArity(GateType::SWAP), 2);
}

TEST(Gate, NamesAreUnique)
{
    std::set<std::string> names;
    for (GateType g : kAllGates)
        names.insert(gateName(g));
    EXPECT_EQ(names.size(), std::size(kAllGates));
}

TEST(Gate, IsRotation)
{
    EXPECT_TRUE(isRotation(GateType::RX));
    EXPECT_TRUE(isRotation(GateType::RY));
    EXPECT_TRUE(isRotation(GateType::RZ));
    EXPECT_FALSE(isRotation(GateType::H));
    EXPECT_FALSE(isRotation(GateType::CX));
}

class GateUnitaryTest : public ::testing::TestWithParam<GateType>
{
};

TEST_P(GateUnitaryTest, MatrixIsUnitary)
{
    Gate g;
    g.type = GetParam();
    g.qubits = {0, 1};
    g.angle = 0.731; // arbitrary non-trivial angle for rotations
    const Matrix u = g.matrix();
    EXPECT_EQ(u.rows(), gateArity(g.type) == 1 ? 2u : 4u);
    EXPECT_TRUE(u.isUnitary(1e-12)) << gateName(g.type);
}

INSTANTIATE_TEST_SUITE_P(AllGates, GateUnitaryTest,
                         ::testing::ValuesIn(kAllGates));

TEST(Gate, RotationIdentityAtZeroAngle)
{
    for (GateType t : {GateType::RX, GateType::RY, GateType::RZ}) {
        Gate g;
        g.type = t;
        g.angle = 0.0;
        EXPECT_NEAR(g.matrix().maxAbsDiff(Matrix::identity(2)), 0.0, 1e-14);
    }
}

TEST(Gate, RxPiEqualsXUpToPhase)
{
    Gate g;
    g.type = GateType::RX;
    g.angle = M_PI;
    // RX(pi) = -i X.
    Matrix x = Matrix::fromRows({{0, 1}, {1, 0}});
    EXPECT_NEAR((g.matrix() * Complex(0, 1)).maxAbsDiff(x), 0.0, 1e-14);
}

TEST(Gate, SSquaredIsZ)
{
    Gate s;
    s.type = GateType::S;
    Matrix z = Matrix::fromRows({{1, 0}, {0, -1}});
    EXPECT_NEAR((s.matrix() * s.matrix()).maxAbsDiff(z), 0.0, 1e-14);
}

TEST(Gate, SxSquaredIsX)
{
    Gate sx;
    sx.type = GateType::SX;
    Matrix x = Matrix::fromRows({{0, 1}, {1, 0}});
    EXPECT_NEAR((sx.matrix() * sx.matrix()).maxAbsDiff(x), 0.0, 1e-13);
}

TEST(Gate, HadamardConjugatesXToZ)
{
    Gate h;
    h.type = GateType::H;
    Matrix x = Matrix::fromRows({{0, 1}, {1, 0}});
    Matrix z = Matrix::fromRows({{1, 0}, {0, -1}});
    EXPECT_NEAR((h.matrix() * x * h.matrix()).maxAbsDiff(z), 0.0, 1e-14);
}

TEST(Gate, ResolvedAngleBound)
{
    Gate g;
    g.type = GateType::RY;
    g.angle = 1.25;
    EXPECT_DOUBLE_EQ(g.resolvedAngle({}), 1.25);
}

TEST(Gate, ResolvedAngleParameterized)
{
    Gate g;
    g.type = GateType::RY;
    g.paramIndex = 1;
    g.paramScale = 2.0;
    g.angle = 0.5;
    EXPECT_DOUBLE_EQ(g.resolvedAngle({9.0, 3.0}), 6.5);
}

TEST(Gate, ResolvedAngleOutOfRangeThrows)
{
    Gate g;
    g.type = GateType::RX;
    g.paramIndex = 5;
    EXPECT_THROW(g.resolvedAngle({1.0}), std::out_of_range);
}

TEST(Gate, CxMapsBasisCorrectly)
{
    Gate g;
    g.type = GateType::CX;
    const Matrix u = g.matrix();
    // Local index: bit1 = control, bit0 = target. |10> -> |11>.
    EXPECT_DOUBLE_EQ(u(3, 2).real(), 1.0);
    EXPECT_DOUBLE_EQ(u(2, 3).real(), 1.0);
    EXPECT_DOUBLE_EQ(u(0, 0).real(), 1.0);
    EXPECT_DOUBLE_EQ(u(1, 1).real(), 1.0);
}

class RotationPeriodicityTest
    : public ::testing::TestWithParam<std::tuple<GateType, double>>
{
};

TEST_P(RotationPeriodicityTest, FourPiPeriodic)
{
    const auto [type, angle] = GetParam();
    Gate a, b;
    a.type = b.type = type;
    a.angle = angle;
    b.angle = angle + 4.0 * M_PI;
    EXPECT_NEAR(a.matrix().maxAbsDiff(b.matrix()), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Angles, RotationPeriodicityTest,
    ::testing::Combine(::testing::Values(GateType::RX, GateType::RY,
                                         GateType::RZ),
                       ::testing::Values(0.0, 0.7, -2.1, 3.14)));

} // namespace
} // namespace qismet
