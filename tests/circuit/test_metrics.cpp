/** @file Tests for circuit structural metrics. */

#include <gtest/gtest.h>

#include "circuit/metrics.hpp"

namespace qismet {
namespace {

TEST(Metrics, CountsGateKinds)
{
    Circuit c(3);
    c.h(0).h(1).cx(0, 1).cx(1, 2).rz(2, 0.1);
    const CircuitMetrics m = computeMetrics(c);
    EXPECT_EQ(m.numQubits, 3);
    EXPECT_EQ(m.totalGates, 5);
    EXPECT_EQ(m.oneQubitGates, 3);
    EXPECT_EQ(m.twoQubitGates, 2);
}

TEST(Metrics, DepthOfSerialChain)
{
    Circuit c(1);
    c.h(0).x(0).z(0);
    EXPECT_EQ(computeMetrics(c).depth, 3);
}

TEST(Metrics, DepthOfParallelGates)
{
    Circuit c(3);
    c.h(0).h(1).h(2); // all parallel
    EXPECT_EQ(computeMetrics(c).depth, 1);
}

TEST(Metrics, CxDepthChains)
{
    Circuit c(3);
    c.cx(0, 1).cx(1, 2).cx(0, 1);
    const CircuitMetrics m = computeMetrics(c);
    EXPECT_EQ(m.cxDepth, 3);
    EXPECT_EQ(m.twoQubitGates, 3);
}

TEST(Metrics, CxDepthIgnoresOneQubitGates)
{
    Circuit c(2);
    c.h(0).h(0).h(0).cx(0, 1);
    EXPECT_EQ(computeMetrics(c).cxDepth, 1);
    EXPECT_EQ(computeMetrics(c).depth, 4);
}

TEST(Duration, SerialVsParallel)
{
    Circuit serial(1);
    serial.h(0).h(0);
    EXPECT_DOUBLE_EQ(estimateDurationNs(serial, 35.0, 300.0), 70.0);

    Circuit parallel(2);
    parallel.h(0).h(1);
    EXPECT_DOUBLE_EQ(estimateDurationNs(parallel, 35.0, 300.0), 35.0);
}

TEST(Duration, TwoQubitGateDominates)
{
    Circuit c(2);
    c.h(0).cx(0, 1);
    // h at [0, 35), cx waits for qubit 0: starts at 35, ends 335.
    EXPECT_DOUBLE_EQ(estimateDurationNs(c, 35.0, 300.0), 335.0);
}

TEST(Duration, IndependentChainsOverlap)
{
    Circuit c(4);
    c.cx(0, 1).cx(2, 3); // disjoint: run in parallel
    EXPECT_DOUBLE_EQ(estimateDurationNs(c, 35.0, 300.0), 300.0);
}

TEST(Metrics, DeeperAnsatzMeansMoreCx)
{
    // Sanity of the paper's Section 3.2 premise as encoded here.
    Circuit shallow(4);
    shallow.cx(0, 1).cx(1, 2).cx(2, 3);
    Circuit deep(4);
    for (int rep = 0; rep < 4; ++rep)
        deep.cx(0, 1).cx(1, 2).cx(2, 3);
    EXPECT_GT(computeMetrics(deep).twoQubitGates,
              computeMetrics(shallow).twoQubitGates);
    EXPECT_GT(estimateDurationNs(deep), estimateDurationNs(shallow));
}

} // namespace
} // namespace qismet
