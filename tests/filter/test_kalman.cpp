/** @file Tests for the scalar Kalman filter. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "filter/kalman.hpp"

namespace qismet {
namespace {

TEST(Kalman, Validation)
{
    KalmanParams p;
    p.measurementVariance = 0.0;
    EXPECT_THROW(KalmanFilter1D{p}, std::invalid_argument);
    p = {};
    p.processVariance = -1.0;
    EXPECT_THROW(KalmanFilter1D{p}, std::invalid_argument);
    p = {};
    p.initialVariance = 0.0;
    EXPECT_THROW(KalmanFilter1D{p}, std::invalid_argument);
}

TEST(Kalman, FirstMeasurementInitializes)
{
    KalmanFilter1D f(KalmanParams{});
    EXPECT_DOUBLE_EQ(f.update(3.5), 3.5);
    EXPECT_DOUBLE_EQ(f.estimate(), 3.5);
}

TEST(Kalman, ConvergesToConstantSignal)
{
    KalmanParams p;
    p.transition = 1.0;
    p.measurementVariance = 0.25;
    p.processVariance = 1e-6;
    KalmanFilter1D f(p);
    Rng rng(3);
    double est = 0.0;
    for (int i = 0; i < 3000; ++i)
        est = f.update(-2.0 + rng.normal(0.0, 0.5));
    EXPECT_NEAR(est, -2.0, 0.1);
    // Covariance shrinks far below the measurement variance.
    EXPECT_LT(f.covariance(), 0.05);
}

TEST(Kalman, HighMvIgnoresMeasurements)
{
    // High measurement variance: the filter barely reacts (the paper's
    // "saturates quickly and poorly" regime).
    KalmanParams p;
    p.measurementVariance = 100.0;
    p.processVariance = 1e-6;
    KalmanFilter1D f(p);
    f.update(0.0);
    const double est = f.update(10.0);
    EXPECT_LT(std::abs(est), 1.0);
    EXPECT_LT(f.lastGain(), 0.05);
}

TEST(Kalman, LowMvChasesMeasurements)
{
    // Low measurement variance: spikes leak straight through (the
    // paper's pink-line regime).
    KalmanParams p;
    p.measurementVariance = 1e-4;
    p.processVariance = 0.01;
    KalmanFilter1D f(p);
    f.update(0.0);
    const double est = f.update(10.0);
    EXPECT_GT(est, 9.0);
    EXPECT_GT(f.lastGain(), 0.95);
}

TEST(Kalman, TransitionBelowOneImposesDecay)
{
    // T < 1 forces the prediction toward zero each step — helpful on a
    // true descent, harmful otherwise (paper Section 7.4).
    KalmanParams p;
    p.transition = 0.9;
    p.measurementVariance = 100.0; // ignore measurements
    p.processVariance = 0.0;
    KalmanFilter1D f(p);
    f.update(1.0);
    double est = 1.0;
    for (int i = 0; i < 10; ++i)
        est = f.update(1.0);
    EXPECT_LT(est, 1.0);
    EXPECT_GT(est, std::pow(0.9, 10) * 0.5);
}

TEST(Kalman, ResetForgetsState)
{
    KalmanFilter1D f(KalmanParams{});
    f.update(5.0);
    f.reset();
    EXPECT_DOUBLE_EQ(f.estimate(), 0.0);
    EXPECT_DOUBLE_EQ(f.update(-1.0), -1.0);
}

TEST(Kalman, TracksSlowRamp)
{
    KalmanParams p;
    p.measurementVariance = 0.05;
    p.processVariance = 0.01;
    KalmanFilter1D f(p);
    Rng rng(7);
    double est = 0.0;
    for (int i = 0; i < 500; ++i) {
        const double truth = -0.01 * i;
        est = f.update(truth + rng.normal(0.0, 0.2));
    }
    EXPECT_NEAR(est, -5.0, 0.5);
}

} // namespace
} // namespace qismet
