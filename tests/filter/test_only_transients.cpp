/** @file Tests for the only-transients skip rule. */

#include <gtest/gtest.h>

#include "filter/only_transients.hpp"

namespace qismet {
namespace {

TEST(OnlyTransients, Validation)
{
    EXPECT_THROW(OnlyTransientsSkipper(-0.1, 5), std::invalid_argument);
    EXPECT_THROW(OnlyTransientsSkipper(0.1, 0), std::invalid_argument);
}

TEST(OnlyTransients, SkipsAboveThreshold)
{
    OnlyTransientsSkipper s(0.5, 5);
    EXPECT_TRUE(s.shouldSkip(0.6, 0));
    EXPECT_TRUE(s.shouldSkip(-0.6, 0)); // magnitude, not sign
    EXPECT_FALSE(s.shouldSkip(0.4, 0));
    EXPECT_FALSE(s.shouldSkip(-0.4, 0));
}

TEST(OnlyTransients, BudgetExhaustionAccepts)
{
    OnlyTransientsSkipper s(0.5, 3);
    EXPECT_TRUE(s.shouldSkip(1.0, 0));
    EXPECT_TRUE(s.shouldSkip(1.0, 2));
    EXPECT_FALSE(s.shouldSkip(1.0, 3));
    EXPECT_FALSE(s.shouldSkip(1.0, 10));
}

TEST(OnlyTransients, BoundaryIsInclusiveAccept)
{
    OnlyTransientsSkipper s(0.5, 5);
    EXPECT_FALSE(s.shouldSkip(0.5, 0)); // exactly at threshold: accept
}

TEST(OnlyTransients, Accessors)
{
    OnlyTransientsSkipper s(0.25, 4);
    EXPECT_DOUBLE_EQ(s.threshold(), 0.25);
    EXPECT_EQ(s.retryBudget(), 4);
}

} // namespace
} // namespace qismet
