/** @file Tests for the CA-CFAR detector. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "filter/cfar.hpp"

namespace qismet {
namespace {

TEST(Cfar, Validation)
{
    CfarParams p;
    p.trainingCells = 0;
    EXPECT_THROW(CfarDetector{p}, std::invalid_argument);
    p = {};
    p.thresholdFactor = 0.0;
    EXPECT_THROW(CfarDetector{p}, std::invalid_argument);
}

TEST(Cfar, NoFlagsOnConstantSeries)
{
    CfarDetector det(CfarParams{});
    const auto flags = det.detect(std::vector<double>(50, 1.0));
    for (bool f : flags)
        EXPECT_FALSE(f);
}

TEST(Cfar, DetectsInjectedSpike)
{
    Rng rng(3);
    std::vector<double> xs(100);
    for (auto &x : xs)
        x = rng.normal(0.0, 0.1);
    xs[50] = 5.0;

    CfarDetector det(CfarParams{});
    const auto flags = det.detect(xs);
    EXPECT_TRUE(flags[50]);
    int total = 0;
    for (bool f : flags)
        total += f ? 1 : 0;
    EXPECT_LT(total, 8); // few false alarms
}

TEST(Cfar, GuardCellsProtectWideSpikes)
{
    Rng rng(5);
    std::vector<double> xs(100);
    for (auto &x : xs)
        x = rng.normal(0.0, 0.1);
    // A 3-sample-wide event.
    xs[40] = xs[41] = xs[42] = 4.0;

    CfarParams p;
    p.guardCells = 3;
    CfarDetector det(p);
    const auto flags = det.detect(xs);
    EXPECT_TRUE(flags[41]);
}

TEST(Cfar, StreamingMatchesSpikeDetection)
{
    Rng rng(7);
    CfarDetector det(CfarParams{});
    bool flagged = false;
    for (int i = 0; i < 60; ++i) {
        const double x = (i == 45) ? 8.0 : rng.normal(0.0, 0.1);
        if (det.push(x) && i == 45)
            flagged = true;
    }
    EXPECT_TRUE(flagged);
}

TEST(Cfar, StreamingEarlySamplesNeverFlag)
{
    CfarDetector det(CfarParams{});
    EXPECT_FALSE(det.push(100.0));
    EXPECT_FALSE(det.push(-100.0));
}

TEST(Cfar, ResetClearsWindow)
{
    CfarDetector det(CfarParams{});
    for (int i = 0; i < 30; ++i)
        det.push(1.0);
    det.reset();
    EXPECT_FALSE(det.push(100.0)); // no context after reset
}

} // namespace
} // namespace qismet
