/** @file Tests for the simulated machine registry. */

#include <gtest/gtest.h>

#include "noise/machine_model.hpp"

namespace qismet {
namespace {

TEST(MachineModel, AllRegisteredNamesResolve)
{
    for (const auto &name : machineNames()) {
        const MachineModel m = machineModel(name);
        EXPECT_EQ(m.name, name);
        EXPECT_GE(m.numQubits, 7);
        EXPECT_NO_THROW(m.staticModel());
    }
}

TEST(MachineModel, CaseInsensitiveLookup)
{
    EXPECT_EQ(machineModel("Guadalupe").name, "guadalupe");
    EXPECT_EQ(machineModel("TORONTO").name, "toronto");
}

TEST(MachineModel, UnknownNameThrows)
{
    EXPECT_THROW(machineModel("almaden"), std::invalid_argument);
    EXPECT_THROW(machineModel(""), std::invalid_argument);
}

TEST(MachineModel, SevenQubitMachinesAreNoisier)
{
    // Paper-era reality: the small 7q devices (casablanca, jakarta) had
    // worse gate errors than the 27q Falcons.
    const double casablanca = machineModel("casablanca").staticNoise.p2q;
    const double jakarta = machineModel("jakarta").staticNoise.p2q;
    for (const auto &big : {"toronto", "guadalupe", "mumbai", "cairo",
                            "sydney"}) {
        EXPECT_LT(machineModel(big).staticNoise.p2q, casablanca);
        EXPECT_LT(machineModel(big).staticNoise.p2q, jakarta);
    }
}

TEST(MachineModel, TransientPersonalities)
{
    // Sydney: rare but large events (Fig. 12). Jakarta: frequent spikes
    // (Fig. 5).
    const MachineModel sydney = machineModel("sydney");
    const MachineModel jakarta = machineModel("jakarta");
    EXPECT_LT(sydney.transient.burst.ratePerStep,
              jakarta.transient.burst.ratePerStep);
    EXPECT_GT(sydney.transient.burst.magnitudeMedian,
              machineModel("toronto").transient.burst.magnitudeMedian);
}

TEST(MachineModel, TraceGeneratorDeterministicPerVersion)
{
    const MachineModel m = machineModel("guadalupe");
    auto t1a = m.traceGenerator(1).generate(200);
    auto t1b = m.traceGenerator(1).generate(200);
    for (std::size_t i = 0; i < t1a.size(); ++i)
        EXPECT_DOUBLE_EQ(t1a.values()[i], t1b.values()[i]);

    auto t2 = m.traceGenerator(2).generate(200);
    int same = 0;
    for (std::size_t i = 0; i < t1a.size(); ++i)
        if (t1a.values()[i] == t2.values()[i])
            ++same;
    EXPECT_LT(same, 10);
}

TEST(MachineModel, DifferentMachinesDifferentTraces)
{
    auto a = machineModel("toronto").traceGenerator(1).generate(200);
    auto b = machineModel("cairo").traceGenerator(1).generate(200);
    int same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a.values()[i] == b.values()[i])
            ++same;
    EXPECT_LT(same, 10);
}

TEST(MachineModel, VersionMustBePositive)
{
    EXPECT_THROW(machineModel("toronto").traceGenerator(0),
                 std::invalid_argument);
}

TEST(MachineModel, ImpactfulTransientsAreRare)
{
    // Section 3.1: impactful transients are the exception. Every
    // machine's trace should be quiet most of the time.
    for (const auto &name : machineNames()) {
        const auto trace =
            machineModel(name).traceGenerator(1).generate(5000);
        EXPECT_LT(trace.exceedanceFraction(0.3), 0.30) << name;
        EXPECT_GT(trace.exceedanceFraction(0.3), 0.0) << name;
    }
}

} // namespace
} // namespace qismet
