/** @file Tests for the TLS burst process. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.hpp"
#include "noise/tls_burst.hpp"

namespace qismet {
namespace {

TEST(TlsBurst, Validation)
{
    TlsBurstParams p;
    p.ratePerStep = -0.1;
    EXPECT_THROW(TlsBurstProcess(p, Rng(1)), std::invalid_argument);
    p = {};
    p.meanDurationSteps = 0.5;
    EXPECT_THROW(TlsBurstProcess(p, Rng(1)), std::invalid_argument);
    p = {};
    p.decayPerStep = 0.0;
    EXPECT_THROW(TlsBurstProcess(p, Rng(1)), std::invalid_argument);
    p = {};
    p.magnitudeMedian = -1.0;
    EXPECT_THROW(TlsBurstProcess(p, Rng(1)), std::invalid_argument);
}

TEST(TlsBurst, ZeroRateStaysQuiet)
{
    TlsBurstParams p;
    p.ratePerStep = 0.0;
    TlsBurstProcess proc(p, Rng(3));
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(proc.step(), 0.0);
    EXPECT_EQ(proc.activeBursts(), 0u);
}

TEST(TlsBurst, BurstsAreRareOutliers)
{
    // The paper's key premise: impactful transients are the exception,
    // not the norm (Fig. 3).
    TlsBurstParams p;
    p.ratePerStep = 0.01;
    p.magnitudeMedian = 0.5;
    p.meanDurationSteps = 5.0;
    TlsBurstProcess proc(p, Rng(5));
    int quiet = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (proc.step() < 0.05)
            ++quiet;
    EXPECT_GT(quiet / static_cast<double>(n), 0.8);
}

TEST(TlsBurst, OccupancyMatchesRateTimesDuration)
{
    TlsBurstParams p;
    p.ratePerStep = 0.02;
    p.meanDurationSteps = 5.0;
    p.decayPerStep = 1.0; // no decay: occupancy is purely rate x duration
    TlsBurstProcess proc(p, Rng(7));
    RunningStats active;
    for (int i = 0; i < 50000; ++i) {
        proc.step();
        active.add(static_cast<double>(proc.activeBursts()));
    }
    // Little's law: mean active bursts = arrival rate * mean duration.
    EXPECT_NEAR(active.mean(), 0.02 * 5.0, 0.02);
}

TEST(TlsBurst, FlickerPreservesMeanDepth)
{
    // Exp(1) flicker has mean 1, so the long-run mean realized value
    // with and without flicker should agree.
    TlsBurstParams p;
    p.ratePerStep = 0.05;
    p.magnitudeMedian = 0.4;
    p.magnitudeSigma = 0.0;
    p.decayPerStep = 1.0;

    auto run_mean = [&](bool flicker) {
        TlsBurstParams q = p;
        q.flicker = flicker;
        TlsBurstProcess proc(q, Rng(11));
        RunningStats stats;
        for (int i = 0; i < 200000; ++i)
            stats.add(proc.step());
        return stats.mean();
    };
    EXPECT_NEAR(run_mean(true), run_mean(false), 0.02);
}

TEST(TlsBurst, DecayShortensImpact)
{
    TlsBurstParams slow;
    slow.ratePerStep = 0.02;
    slow.decayPerStep = 0.99;
    slow.meanDurationSteps = 8.0;
    TlsBurstParams fast = slow;
    fast.decayPerStep = 0.5;

    auto total = [&](const TlsBurstParams &q) {
        TlsBurstProcess proc(q, Rng(13));
        double sum = 0.0;
        for (int i = 0; i < 20000; ++i)
            sum += proc.step();
        return sum;
    };
    EXPECT_GT(total(slow), total(fast));
}

TEST(TlsBurst, ValueMatchesLastStep)
{
    TlsBurstParams p;
    p.ratePerStep = 0.3;
    TlsBurstProcess proc(p, Rng(17));
    for (int i = 0; i < 100; ++i) {
        const double stepped = proc.step();
        EXPECT_DOUBLE_EQ(proc.value(), stepped);
    }
}

} // namespace
} // namespace qismet
