/** @file Tests for the static noise model. */

#include <gtest/gtest.h>

#include <cmath>

#include "noise/noise_model.hpp"

namespace qismet {
namespace {

StaticNoiseParams
typicalParams()
{
    return StaticNoiseParams{};
}

TEST(StaticNoiseModel, Validation)
{
    StaticNoiseParams p;
    p.p2q = 1.5;
    EXPECT_THROW(StaticNoiseModel{p}, std::invalid_argument);
    p = {};
    p.t1Us = -1.0;
    EXPECT_THROW(StaticNoiseModel{p}, std::invalid_argument);
    p = {};
    p.t2Us = 3.0 * p.t1Us; // unphysical T2 > 2 T1
    EXPECT_THROW(StaticNoiseModel{p}, std::invalid_argument);
}

TEST(StaticNoiseModel, ReadoutErrors)
{
    const StaticNoiseModel model(typicalParams());
    const auto ro = model.readoutErrors(4);
    ASSERT_EQ(ro.size(), 4u);
    for (const auto &r : ro) {
        EXPECT_DOUBLE_EQ(r.p10, typicalParams().readoutP10);
        EXPECT_DOUBLE_EQ(r.p01, typicalParams().readoutP01);
    }
}

TEST(StaticNoiseModel, SurvivalInUnitInterval)
{
    const StaticNoiseModel model(typicalParams());
    Circuit c(4);
    c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
    const double f = model.survivalFactor(c);
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 1.0);
}

TEST(StaticNoiseModel, SurvivalDecreasesWithDepth)
{
    const StaticNoiseModel model(typicalParams());
    Circuit shallow(3);
    shallow.cx(0, 1);
    Circuit deep(3);
    for (int i = 0; i < 10; ++i)
        deep.cx(0, 1).cx(1, 2);
    EXPECT_GT(model.survivalFactor(shallow), model.survivalFactor(deep));
}

TEST(StaticNoiseModel, T1ScaleReducesSurvival)
{
    const StaticNoiseModel model(typicalParams());
    Circuit c(3);
    for (int i = 0; i < 5; ++i)
        c.cx(0, 1).cx(1, 2);
    EXPECT_GT(model.survivalFactor(c, 1.0), model.survivalFactor(c, 0.2));
    EXPECT_THROW(model.survivalFactor(c, 0.0), std::invalid_argument);
}

TEST(StaticNoiseModel, RunNoisyPreservesTrace)
{
    const StaticNoiseModel model(typicalParams());
    Circuit c(2);
    c.h(0).cx(0, 1).rz(1, 0.3).cx(0, 1);
    DensityMatrix rho(2);
    model.runNoisy(rho, c);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-9);
    EXPECT_LT(rho.purity(), 1.0);
}

TEST(StaticNoiseModel, NoisyFidelityBelowIdeal)
{
    const StaticNoiseModel model(typicalParams());
    Circuit c(2);
    c.h(0).cx(0, 1);

    Statevector ideal(2);
    ideal.run(c);

    DensityMatrix rho(2);
    model.runNoisy(rho, c);
    const double fid = rho.fidelity(ideal);
    EXPECT_LT(fid, 1.0);
    EXPECT_GT(fid, 0.9); // a 2-gate circuit should stay close
}

TEST(StaticNoiseModel, TransientT1DegradationLowersFidelity)
{
    // The Fig. 4 mechanism: a transient T1 dip lowers circuit fidelity.
    const StaticNoiseModel model(typicalParams());
    Circuit c(2);
    for (int i = 0; i < 6; ++i)
        c.h(0).cx(0, 1);

    Statevector ideal(2);
    ideal.run(c);

    DensityMatrix healthy(2), degraded(2);
    model.runNoisy(healthy, c, {}, 1.0);
    model.runNoisy(degraded, c, {}, 0.1);
    EXPECT_GT(healthy.fidelity(ideal), degraded.fidelity(ideal));
}

TEST(StaticNoiseModel, SurvivalApproximatesDensityFidelity)
{
    // The analytic fast path should track the exact CPTP fidelity
    // within a coarse factor for a mid-size circuit.
    const StaticNoiseModel model(typicalParams());
    Circuit c(3);
    for (int i = 0; i < 4; ++i)
        c.ry(0, 0.3).cx(0, 1).ry(1, -0.8).cx(1, 2);

    Statevector ideal(3);
    ideal.run(c);
    DensityMatrix rho(3);
    model.runNoisy(rho, c);

    const double exact = rho.fidelity(ideal);
    const double approx = model.survivalFactor(c);
    EXPECT_NEAR(approx, exact, 0.15);
}

} // namespace
} // namespace qismet
