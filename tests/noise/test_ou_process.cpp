/** @file Tests for the Ornstein-Uhlenbeck drift process. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.hpp"
#include "noise/ou_process.hpp"

namespace qismet {
namespace {

TEST(OuProcess, Validation)
{
    EXPECT_THROW(OuProcess(0.0, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(OuProcess(0.0, -1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(OuProcess(0.0, 1.0, -1.0), std::invalid_argument);
}

TEST(OuProcess, ZeroSigmaDecaysToMean)
{
    OuProcess ou(5.0, 0.5, 0.0, 10.0);
    Rng rng(1);
    for (int i = 0; i < 50; ++i)
        ou.step(1.0, rng);
    EXPECT_NEAR(ou.value(), 5.0, 1e-6);
}

TEST(OuProcess, ExactDecayRate)
{
    OuProcess ou(0.0, 0.25, 0.0, 8.0);
    Rng rng(1);
    ou.step(2.0, rng);
    EXPECT_NEAR(ou.value(), 8.0 * std::exp(-0.5), 1e-12);
}

TEST(OuProcess, StationaryMoments)
{
    const double theta = 0.2, sigma = 0.6;
    OuProcess ou(1.0, theta, sigma);
    Rng rng(9);
    // Burn in, then sample.
    for (int i = 0; i < 500; ++i)
        ou.step(1.0, rng);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(ou.step(1.0, rng));
    EXPECT_NEAR(stats.mean(), 1.0, 0.05);
    EXPECT_NEAR(stats.stddev(), ou.stationaryStddev(), 0.05);
}

TEST(OuProcess, StationaryStddevFormula)
{
    OuProcess ou(0.0, 0.5, 2.0);
    EXPECT_DOUBLE_EQ(ou.stationaryStddev(), 2.0 / std::sqrt(1.0));
}

TEST(OuProcess, NegativeDtThrows)
{
    OuProcess ou(0.0, 0.5, 1.0);
    Rng rng(1);
    EXPECT_THROW(ou.step(-1.0, rng), std::invalid_argument);
}

TEST(OuProcess, ResetSetsValue)
{
    OuProcess ou(0.0, 0.5, 1.0);
    ou.reset(3.5);
    EXPECT_DOUBLE_EQ(ou.value(), 3.5);
}

} // namespace
} // namespace qismet
