/** @file Tests for transient traces and their generator. */

#include <gtest/gtest.h>

#include <cmath>

#include "noise/transient_trace.hpp"

namespace qismet {
namespace {

TEST(TransientTrace, EmptyTraceReadsZero)
{
    TransientTrace t;
    EXPECT_EQ(t.size(), 0u);
    EXPECT_DOUBLE_EQ(t.at(0), 0.0);
    EXPECT_DOUBLE_EQ(t.at(100), 0.0);
}

TEST(TransientTrace, AtBeyondEndIsZero)
{
    TransientTrace t({0.5, 0.2});
    EXPECT_DOUBLE_EQ(t.at(0), 0.5);
    EXPECT_DOUBLE_EQ(t.at(1), 0.2);
    EXPECT_DOUBLE_EQ(t.at(2), 0.0);
}

TEST(TransientTrace, ExceedanceFraction)
{
    TransientTrace t({0.0, 0.1, -0.5, 0.9});
    EXPECT_DOUBLE_EQ(t.exceedanceFraction(0.45), 0.5);
    EXPECT_DOUBLE_EQ(t.exceedanceFraction(2.0), 0.0);
    // Monotone decreasing in the threshold.
    EXPECT_GE(t.exceedanceFraction(0.05), t.exceedanceFraction(0.45));
}

TEST(TraceGenerator, Validation)
{
    TransientTraceParams p;
    p.scale = -1.0;
    EXPECT_THROW(TransientTraceGenerator(p, 1), std::invalid_argument);
    p = {};
    p.maxIntensity = 0.0;
    EXPECT_THROW(TransientTraceGenerator(p, 1), std::invalid_argument);
}

TEST(TraceGenerator, DeterministicForSameSeed)
{
    TransientTraceParams p;
    TransientTraceGenerator g1(p, 42), g2(p, 42);
    const auto t1 = g1.generate(500);
    const auto t2 = g2.generate(500);
    ASSERT_EQ(t1.size(), t2.size());
    for (std::size_t i = 0; i < t1.size(); ++i)
        EXPECT_DOUBLE_EQ(t1.values()[i], t2.values()[i]);
}

TEST(TraceGenerator, VersionsAreIndependent)
{
    TransientTraceParams p;
    TransientTraceGenerator g(p, 42);
    const auto v1 = g.generate(500);
    const auto v2 = g.generate(500);
    int identical = 0;
    for (std::size_t i = 0; i < v1.size(); ++i)
        if (v1.values()[i] == v2.values()[i])
            ++identical;
    EXPECT_LT(identical, 10);
}

TEST(TraceGenerator, ScaleZeroIsSilent)
{
    TransientTraceParams p;
    p.scale = 0.0;
    const auto t = TransientTraceGenerator(p, 7).generate(200);
    for (double v : t.values())
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(TraceGenerator, ClampsToMaxIntensity)
{
    TransientTraceParams p;
    p.burst.ratePerStep = 0.5;
    p.burst.magnitudeMedian = 5.0;
    p.maxIntensity = 0.8;
    const auto t = TransientTraceGenerator(p, 9).generate(1000);
    for (double v : t.values()) {
        EXPECT_LE(v, 0.8);
        EXPECT_GE(v, -0.8);
    }
    EXPECT_GT(t.exceedanceFraction(0.75), 0.0); // clamp actually engaged
}

class TraceScaleTest : public ::testing::TestWithParam<double>
{
};

TEST_P(TraceScaleTest, ScaleMultipliesIntensity)
{
    // The Fig. 10 knob: scaling the generator scales the trace.
    const double scale = GetParam();
    TransientTraceParams base;
    base.burst.ratePerStep = 0.05;
    base.maxIntensity = 100.0; // disable clamping for exactness

    TransientTraceParams scaled = base;
    scaled.scale = scale;

    const auto t1 = TransientTraceGenerator(base, 3).generate(400);
    const auto t2 = TransientTraceGenerator(scaled, 3).generate(400);
    for (std::size_t i = 0; i < t1.size(); ++i)
        EXPECT_NEAR(t2.values()[i], scale * t1.values()[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Scales, TraceScaleTest,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 2.0));

TEST(TraceGenerator, DriftComponentHasRequestedStddev)
{
    TransientTraceParams p;
    p.burst.ratePerStep = 0.0; // isolate the drift
    p.driftStddev = 0.05;
    const auto t = TransientTraceGenerator(p, 11).generate(50000);
    double mean = 0.0, var = 0.0;
    for (double v : t.values())
        mean += v;
    mean /= static_cast<double>(t.size());
    for (double v : t.values())
        var += (v - mean) * (v - mean);
    var /= static_cast<double>(t.size() - 1);
    EXPECT_NEAR(std::sqrt(var), 0.05, 0.01);
    EXPECT_NEAR(mean, 0.0, 0.01);
}

} // namespace
} // namespace qismet
