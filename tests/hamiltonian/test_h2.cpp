/** @file Tests for the first-principles H2 problem builder. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "hamiltonian/exact_solver.hpp"
#include "chem/sto3g.hpp"
#include "hamiltonian/h2_molecule.hpp"

namespace qismet {
namespace {

TEST(H2, EquilibriumFciEnergyMatchesLiterature)
{
    // STO-3G FCI at the equilibrium bond length: about -1.137 Hartree.
    const H2Problem prob = h2Problem(0.735);
    EXPECT_NEAR(prob.fciEnergy, -1.1373, 5e-3);
}

TEST(H2, HamiltonianIsHermitianFourQubits)
{
    const H2Problem prob = h2Problem(1.0);
    EXPECT_EQ(prob.hamiltonian.numQubits(), 4);
    EXPECT_TRUE(prob.hamiltonian.toMatrix().isHermitian(1e-9));
}

TEST(H2, CurveMinimumNearEquilibrium)
{
    const auto scan = h2BondScan(0.4, 2.0, 17);
    const auto it = std::min_element(
        scan.begin(), scan.end(), [](const H2Problem &a, const H2Problem &b) {
            return a.fciEnergy < b.fciEnergy;
        });
    EXPECT_GT(it->bondAngstrom, 0.5);
    EXPECT_LT(it->bondAngstrom, 0.95);
}

TEST(H2, DissociationTailRises)
{
    // Beyond the minimum the curve rises monotonically toward two free
    // H atoms (STO-3G FCI dissociation ≈ -0.93 Ha).
    const double e15 = h2Problem(1.5).fciEnergy;
    const double e20 = h2Problem(2.0).fciEnergy;
    EXPECT_LT(e15, e20);
    EXPECT_NEAR(e20, -0.93, 0.05);
}

TEST(H2, ShortBondRepulsive)
{
    EXPECT_GT(h2Problem(0.4).fciEnergy, h2Problem(0.735).fciEnergy);
}

TEST(H2, NuclearRepulsionDominatesShortRange)
{
    const auto mol = h2MolecularHamiltonian(0.3);
    // 1/R in bohr.
    EXPECT_NEAR(mol.constant, 1.0 / (0.3 * kBohrPerAngstrom), 1e-12);
}

TEST(H2, OneBodySpinBlockStructure)
{
    const auto mol = h2MolecularHamiltonian(0.9);
    ASSERT_EQ(mol.oneBody.size(), 4u);
    // Opposite spins never mix.
    EXPECT_DOUBLE_EQ(mol.oneBody[0][1], 0.0);
    EXPECT_DOUBLE_EQ(mol.oneBody[1][0], 0.0);
    // Bonding orbital lies below antibonding.
    EXPECT_LT(mol.oneBody[0][0], mol.oneBody[2][2]);
    // Spin symmetry.
    EXPECT_DOUBLE_EQ(mol.oneBody[0][0], mol.oneBody[1][1]);
}

TEST(H2, BondScanValidation)
{
    EXPECT_THROW(h2BondScan(0.4, 2.0, 1), std::invalid_argument);
    EXPECT_THROW(h2Problem(0.0), std::invalid_argument);
    EXPECT_THROW(h2Problem(-1.0), std::invalid_argument);
}

TEST(H2, ScanEndpointsAndCount)
{
    const auto scan = h2BondScan(0.4, 2.0, 9);
    ASSERT_EQ(scan.size(), 9u);
    EXPECT_DOUBLE_EQ(scan.front().bondAngstrom, 0.4);
    EXPECT_DOUBLE_EQ(scan.back().bondAngstrom, 2.0);
}

TEST(H2, GroundStateInTwoElectronSector)
{
    // The FCI ground state of the full Fock-space Hamiltonian must carry
    // two electrons: check <N> = 2 on the ground state, where N is the
    // JW number operator Σ (I - Z_p)/2.
    const H2Problem prob = h2Problem(0.735);
    PauliSum number(4);
    number.add(2.0, "IIII");
    for (int p = 0; p < 4; ++p) {
        PauliString z(4);
        z.setOp(p, PauliOp::Z);
        number.add(-0.5, z);
    }
    const auto sol = solveExact(prob.hamiltonian);

    // <gs| N |gs>
    const auto n_mat = number.toMatrix();
    const auto nv = n_mat.apply(sol.groundState);
    Complex acc(0, 0);
    for (std::size_t i = 0; i < nv.size(); ++i)
        acc += std::conj(sol.groundState[i]) * nv[i];
    EXPECT_NEAR(acc.real(), 2.0, 1e-8);
}

} // namespace
} // namespace qismet
