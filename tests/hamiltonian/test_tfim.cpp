/** @file Tests for the TFIM Hamiltonian and its free-fermion solution. */

#include <gtest/gtest.h>

#include <cmath>

#include "hamiltonian/exact_solver.hpp"
#include "hamiltonian/tfim.hpp"

namespace qismet {
namespace {

TEST(Tfim, TermCountOpenChain)
{
    TfimParams p;
    p.numQubits = 6;
    const PauliSum h = tfimHamiltonian(p);
    // 5 ZZ couplings + 6 X fields.
    EXPECT_EQ(h.numTerms(), 11u);
}

TEST(Tfim, TermCountPeriodicChain)
{
    TfimParams p;
    p.numQubits = 6;
    p.periodic = true;
    EXPECT_EQ(tfimHamiltonian(p).numTerms(), 12u);
}

TEST(Tfim, RejectsTooFewQubits)
{
    TfimParams p;
    p.numQubits = 1;
    EXPECT_THROW(tfimHamiltonian(p), std::invalid_argument);
}

TEST(Tfim, TwoQubitAnalyticValue)
{
    // H = -J ZZ - h (XI + IX): E0 = -sqrt(J^2 + 4 h^2).
    TfimParams p;
    p.numQubits = 2;
    p.j = 1.3;
    p.h = 0.8;
    const double expected = -std::sqrt(p.j * p.j + 4.0 * p.h * p.h);
    EXPECT_NEAR(tfimExactGroundEnergy(p), expected, 1e-10);
    EXPECT_NEAR(solveExact(tfimHamiltonian(p)).groundEnergy(), expected,
                1e-9);
}

class TfimCrossCheckTest
    : public ::testing::TestWithParam<std::tuple<int, double, double>>
{
};

TEST_P(TfimCrossCheckTest, FreeFermionMatchesDenseDiagonalization)
{
    const auto [n, j, hfield] = GetParam();
    TfimParams p;
    p.numQubits = n;
    p.j = j;
    p.h = hfield;
    const double analytic = tfimExactGroundEnergy(p);
    const double dense = solveExact(tfimHamiltonian(p)).groundEnergy();
    EXPECT_NEAR(analytic, dense, 1e-8)
        << "n=" << n << " J=" << j << " h=" << hfield;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TfimCrossCheckTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6),
                       ::testing::Values(0.5, 1.0, 2.0),
                       ::testing::Values(0.25, 1.0, 1.75)));

TEST(Tfim, ClassicalLimitNoField)
{
    // h -> 0: ground energy -J (n-1), fully aligned spins.
    TfimParams p;
    p.numQubits = 5;
    p.j = 2.0;
    p.h = 1e-9;
    EXPECT_NEAR(tfimExactGroundEnergy(p), -2.0 * 4.0, 1e-6);
}

TEST(Tfim, ParamagneticLimitNoCoupling)
{
    // J -> 0: ground energy -h n, all spins along X.
    TfimParams p;
    p.numQubits = 5;
    p.j = 1e-9;
    p.h = 1.5;
    EXPECT_NEAR(tfimExactGroundEnergy(p), -1.5 * 5.0, 1e-6);
}

TEST(Tfim, AnalyticRejectsPeriodic)
{
    TfimParams p;
    p.periodic = true;
    EXPECT_THROW(tfimExactGroundEnergy(p), std::invalid_argument);
}

TEST(Tfim, PeriodicLowersEnergy)
{
    TfimParams open;
    open.numQubits = 6;
    TfimParams per = open;
    per.periodic = true;
    EXPECT_LT(solveExact(tfimHamiltonian(per)).groundEnergy(),
              solveExact(tfimHamiltonian(open)).groundEnergy());
}

TEST(Tfim, EnergyExtensiveInSize)
{
    TfimParams small;
    small.numQubits = 4;
    TfimParams large;
    large.numQubits = 8;
    EXPECT_LT(tfimExactGroundEnergy(large), tfimExactGroundEnergy(small));
}

TEST(Tfim, MixedStateExpectationIsZero)
{
    // All TFIM terms are traceless, so <H>_mixed = 0.
    TfimParams p;
    p.numQubits = 4;
    EXPECT_DOUBLE_EQ(tfimHamiltonian(p).identityCoefficient(), 0.0);
}

} // namespace
} // namespace qismet
