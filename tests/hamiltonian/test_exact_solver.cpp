/** @file Tests for the dense exact solver. */

#include <gtest/gtest.h>

#include <cmath>

#include "hamiltonian/exact_solver.hpp"

namespace qismet {
namespace {

TEST(ExactSolver, SingleZTerm)
{
    PauliSum h(1);
    h.add(1.0, "Z");
    const ExactSolution sol = solveExact(h);
    EXPECT_NEAR(sol.groundEnergy(), -1.0, 1e-10);
    EXPECT_NEAR(sol.gap(), 2.0, 1e-10);
    // Ground state is |1>.
    EXPECT_NEAR(std::norm(sol.groundState[1]), 1.0, 1e-10);
}

TEST(ExactSolver, FullSpectrumSorted)
{
    PauliSum h(2);
    h.add(1.0, "ZZ");
    h.add(0.5, "XI");
    const ExactSolution sol = solveExact(h);
    ASSERT_EQ(sol.spectrum.size(), 4u);
    for (std::size_t i = 0; i + 1 < sol.spectrum.size(); ++i)
        EXPECT_LE(sol.spectrum[i], sol.spectrum[i + 1]);
}

TEST(ExactSolver, IdentityShiftsSpectrum)
{
    PauliSum h(2);
    h.add(1.0, "ZZ");
    PauliSum shifted = h;
    shifted.add(3.0, "II");
    const double e0 = solveExact(h).groundEnergy();
    const double e1 = solveExact(shifted).groundEnergy();
    EXPECT_NEAR(e1 - e0, 3.0, 1e-10);
}

TEST(ExactSolver, GroundStateIsEigenvector)
{
    PauliSum h(3);
    h.add(-1.0, "ZZI");
    h.add(-1.0, "IZZ");
    h.add(-0.7, "XII");
    h.add(-0.7, "IXI");
    h.add(-0.7, "IIX");
    const ExactSolution sol = solveExact(h);

    const Matrix m = h.toMatrix();
    const auto hv = m.apply(sol.groundState);
    for (std::size_t i = 0; i < hv.size(); ++i)
        EXPECT_NEAR(std::abs(hv[i] - sol.groundState[i] *
                                         Complex(sol.groundEnergy(), 0.0)),
                    0.0, 1e-8);
}

TEST(ExactSolver, CapsProblemSize)
{
    PauliSum h(11);
    PauliString z(11);
    z.setOp(0, PauliOp::Z);
    h.add(1.0, z);
    EXPECT_THROW(solveExact(h), std::invalid_argument);
}

} // namespace
} // namespace qismet
