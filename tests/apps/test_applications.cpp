/** @file Tests for the Table-1 application registry. */

#include <gtest/gtest.h>

#include "apps/applications.hpp"

namespace qismet {
namespace {

TEST(Applications, TableOneContents)
{
    const struct
    {
        int index;
        const char *ansatz;
        int reps;
        const char *machine;
        int version;
    } expected[] = {
        {1, "SU2", 2, "toronto", 1},   {2, "RA", 4, "guadalupe", 1},
        {3, "RA", 4, "guadalupe", 2},  {4, "SU2", 4, "toronto", 2},
        {5, "RA", 8, "cairo", 1},      {6, "RA", 8, "casablanca", 1},
    };
    for (const auto &e : expected) {
        const ApplicationSpec spec = applicationSpec(e.index);
        EXPECT_EQ(spec.numQubits, 6);
        EXPECT_EQ(spec.ansatzName, e.ansatz);
        EXPECT_EQ(spec.reps, e.reps);
        EXPECT_EQ(spec.machineName, e.machine);
        EXPECT_EQ(spec.traceVersion, e.version);
    }
}

TEST(Applications, IndexValidation)
{
    EXPECT_THROW(applicationSpec(0), std::invalid_argument);
    EXPECT_THROW(applicationSpec(7), std::invalid_argument);
}

TEST(Applications, BuildWiresEverything)
{
    const Application app = application(2);
    EXPECT_EQ(app.hamiltonian.numQubits(), 6);
    EXPECT_EQ(app.ansatzCircuit.numQubits(), 6);
    EXPECT_EQ(app.machine.name, "guadalupe");
    EXPECT_LT(app.exactGroundEnergy, -7.0);
    EXPECT_NO_THROW(app.makeRunner());
}

TEST(Applications, AllSixBuild)
{
    const auto apps = allApplications();
    ASSERT_EQ(apps.size(), 6u);
    for (const auto &app : apps) {
        EXPECT_EQ(app.spec.numQubits, 6);
        EXPECT_NEAR(app.exactGroundEnergy, apps[0].exactGroundEnergy,
                    1e-10); // same TFIM problem everywhere
    }
}

TEST(Applications, AnsatzFactory)
{
    EXPECT_EQ(makeAnsatz("SU2", 6, 2)->numParams(), 2 * 6 * 3);
    EXPECT_EQ(makeAnsatz("RA", 6, 4)->numParams(), 6 * 5);
    EXPECT_THROW(makeAnsatz("XYZ", 6, 2), std::invalid_argument);
}

TEST(Applications, DeeperAppsHaveDeeperCircuits)
{
    const Application shallow = application(1); // SU2 reps 2
    const Application deep = application(6);    // RA reps 8
    EXPECT_LT(shallow.ansatzCircuit.size(), deep.ansatzCircuit.size());
}

} // namespace
} // namespace qismet
