/** @file Tests for metrics and multi-scheme orchestration. */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/experiment_runner.hpp"

namespace qismet {
namespace {

TEST(VqaFidelity, BasicValues)
{
    // mixed = 0, exact = -8: estimate -4 achieves half the swing.
    EXPECT_DOUBLE_EQ(vqaFidelity(-4.0, 0.0, -8.0), 0.5);
    EXPECT_DOUBLE_EQ(vqaFidelity(-8.0, 0.0, -8.0), 1.0);
    // Estimates past the mixed value floor at the minimum fidelity.
    EXPECT_DOUBLE_EQ(vqaFidelity(1.0, 0.0, -8.0), 0.02);
}

TEST(VqaFidelity, ZeroSwingThrows)
{
    EXPECT_THROW(vqaFidelity(0.0, -1.0, -1.0), std::invalid_argument);
}

TEST(ImprovementFactor, RatioOfFidelities)
{
    // Baseline reaches -2 of -8, scheme reaches -4: factor 2.
    EXPECT_DOUBLE_EQ(improvementFactor(-2.0, -4.0, 0.0, -8.0), 2.0);
    EXPECT_DOUBLE_EQ(improvementFactor(-4.0, -2.0, 0.0, -8.0), 0.5);
    EXPECT_DOUBLE_EQ(improvementFactor(-4.0, -4.0, 0.0, -8.0), 1.0);
}

TEST(RunComparison, AddsBaselineAndFillsMetrics)
{
    const Application app = application(1);
    QismetVqeConfig cfg;
    cfg.totalJobs = 150;
    cfg.seed = 3;
    cfg.estimator.mode = EstimatorMode::Analytic;

    const Comparison cmp =
        runComparison(app, {Scheme::Qismet}, cfg);
    ASSERT_EQ(cmp.outcomes.size(), 2u);
    EXPECT_EQ(cmp.outcomes[0].scheme, "Baseline");
    EXPECT_DOUBLE_EQ(cmp.outcomes[0].improvementFactor, 1.0);
    EXPECT_DOUBLE_EQ(cmp.outcomes[0].improvementPercent, 0.0);
    EXPECT_NO_THROW(cmp.outcome("QISMET"));
    EXPECT_THROW(cmp.outcome("nope"), std::invalid_argument);
}

TEST(RunComparison, UsesApplicationTraceVersion)
{
    // App3 is the v2 Guadalupe trial; its trace differs from App2's even
    // under identical config.
    QismetVqeConfig cfg;
    cfg.totalJobs = 150;
    cfg.seed = 3;

    const auto c2 = runComparison(application(2), {}, cfg);
    const auto c3 = runComparison(application(3), {}, cfg);
    EXPECT_NE(c2.outcome("Baseline").result.run.finalEstimate,
              c3.outcome("Baseline").result.run.finalEstimate);
}

TEST(MeanImprovements, AveragesAcrossComparisons)
{
    Comparison a, b;
    a.outcomes.push_back({"X", {}, 2.0, 0.0});
    b.outcomes.push_back({"X", {}, 4.0, 0.0});
    a.outcomes.push_back({"Y", {}, 1.0, 0.0});

    const auto means = meanImprovements({a, b});
    ASSERT_EQ(means.size(), 2u);
    EXPECT_EQ(means[0].first, "X");
    EXPECT_DOUBLE_EQ(means[0].second, 3.0);
    EXPECT_DOUBLE_EQ(means[1].second, 1.0);
}

} // namespace
} // namespace qismet
