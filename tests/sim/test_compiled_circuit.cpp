/**
 * @file
 * Unit tests for the circuit compiler itself: op-count reduction,
 * kernel classification, diagonal-run merging, cancellation peepholes,
 * 2q absorption, and parameter-slot rebinding. End-to-end numeric
 * equivalence against the unfused path lives in
 * test_fusion_equivalence.cpp.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <complex>
#include <vector>

#include "circuit/circuit.hpp"
#include "sim/compiled_circuit.hpp"
#include "sim/statevector.hpp"

namespace qismet {
namespace {

/** Restores the global fusion switch on scope exit. */
class FusionGuard
{
  public:
    ~FusionGuard() { setFusionEnabled(true); }
};

std::size_t
countKind(const CompiledCircuit &cc, CompiledOpKind kind)
{
    std::size_t n = 0;
    for (const auto &op : cc.ops())
        if (op.kind == kind)
            ++n;
    return n;
}

TEST(CompiledCircuit, AdjacentOneQubitGatesFuseIntoOneDense)
{
    Circuit c(2);
    c.h(0).rz(0, 0.3).ry(0, -0.7).sx(0).t(0);
    const CompiledCircuit cc(c);

    EXPECT_EQ(cc.stats().inputGates, 5u);
    ASSERT_EQ(cc.ops().size(), 1u);
    EXPECT_EQ(cc.ops()[0].kind, CompiledOpKind::Dense1);
    EXPECT_EQ(cc.ops()[0].q0, 0);

    // The fused 2x2 must equal the ordered product of the gate matrices.
    Statevector fused(2);
    Gate prep; // decorrelate from |00> so both columns are exercised
    prep.type = GateType::H;
    prep.qubits = {1, 0};
    fused.applyGate(prep);
    Statevector unfused = fused;
    fused.run(cc);
    for (const Gate &g : c.gates())
        unfused.applyGate(g);
    for (std::size_t i = 0; i < fused.dim(); ++i) {
        EXPECT_NEAR(fused.amplitudes()[i].real(),
                    unfused.amplitudes()[i].real(), 1e-12);
        EXPECT_NEAR(fused.amplitudes()[i].imag(),
                    unfused.amplitudes()[i].imag(), 1e-12);
    }
}

TEST(CompiledCircuit, CommutingDiagonalRunMergesIntoOneTable)
{
    // rz/z/t/cz on three qubits all commute: one Diag op, mask 0b111.
    Circuit c(3);
    c.rz(0, 0.4).z(1).cz(0, 1).t(2).s(0).cz(1, 2);
    const CompiledCircuit cc(c);

    ASSERT_EQ(cc.ops().size(), 1u);
    EXPECT_EQ(cc.ops()[0].kind, CompiledOpKind::Diag);
    EXPECT_EQ(cc.ops()[0].mask, 0b111u);
    EXPECT_EQ(cc.stats().diag, 1u);
}

TEST(CompiledCircuit, DiagonalRunBrokenByNonCommutingGate)
{
    // The h(1) touches qubit 1 after the run opened, so the later z(1)
    // must not hoist across it.
    Circuit c(2);
    c.rz(0, 0.2).h(1).z(1);
    const CompiledCircuit cc(c);

    // z(1) fuses into the dense h(1) node instead; rz(0) stays a Diag.
    ASSERT_EQ(cc.ops().size(), 2u);
    EXPECT_EQ(cc.ops()[0].kind, CompiledOpKind::Diag);
    EXPECT_EQ(cc.ops()[0].mask, 0b01u);
    EXPECT_EQ(cc.ops()[1].kind, CompiledOpKind::Dense1);
}

TEST(CompiledCircuit, MaxDiagQubitsCapSplitsRuns)
{
    Circuit c(4);
    c.rz(0, 0.1).rz(1, 0.2).rz(2, 0.3).rz(3, 0.4);
    CompileOptions opts;
    opts.maxDiagQubits = 2;
    const CompiledCircuit cc(c, opts);

    EXPECT_EQ(cc.stats().diag, 2u);
    for (const auto &op : cc.ops())
        EXPECT_LE(std::popcount(op.mask), 2);
}

TEST(CompiledCircuit, PermutationGatesGetPermutationKernels)
{
    Circuit c(3);
    c.x(0).cx(0, 1).swap(1, 2).cz(0, 2);
    const CompiledCircuit cc(c);

    EXPECT_EQ(countKind(cc, CompiledOpKind::PermX), 1u);
    EXPECT_EQ(countKind(cc, CompiledOpKind::PermCX), 1u);
    EXPECT_EQ(countKind(cc, CompiledOpKind::PermSwap), 1u);
    EXPECT_EQ(countKind(cc, CompiledOpKind::Diag), 1u);
}

TEST(CompiledCircuit, SelfInversePairsCancel)
{
    Circuit c(2);
    c.x(0).x(0).cx(0, 1).cx(0, 1).swap(0, 1).swap(0, 1);
    const CompiledCircuit cc(c);

    EXPECT_EQ(cc.ops().size(), 0u);
    EXPECT_EQ(cc.stats().cancelled, 6u);
}

TEST(CompiledCircuit, ReversedControlDoesNotCancel)
{
    Circuit c(2);
    c.cx(0, 1).cx(1, 0);
    const CompiledCircuit cc(c);
    EXPECT_EQ(cc.ops().size(), 2u);
    EXPECT_EQ(cc.stats().cancelled, 0u);
}

TEST(CompiledCircuit, AbsorbIntoTwoQubitWhenRequested)
{
    Circuit c(2);
    c.h(0).ry(1, 0.4).cx(0, 1).rz(1, -0.2);
    CompileOptions opts;
    opts.absorb2q = CompileOptions::Absorb2q::Always;
    const CompiledCircuit cc(c, opts);

    // Both pending 1q nodes, the CX and the trailing rz collapse into
    // one dense 4x4.
    ASSERT_EQ(cc.ops().size(), 1u);
    EXPECT_EQ(cc.ops()[0].kind, CompiledOpKind::Dense2);

    // And the result matches the unfused application exactly.
    Statevector fused(2);
    fused.run(cc);
    Statevector unfused(2);
    for (const Gate &g : c.gates())
        unfused.applyGate(g);
    for (std::size_t i = 0; i < fused.dim(); ++i) {
        EXPECT_NEAR(fused.amplitudes()[i].real(),
                    unfused.amplitudes()[i].real(), 1e-12);
        EXPECT_NEAR(fused.amplitudes()[i].imag(),
                    unfused.amplitudes()[i].imag(), 1e-12);
    }
}

TEST(CompiledCircuit, NarrowRegistersKeepPermKernelsByDefault)
{
    // Auto policy: below the width threshold CX stays a permutation op.
    Circuit c(2);
    c.h(0).cx(0, 1);
    const CompiledCircuit cc(c);
    EXPECT_EQ(countKind(cc, CompiledOpKind::PermCX), 1u);
    EXPECT_EQ(countKind(cc, CompiledOpKind::Dense2), 0u);
}

TEST(CompiledCircuit, ParameterSlotsRebindAcrossRuns)
{
    Circuit c(2, 2);
    c.h(0).rzParam(0, 0, 2.0, 0.1).ryParam(1, 1).cx(0, 1);
    const CompiledCircuit cc(c);
    EXPECT_TRUE(cc.parameterized());
    EXPECT_GT(cc.bindPoolSize(), 0u);

    // One compiled instance, two parameter vectors; each run must match
    // a fresh unfused execution at those parameters.
    for (const std::vector<double> &theta :
         {std::vector<double>{0.3, -1.2}, std::vector<double>{-2.0, 0.7}}) {
        Statevector fused(2);
        fused.run(cc, theta);
        Statevector unfused(2);
        for (const Gate &g : c.gates())
            unfused.applyGate(g, theta);
        for (std::size_t i = 0; i < fused.dim(); ++i) {
            EXPECT_NEAR(fused.amplitudes()[i].real(),
                        unfused.amplitudes()[i].real(), 1e-12);
            EXPECT_NEAR(fused.amplitudes()[i].imag(),
                        unfused.amplitudes()[i].imag(), 1e-12);
        }
    }
}

TEST(CompiledCircuit, ConstantOpsLiveInConstPool)
{
    Circuit c(2, 1);
    c.h(0).rzParam(1, 0);
    const CompiledCircuit cc(c);
    ASSERT_EQ(cc.ops().size(), 2u);
    EXPECT_FALSE(cc.ops()[0].parameterized);
    EXPECT_TRUE(cc.ops()[1].parameterized);
    EXPECT_GE(cc.constPool().size(), 4u);
}

TEST(CompiledCircuit, BindValidatesParameterCount)
{
    Circuit c(1, 2);
    c.rzParam(0, 0).rxParam(0, 1);
    const CompiledCircuit cc(c);
    std::vector<Complex> pool;
    EXPECT_THROW(cc.bind({0.1}, pool), std::invalid_argument);
    EXPECT_NO_THROW(cc.bind({0.1, 0.2}, pool));
    EXPECT_EQ(pool.size(), cc.bindPoolSize());
}

TEST(CompiledCircuit, FuseOffLowersOneOpPerGate)
{
    Circuit c(2);
    c.h(0).h(0).rz(0, 0.5).cx(0, 1);
    CompileOptions opts;
    opts.fuse = false;
    const CompiledCircuit cc(c, opts);
    EXPECT_EQ(cc.ops().size(), 4u);
}

TEST(CompiledCircuit, FusionSwitchControlsRunPath)
{
    FusionGuard guard;
    EXPECT_TRUE(fusionEnabled());
    setFusionEnabled(false);
    EXPECT_FALSE(fusionEnabled());

    // With fusion off, run(Circuit) takes the legacy gate-by-gate path;
    // with it on, the compiled path. Both must agree numerically.
    Circuit c(3);
    c.h(0).cx(0, 1).rz(1, 0.8).ry(2, -0.4).cz(1, 2);
    Statevector legacy(3);
    legacy.run(c);

    setFusionEnabled(true);
    Statevector fused(3);
    fused.run(c);
    for (std::size_t i = 0; i < fused.dim(); ++i) {
        EXPECT_NEAR(fused.amplitudes()[i].real(),
                    legacy.amplitudes()[i].real(), 1e-12);
        EXPECT_NEAR(fused.amplitudes()[i].imag(),
                    legacy.amplitudes()[i].imag(), 1e-12);
    }
}

TEST(CompiledCircuit, OpCountShrinksOnAnsatzShapedCircuits)
{
    // RealAmplitudes-shaped layer structure: ry+rz pairs fuse per qubit.
    const int n = 4;
    Circuit c(n, 2 * n * 3);
    int p = 0;
    for (int layer = 0; layer < 3; ++layer) {
        for (int q = 0; q < n; ++q) {
            c.ryParam(q, p++);
            c.rzParam(q, p++);
        }
        for (int q = 0; q + 1 < n; ++q)
            c.cx(q, q + 1);
    }
    const CompiledCircuit cc(c);
    EXPECT_LT(cc.stats().ops, cc.stats().inputGates);
    // Each ry+rz pair becomes a single dense op.
    EXPECT_EQ(cc.stats().dense1 + cc.stats().diag,
              static_cast<std::size_t>(n * 3));
}

} // namespace
} // namespace qismet
