/** @file Tests for finite-shot sampling with readout errors. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/shot_sampler.hpp"

namespace qismet {
namespace {

TEST(ReadoutError, Validation)
{
    ReadoutError ok{0.01, 0.02};
    EXPECT_NO_THROW(ok.check());
    ReadoutError bad{1.5, 0.0};
    EXPECT_THROW(bad.check(), std::invalid_argument);
}

TEST(ShotSampler, ErrorFreeSamplingMatchesDistribution)
{
    ShotSampler sampler;
    std::vector<double> probs = {0.25, 0.75};
    Rng rng(3);
    const Counts counts = sampler.sample(probs, 1, 40000, rng);
    EXPECT_NEAR(static_cast<double>(counts.at(0)) / 40000.0, 0.25, 0.01);
    EXPECT_NEAR(static_cast<double>(counts.at(1)) / 40000.0, 0.75, 0.01);
}

TEST(ShotSampler, ReadoutFlipsGroundState)
{
    // Deterministic |0> prepared, p10 = 0.1 readout flips.
    ShotSampler sampler({ReadoutError{0.1, 0.0}});
    std::vector<double> probs = {1.0, 0.0};
    Rng rng(5);
    const Counts counts = sampler.sample(probs, 1, 50000, rng);
    EXPECT_NEAR(static_cast<double>(counts.at(1)) / 50000.0, 0.1, 0.01);
}

TEST(ShotSampler, AsymmetricReadout)
{
    // |1> prepared with p01 = 0.2: expect ~20% zeros.
    ShotSampler sampler({ReadoutError{0.0, 0.2}});
    std::vector<double> probs = {0.0, 1.0};
    Rng rng(7);
    const Counts counts = sampler.sample(probs, 1, 50000, rng);
    EXPECT_NEAR(static_cast<double>(counts.at(0)) / 50000.0, 0.2, 0.01);
}

TEST(ShotSampler, MultiQubitIndependentFlips)
{
    ShotSampler sampler({ReadoutError{0.1, 0.0}, ReadoutError{0.1, 0.0}});
    std::vector<double> probs = {1.0, 0.0, 0.0, 0.0};
    Rng rng(11);
    const Counts counts = sampler.sample(probs, 2, 50000, rng);
    const double p_both =
        counts.count(3) ? static_cast<double>(counts.at(3)) / 50000.0 : 0.0;
    EXPECT_NEAR(p_both, 0.01, 0.005);
}

TEST(ShotSampler, Validation)
{
    ShotSampler sampler;
    Rng rng(1);
    EXPECT_THROW(sampler.sample({0.5, 0.5, 0.0}, 1, 10, rng),
                 std::invalid_argument); // size != 2^n
    EXPECT_THROW(sampler.sample({-0.5, 1.5}, 1, 10, rng),
                 std::invalid_argument);
    EXPECT_THROW(sampler.sample({0.0, 0.0}, 1, 10, rng),
                 std::invalid_argument);
}

TEST(ShotSampler, TooFewReadoutEntriesThrows)
{
    ShotSampler sampler({ReadoutError{0.1, 0.1}});
    std::vector<double> probs(4, 0.25);
    Rng rng(1);
    EXPECT_THROW(sampler.sample(probs, 2, 10, rng), std::invalid_argument);
}

TEST(Counts, TotalShots)
{
    Counts c = {{0, 10}, {3, 5}};
    EXPECT_EQ(totalShots(c), 15u);
    EXPECT_EQ(totalShots({}), 0u);
}

TEST(Counts, ToProbabilities)
{
    Counts c = {{0, 30}, {2, 10}};
    const auto p = countsToProbabilities(c, 2);
    EXPECT_DOUBLE_EQ(p[0], 0.75);
    EXPECT_DOUBLE_EQ(p[2], 0.25);
    EXPECT_DOUBLE_EQ(p[1], 0.0);
}

TEST(Counts, ToProbabilitiesRejectsWideOutcome)
{
    Counts c = {{4, 1}};
    EXPECT_THROW(countsToProbabilities(c, 2), std::out_of_range);
}

TEST(Counts, ExpectationZMask)
{
    // 60% |00>, 40% |01>: Z on qubit 0 = 0.6 - 0.4 = 0.2.
    Counts c = {{0, 60}, {1, 40}};
    EXPECT_NEAR(countsExpectationZMask(c, 0b01), 0.2, 1e-12);
    // Z on qubit 1 always +1.
    EXPECT_NEAR(countsExpectationZMask(c, 0b10), 1.0, 1e-12);
    // ZZ parity: |01> has odd parity.
    EXPECT_NEAR(countsExpectationZMask(c, 0b11), 0.2, 1e-12);
}

TEST(Counts, ExpectationOfEmptyCountsIsZero)
{
    EXPECT_DOUBLE_EQ(countsExpectationZMask({}, 1), 0.0);
}

} // namespace
} // namespace qismet
