/**
 * @file
 * Fused-vs-unfused equivalence: for 50 seeded random circuits over the
 * full gate set, the compiled (fused) execution path must agree with
 * the legacy gate-by-gate path to 1e-12 on both simulators, and the
 * compiled path must itself be bit-identical run-to-run and at every
 * thread count (the kernels are single-threaded pure functions, and the
 * threaded energy estimator builds on exactly that invariant).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "ansatz/real_amplitudes.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "hamiltonian/tfim.hpp"
#include "noise/machine_model.hpp"
#include "sim/compiled_circuit.hpp"
#include "sim/density_matrix.hpp"
#include "sim/statevector.hpp"
#include "vqe/energy_estimator.hpp"

namespace qismet {
namespace {

/** Random circuit over the full gate set (entanglers when width > 1). */
Circuit
randomCircuit(int num_qubits, int num_gates, Rng &rng)
{
    Circuit c(num_qubits);
    for (int g = 0; g < num_gates; ++g) {
        const int q = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(num_qubits)));
        const std::uint64_t kind = rng.uniformInt(num_qubits > 1 ? 15 : 12);
        switch (kind) {
          case 0: c.h(q); break;
          case 1: c.x(q); break;
          case 2: c.y(q); break;
          case 3: c.z(q); break;
          case 4: c.s(q); break;
          case 5: c.sdg(q); break;
          case 6: c.t(q); break;
          case 7: c.tdg(q); break;
          case 8: c.sx(q); break;
          case 9: c.rx(q, rng.uniform(-M_PI, M_PI)); break;
          case 10: c.ry(q, rng.uniform(-M_PI, M_PI)); break;
          case 11: c.rz(q, rng.uniform(-M_PI, M_PI)); break;
          default: {
            int p = static_cast<int>(
                rng.uniformInt(static_cast<std::uint64_t>(num_qubits - 1)));
            if (p >= q)
                ++p; // distinct second qubit
            if (kind == 12)
                c.cx(q, p);
            else if (kind == 13)
                c.cz(q, p);
            else
                c.swap(q, p);
            break;
          }
        }
    }
    return c;
}

/** (width, generator-seed) grid giving 50 distinct random circuits. */
class FusionEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(FusionEquivalenceTest, StatevectorFusedMatchesUnfused)
{
    const int n = std::get<0>(GetParam());
    const int seed = std::get<1>(GetParam());
    Rng rng(static_cast<std::uint64_t>(31000 * n + seed));
    const Circuit circuit = randomCircuit(n, 8 * n + 14, rng);

    Statevector unfused(n);
    for (const Gate &g : circuit.gates())
        unfused.applyGate(g);

    // Default policy, plus the aggressive 2q-absorption variant the
    // Auto width gate would normally hold back on small registers.
    CompileOptions aggressive;
    aggressive.absorb2q = CompileOptions::Absorb2q::Always;
    for (const CompiledCircuit &cc :
         {CompiledCircuit(circuit), CompiledCircuit(circuit, aggressive)}) {
        Statevector fused(n);
        fused.run(cc);
        ASSERT_EQ(fused.dim(), unfused.dim());
        for (std::size_t i = 0; i < fused.dim(); ++i) {
            EXPECT_NEAR(fused.amplitudes()[i].real(),
                        unfused.amplitudes()[i].real(), 1e-12)
                << "amplitude " << i;
            EXPECT_NEAR(fused.amplitudes()[i].imag(),
                        unfused.amplitudes()[i].imag(), 1e-12)
                << "amplitude " << i;
        }
    }
}

TEST_P(FusionEquivalenceTest, DensityMatrixFusedMatchesUnfused)
{
    const int n = std::get<0>(GetParam());
    const int seed = std::get<1>(GetParam());
    Rng rng(static_cast<std::uint64_t>(47000 * n + seed));
    const Circuit circuit = randomCircuit(n, 6 * n + 10, rng);

    DensityMatrix unfused(n);
    for (const Gate &g : circuit.gates())
        unfused.applyGate(g);

    DensityMatrix fused(n);
    fused.run(CompiledCircuit(circuit));

    for (std::size_t r = 0; r < fused.dim(); ++r) {
        for (std::size_t c = 0; c < fused.dim(); ++c) {
            EXPECT_NEAR(fused.element(r, c).real(),
                        unfused.element(r, c).real(), 1e-12)
                << "rho(" << r << "," << c << ")";
            EXPECT_NEAR(fused.element(r, c).imag(),
                        unfused.element(r, c).imag(), 1e-12)
                << "rho(" << r << "," << c << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, FusionEquivalenceTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4,
                                                              5),
                                            ::testing::Range(0, 10)));

class GlobalThreadsGuard
{
  public:
    GlobalThreadsGuard() : saved_(ParallelExecutor::global().threads()) {}
    ~GlobalThreadsGuard() { ParallelExecutor::setGlobalThreads(saved_); }

  private:
    std::size_t saved_;
};

TEST(FusionThreadInvariance, SampledEnergiesBitIdenticalAcrossThreadCounts)
{
    // The threaded consumer of compiled circuits is the sampling
    // estimator: measurement groups fan out over the executor and every
    // worker runs the same compiled basis-change instances. The energy
    // stream must be byte-equal at 1/2/4/8 threads.
    GlobalThreadsGuard guard;
    const PauliSum hamiltonian = tfimHamiltonian({.numQubits = 4});
    const Circuit ansatz = RealAmplitudes(4, 2).build();
    const StaticNoiseModel noise = machineModel("guadalupe").staticModel();
    EstimatorConfig cfg;
    cfg.mode = EstimatorMode::Sampling;
    cfg.shots = 512;
    const EnergyEstimator est(hamiltonian, ansatz, noise, cfg);
    const std::vector<double> theta(
        static_cast<std::size_t>(ansatz.numParams()), 0.3);

    std::vector<std::vector<double>> streams;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        ParallelExecutor::setGlobalThreads(threads);
        Rng rng(2026);
        std::vector<double> energies;
        for (int i = 0; i < 5; ++i)
            energies.push_back(
                est.estimate(theta, 0.05 * i, rng, 1.0));
        streams.push_back(std::move(energies));
    }

    for (std::size_t k = 1; k < streams.size(); ++k)
        for (std::size_t i = 0; i < streams[0].size(); ++i)
            EXPECT_EQ(streams[k][i], streams[0][i])
                << "thread-count variant " << k << ", iteration " << i;
}

TEST(FusionThreadInvariance, CompiledAndLegacyPathsShareSampleStream)
{
    // The cached-CDF sampler must consume the RNG exactly like the
    // legacy probability-vector path: identical counts, same stream.
    Rng gen(404);
    const Circuit circuit = randomCircuit(4, 30, gen);
    Statevector sv(4);
    sv.run(circuit);

    Rng a(77), b(77);
    const std::vector<std::uint64_t> viaCdf = sv.sample(a, 4096);
    std::vector<std::uint64_t> viaProbs;
    {
        // Rebuild the CDF from probabilities() the way callers did
        // before the cache existed; the outcomes must be stream-equal.
        const std::vector<double> probs = sv.probabilities();
        std::vector<double> cdf(probs.size());
        double acc = 0.0;
        for (std::size_t i = 0; i < probs.size(); ++i) {
            acc += probs[i];
            cdf[i] = acc;
        }
        for (std::size_t s = 0; s < 4096; ++s) {
            const double u = b.uniform() * cdf.back();
            const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
            viaProbs.push_back(
                static_cast<std::uint64_t>(it - cdf.begin()));
        }
    }
    ASSERT_EQ(viaCdf.size(), viaProbs.size());
    for (std::size_t s = 0; s < viaCdf.size(); ++s)
        EXPECT_EQ(viaCdf[s], viaProbs[s]) << "shot " << s;
}

} // namespace
} // namespace qismet
