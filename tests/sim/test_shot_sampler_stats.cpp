/**
 * @file
 * Statistical validation of the shot sampler: chi-squared goodness of
 * fit of sampled counts against the exact distribution at fixed seeds
 * (with and without readout errors), and batch-API consistency with
 * the parallel engine's sub-stream splitting contract.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sim/shot_sampler.hpp"
#include "sim/statevector.hpp"

namespace qismet {
namespace {

/** Restores the global executor's thread count on scope exit. */
class GlobalThreadsGuard
{
  public:
    GlobalThreadsGuard() : saved_(ParallelExecutor::global().threads()) {}
    ~GlobalThreadsGuard() { ParallelExecutor::setGlobalThreads(saved_); }

  private:
    std::size_t saved_;
};

/**
 * Pearson chi-squared statistic of counts against expected
 * probabilities, pooling bins whose expectation is below 5 counts
 * (standard validity rule). Returns {statistic, degrees of freedom}.
 */
std::pair<double, int>
chiSquared(const Counts &counts, const std::vector<double> &probs,
           std::size_t shots)
{
    double stat = 0.0;
    int bins = 0;
    double pooled_expected = 0.0;
    double pooled_observed = 0.0;
    for (std::size_t b = 0; b < probs.size(); ++b) {
        const double expected = probs[b] * static_cast<double>(shots);
        const auto it = counts.find(b);
        const double observed =
            it == counts.end() ? 0.0 : static_cast<double>(it->second);
        if (expected < 5.0) {
            pooled_expected += expected;
            pooled_observed += observed;
            continue;
        }
        stat += (observed - expected) * (observed - expected) / expected;
        ++bins;
    }
    if (pooled_expected >= 5.0) {
        stat += (pooled_observed - pooled_expected) *
                (pooled_observed - pooled_expected) / pooled_expected;
        ++bins;
    }
    return {stat, bins - 1};
}

/** Upper chi-squared critical values at alpha = 0.001 for df = 1..32. */
double
chiSquaredCritical(int df)
{
    static const double kCritical[] = {
        10.83, 13.82, 16.27, 18.47, 20.52, 22.46, 24.32, 26.12,
        27.88, 29.59, 31.26, 32.91, 34.53, 36.12, 37.70, 39.25,
        40.79, 42.31, 43.82, 45.31, 46.80, 48.27, 49.73, 51.18,
        52.62, 54.05, 55.48, 56.89, 58.30, 59.70, 61.10, 62.49};
    if (df < 1 || df > 32)
        throw std::invalid_argument("chiSquaredCritical: df out of table");
    return kCritical[df - 1];
}

/** Readout-corrupted distribution, computed analytically per qubit. */
std::vector<double>
applyReadoutToDistribution(const std::vector<double> &probs, int num_qubits,
                           const std::vector<ReadoutError> &readout)
{
    std::vector<double> out = probs;
    for (int q = 0; q < num_qubits; ++q) {
        std::vector<double> next(out.size(), 0.0);
        const std::uint64_t bit = std::uint64_t{1} << q;
        for (std::size_t b = 0; b < out.size(); ++b) {
            const bool is_one = b & bit;
            const double flip = is_one ? readout[q].p01 : readout[q].p10;
            next[b] += out[b] * (1.0 - flip);
            next[b ^ bit] += out[b] * flip;
        }
        out = std::move(next);
    }
    return out;
}

TEST(ShotSamplerStats, ChiSquaredUniformDistribution)
{
    // 3 qubits, uniform over 8 outcomes.
    const int n = 3;
    const std::vector<double> probs(8, 1.0 / 8.0);
    const std::size_t shots = 40000;
    const ShotSampler sampler;
    // Several fixed seeds: the test is deterministic, and multiple
    // draws guard against one lucky pass.
    for (std::uint64_t seed : {3u, 17u, 251u}) {
        Rng rng(seed);
        const Counts counts = sampler.sample(probs, n, shots, rng);
        const auto [stat, df] = chiSquared(counts, probs, shots);
        ASSERT_GE(df, 1);
        EXPECT_LT(stat, chiSquaredCritical(df)) << "seed " << seed;
    }
}

TEST(ShotSamplerStats, ChiSquaredSkewedDistribution)
{
    // A strongly non-uniform 4-qubit distribution from a product state.
    const int n = 4;
    Statevector sv(n);
    Circuit c(n);
    c.ry(0, 0.4).ry(1, 1.1).ry(2, 2.3).h(3);
    sv.run(c);
    const auto probs = sv.probabilities();
    const std::size_t shots = 60000;
    const ShotSampler sampler;
    for (std::uint64_t seed : {5u, 23u, 407u}) {
        Rng rng(seed);
        const Counts counts = sampler.sample(probs, n, shots, rng);
        const auto [stat, df] = chiSquared(counts, probs, shots);
        ASSERT_GE(df, 1);
        EXPECT_LT(stat, chiSquaredCritical(df)) << "seed " << seed;
    }
}

TEST(ShotSamplerStats, ChiSquaredThroughReadoutChannel)
{
    // Counts must fit the analytically readout-corrupted distribution,
    // not the ideal one.
    const int n = 2;
    const std::vector<double> probs = {0.55, 0.25, 0.15, 0.05};
    const std::vector<ReadoutError> readout = {{0.02, 0.08}, {0.01, 0.05}};
    const auto corrupted = applyReadoutToDistribution(probs, n, readout);
    // High shot count so the readout bias (~1% mass shifted) is far past
    // the critical value for the "does NOT fit ideal" half of the test.
    const std::size_t shots = 200000;
    const ShotSampler sampler(readout);
    for (std::uint64_t seed : {11u, 73u}) {
        Rng rng(seed);
        const Counts counts = sampler.sample(probs, n, shots, rng);
        const auto [stat, df] = chiSquared(counts, corrupted, shots);
        ASSERT_GE(df, 1);
        EXPECT_LT(stat, chiSquaredCritical(df)) << "seed " << seed;
        // And it must NOT fit the ideal distribution: the readout
        // asymmetry (p01 > p10) shifts enough mass at this shot count
        // that the statistic blows past the critical value.
        const auto [stat_ideal, df_ideal] = chiSquared(counts, probs, shots);
        EXPECT_GT(stat_ideal, chiSquaredCritical(df_ideal))
            << "seed " << seed;
    }
}

TEST(ShotSamplerStats, BatchMatchesSequentialSplits)
{
    // sampleBatch must equal sampling each distribution with the
    // sub-streams split() would produce in index order — at any thread
    // count.
    const int n = 3;
    Statevector sv(n);
    Circuit c(n);
    c.h(0).cx(0, 1).ry(2, 0.7);
    sv.run(c);
    const std::vector<std::vector<double>> batch(6, sv.probabilities());
    const std::size_t shots = 512;
    const ShotSampler sampler;

    Rng reference(99);
    std::vector<Counts> expected;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        Rng sub = reference.split();
        expected.push_back(sampler.sample(batch[i], n, shots, sub));
    }

    GlobalThreadsGuard guard;
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ParallelExecutor::setGlobalThreads(threads);
        Rng rng(99);
        const auto got = sampler.sampleBatch(batch, n, shots, rng);
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], expected[i]) << "distribution " << i
                                           << " threads " << threads;
    }
}

} // namespace
} // namespace qismet
