/** @file Tests for the density-matrix simulator and noise channels. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sim/density_matrix.hpp"

namespace qismet {
namespace {

Circuit
randomCircuit(int num_qubits, int num_gates, Rng &rng)
{
    Circuit c(num_qubits);
    for (int i = 0; i < num_gates; ++i) {
        const int q = static_cast<int>(rng.uniformInt(num_qubits));
        switch (rng.uniformInt(5)) {
          case 0: c.h(q); break;
          case 1: c.rx(q, rng.uniform(-3.0, 3.0)); break;
          case 2: c.ry(q, rng.uniform(-3.0, 3.0)); break;
          case 3: c.rz(q, rng.uniform(-3.0, 3.0)); break;
          default: {
            int q2 = static_cast<int>(rng.uniformInt(num_qubits));
            if (q2 == q)
                q2 = (q + 1) % num_qubits;
            c.cx(q, q2);
          }
        }
    }
    return c;
}

TEST(DensityMatrix, InitialStateIsPureGround)
{
    DensityMatrix rho(2);
    EXPECT_DOUBLE_EQ(rho.trace(), 1.0);
    EXPECT_DOUBLE_EQ(rho.purity(), 1.0);
    EXPECT_DOUBLE_EQ(rho.probabilities()[0], 1.0);
}

class PureStateAgreementTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PureStateAgreementTest, MatchesStatevectorOnRandomCircuits)
{
    Rng rng(GetParam());
    const Circuit c = randomCircuit(3, 40, rng);

    Statevector st(3);
    st.run(c);
    DensityMatrix rho(3);
    rho.run(c);

    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
    EXPECT_NEAR(rho.fidelity(st), 1.0, 1e-10);

    const auto p_sv = st.probabilities();
    const auto p_dm = rho.probabilities();
    for (std::size_t i = 0; i < p_sv.size(); ++i)
        EXPECT_NEAR(p_sv[i], p_dm[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PureStateAgreementTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(DensityMatrix, FromStatevector)
{
    Statevector st(2);
    Circuit c(2);
    c.h(0).cx(0, 1);
    st.run(c);
    DensityMatrix rho(st);
    EXPECT_NEAR(rho.fidelity(st), 1.0, 1e-12);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
}

class ChannelTracePreservationTest
    : public ::testing::TestWithParam<double>
{
};

TEST_P(ChannelTracePreservationTest, AllChannelsPreserveTrace)
{
    const double p = GetParam();
    Rng rng(5);
    DensityMatrix rho(2);
    rho.run(randomCircuit(2, 15, rng));

    rho.applyChannel1q(0, KrausChannel::depolarizing1q(p));
    rho.applyChannel1q(1, KrausChannel::amplitudeDamping(p));
    rho.applyChannel1q(0, KrausChannel::phaseDamping(p));
    rho.applyChannel1q(1, KrausChannel::bitFlip(p));
    rho.applyChannel2q(0, 1, KrausChannel::depolarizing2q(p));
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, ChannelTracePreservationTest,
                         ::testing::Values(0.0, 0.01, 0.1, 0.5, 1.0));

TEST(DensityMatrix, DepolarizingReducesPurity)
{
    DensityMatrix rho(1);
    Circuit c(1);
    c.h(0);
    rho.run(c);
    const double before = rho.purity();
    rho.applyChannel1q(0, KrausChannel::depolarizing1q(0.2));
    EXPECT_LT(rho.purity(), before);
}

TEST(DensityMatrix, FullDepolarizingGivesMaximallyMixed)
{
    DensityMatrix rho(1);
    Circuit c(1);
    c.h(0);
    rho.run(c);
    rho.applyChannel1q(0, KrausChannel::depolarizing1q(1.0));
    EXPECT_NEAR(rho.purity(), 0.5, 1e-10);
    EXPECT_NEAR(rho.probabilities()[0], 0.5, 1e-10);
}

TEST(DensityMatrix, AmplitudeDampingFixedPoint)
{
    // |0><0| is invariant under amplitude damping.
    DensityMatrix rho(1);
    rho.applyChannel1q(0, KrausChannel::amplitudeDamping(0.7));
    EXPECT_NEAR(rho.probabilities()[0], 1.0, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingDecaysExcited)
{
    DensityMatrix rho(1);
    Circuit c(1);
    c.x(0);
    rho.run(c);
    rho.applyChannel1q(0, KrausChannel::amplitudeDamping(0.25));
    EXPECT_NEAR(rho.probabilities()[1], 0.75, 1e-12);
    EXPECT_NEAR(rho.probabilities()[0], 0.25, 1e-12);
}

TEST(DensityMatrix, PhaseDampingKillsCoherenceOnly)
{
    DensityMatrix rho(1);
    Circuit c(1);
    c.h(0);
    rho.run(c);
    rho.applyChannel1q(0, KrausChannel::phaseDamping(1.0));
    // Populations untouched, off-diagonals gone.
    EXPECT_NEAR(rho.probabilities()[0], 0.5, 1e-12);
    EXPECT_NEAR(std::abs(rho.element(0, 1)), 0.0, 1e-12);
}

TEST(DensityMatrix, ExpectationOfObservable)
{
    DensityMatrix rho(1);
    Circuit c(1);
    c.x(0);
    rho.run(c);
    Matrix z = Matrix::fromRows({{1, 0}, {0, -1}});
    EXPECT_NEAR(rho.expectation(z), -1.0, 1e-12);
}

TEST(DensityMatrix, ChannelArityValidation)
{
    DensityMatrix rho(2);
    EXPECT_THROW(rho.applyChannel1q(0, KrausChannel::depolarizing2q(0.1)),
                 std::invalid_argument);
    EXPECT_THROW(rho.applyChannel2q(0, 1, KrausChannel::depolarizing1q(0.1)),
                 std::invalid_argument);
    EXPECT_THROW(rho.applyChannel2q(1, 1, KrausChannel::depolarizing2q(0.1)),
                 std::invalid_argument);
}

TEST(DensityMatrix, ThermalRelaxationMovesTowardGround)
{
    DensityMatrix rho(1);
    Circuit c(1);
    c.x(0);
    rho.run(c);
    // Duration equal to T1: excited population should drop to e^-1.
    rho.applyChannel1q(0, KrausChannel::thermalRelaxation(1000.0, 800.0,
                                                          1000.0));
    EXPECT_NEAR(rho.probabilities()[1], std::exp(-1.0), 1e-9);
}

} // namespace
} // namespace qismet
