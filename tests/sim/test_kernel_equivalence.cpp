/**
 * @file
 * Randomized differential battery for the SIMD + parallel kernel layer
 * (sim/kernels.hpp): 500+ seeded cases across dense 2x2 (complex and
 * real fast path), dense 4x4 (including low-bit-adjacent quartets),
 * merged diagonal tables, the three permutation kernels, and the
 * density-matrix Kraus sweeps, at 2-12 qubits (Kraus capped at 8 for
 * memory).
 *
 * Three comparisons per kernel class, matching the rounding contract in
 * sim/kernels.hpp:
 *
 *   - **SIMD vs scalar**: byte-identical (memcmp). FP contraction is
 *     off and both paths round every multiply/add individually, so the
 *     AVX2 lanes must reproduce the scalar bits exactly.
 *   - **new vs legacy**: the pre-SIMD loop bodies are copied verbatim
 *     into this file as references; amplitudes must compare equal
 *     (operator==, so a -0.0 vs +0.0 from the real-matrix fast path is
 *     not a failure — the fast path elides `x - 0*y` terms).
 *   - **split vs interleaved layout**: byte-identical after unpacking.
 *
 * The Kraus sweeps are additionally checked against a naive dense
 * embedding (full-matrix K rho K^dagger) — a genuinely different
 * summation order, so that comparison is ULP-bounded, not exact.
 *
 * Half the seeds run with the intra-state parallel threshold forced to
 * 64 elements so the fixed-block partition is exercised even at small
 * widths; blocked and serial sweeps must agree bit-for-bit.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <tuple>
#include <utility>
#include <vector>

#include "common/amp_span.hpp"
#include "common/block_partition.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "sim/compiled_circuit.hpp"
#include "sim/density_matrix.hpp"
#include "sim/kernels.hpp"
#include "sim/kraus.hpp"
#include "sim/statevector.hpp"

namespace qismet {
namespace {

/** Restore the effective SIMD switch on scope exit. */
class SimdGuard
{
  public:
    SimdGuard() : saved_(simdEnabled()) {}
    ~SimdGuard() { setSimdEnabled(saved_); }

  private:
    bool saved_;
};

/** Restore the default parallel threshold on scope exit. */
class ThresholdGuard
{
  public:
    ~ThresholdGuard() { setIntraStateParallelThreshold(0); }
};

/** Map a double to a monotone integer so ULP distance is a subtraction. */
std::int64_t
monotoneKey(double x)
{
    const auto b = std::bit_cast<std::int64_t>(x);
    return b >= 0 ? b : std::numeric_limits<std::int64_t>::min() - b;
}

std::uint64_t
ulpDiff(double a, double b)
{
    if (a == b)
        return 0;
    // Subtract in unsigned space: key distances can exceed INT64_MAX
    // (e.g. +2.0 vs -2.0) and signed overflow would be UB under UBSan.
    const std::int64_t ka = monotoneKey(a);
    const std::int64_t kb = monotoneKey(b);
    return ka >= kb ? static_cast<std::uint64_t>(ka) -
                          static_cast<std::uint64_t>(kb)
                    : static_cast<std::uint64_t>(kb) -
                          static_cast<std::uint64_t>(ka);
}

/** ULP-bounded comparison for differently-ordered summations. */
void
expectClose(Complex a, Complex b, const char *what, std::size_t i)
{
    EXPECT_TRUE(ulpDiff(a.real(), b.real()) <= 256 ||
                std::abs(a.real() - b.real()) <= 1e-13)
        << what << "[" << i << "].re: " << a.real() << " vs " << b.real();
    EXPECT_TRUE(ulpDiff(a.imag(), b.imag()) <= 256 ||
                std::abs(a.imag() - b.imag()) <= 1e-13)
        << what << "[" << i << "].im: " << a.imag() << " vs " << b.imag();
}

std::vector<Complex>
randomState(std::size_t n, Rng &rng)
{
    std::vector<Complex> a(n);
    for (auto &x : a)
        x = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    return a;
}

void
randomComplexArray(Complex *m, std::size_t n, Rng &rng)
{
    for (std::size_t i = 0; i < n; ++i)
        m[i] = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
}

/** Byte-level equality of two amplitude vectors (exact bit identity). */
void
expectBitIdentical(const std::vector<Complex> &a,
                   const std::vector<Complex> &b, const char *what)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(Complex)),
              0)
        << what << ": amplitude bytes differ";
}

/** Numeric equality (tolerates only -0.0 vs +0.0). */
void
expectValueEqual(const std::vector<Complex> &a,
                 const std::vector<Complex> &b, const char *what)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].real(), b[i].real()) << what << "[" << i << "].re";
        EXPECT_EQ(a[i].imag(), b[i].imag()) << what << "[" << i << "].im";
    }
}

// ---------------------------------------------------------------------
// Legacy references: verbatim copies of the pre-SIMD kernel loops (see
// kernels_scalar.cpp and the pre-refactor Statevector::apply* bodies).
// ---------------------------------------------------------------------

void
refDense1(std::vector<Complex> &a, int q, const Complex *m)
{
    const std::uint64_t stride = std::uint64_t{1} << q;
    for (std::uint64_t base = 0; base < a.size(); base += 2 * stride) {
        for (std::uint64_t off = 0; off < stride; ++off) {
            const std::uint64_t i0 = base + off;
            const std::uint64_t i1 = i0 + stride;
            const Complex a0 = a[i0];
            const Complex a1 = a[i1];
            a[i0] = m[0] * a0 + m[1] * a1;
            a[i1] = m[2] * a0 + m[3] * a1;
        }
    }
}

void
refDense2(std::vector<Complex> &a, int qm, int ql, const Complex *m)
{
    const std::uint64_t bm = std::uint64_t{1} << qm;
    const std::uint64_t bl = std::uint64_t{1} << ql;
    for (std::uint64_t i = 0; i < a.size(); ++i) {
        if (i & (bm | bl))
            continue;
        const std::uint64_t idx[4] = {i, i | bl, i | bm, i | bm | bl};
        Complex in[4];
        for (int k = 0; k < 4; ++k)
            in[k] = a[idx[k]];
        for (int r = 0; r < 4; ++r) {
            Complex acc(0.0, 0.0);
            for (int c = 0; c < 4; ++c)
                acc += m[r * 4 + c] * in[c];
            a[idx[r]] = acc;
        }
    }
}

void
refDiag(std::vector<Complex> &a, std::uint64_t mask, const Complex *table)
{
    const std::uint64_t comp = (a.size() - 1) & ~mask;
    const int t = std::popcount(mask);
    const std::uint64_t entries = std::uint64_t{1} << t;
    const Complex one(1.0, 0.0);
    for (std::uint64_t li = 0; li < entries; ++li) {
        const Complex d = table[li];
        if (d == one)
            continue;
        const std::uint64_t fixed = depositBits(li, mask);
        std::uint64_t s = 0;
        do {
            a[fixed | s] *= d;
            s = (s - comp) & comp;
        } while (s != 0);
    }
}

void
refPermX(std::vector<Complex> &a, int q)
{
    const std::uint64_t b = std::uint64_t{1} << q;
    for (std::uint64_t i = 0; i < a.size(); ++i)
        if (!(i & b))
            std::swap(a[i], a[i | b]);
}

void
refPermCX(std::vector<Complex> &a, int qc, int qt)
{
    const std::uint64_t cbit = std::uint64_t{1} << qc;
    const std::uint64_t tbit = std::uint64_t{1} << qt;
    for (std::uint64_t i = 0; i < a.size(); ++i)
        if ((i & cbit) && !(i & tbit))
            std::swap(a[i], a[i | tbit]);
}

void
refPermSwap(std::vector<Complex> &a, int qa, int qb)
{
    const std::uint64_t ba = std::uint64_t{1} << qa;
    const std::uint64_t bb = std::uint64_t{1} << qb;
    for (std::uint64_t i = 0; i < a.size(); ++i)
        if ((i & ba) && !(i & bb))
            std::swap(a[i], a[(i ^ ba) | bb]);
}

/**
 * Run `apply` against one random state three ways — scalar, SIMD (when
 * available) and split-complex layout — plus the legacy reference, and
 * assert the contract. `apply` must mutate through the span only.
 */
template <typename ApplyFn, typename RefFn>
void
differentialCase(std::size_t dim, Rng &rng, ApplyFn apply, RefFn ref)
{
    const std::vector<Complex> init = randomState(dim, rng);

    std::vector<Complex> legacy = init;
    ref(legacy);

    SimdGuard simdGuard;
    setSimdEnabled(false);
    std::vector<Complex> scalar = init;
    apply(AmpSpan::interleaved(scalar.data(), scalar.size()));
    expectValueEqual(scalar, legacy, "scalar-vs-legacy");

    if (simdAvailable()) {
        setSimdEnabled(true);
        std::vector<Complex> simd = init;
        apply(AmpSpan::interleaved(simd.data(), simd.size()));
        expectBitIdentical(simd, scalar, "simd-vs-scalar");
    }

    SplitAmpBuffer split;
    split.pack(init);
    apply(split.span());
    std::vector<Complex> unpacked;
    split.unpackInto(unpacked);
    expectBitIdentical(unpacked, scalar, "split-vs-interleaved");
}

/** (qubits, seed) grid; odd seeds force the blocked partition on. */
class KernelEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    void SetUp() override
    {
        if (std::get<1>(GetParam()) % 2 == 1)
            setIntraStateParallelThreshold(64);
    }

    int numQubits() const { return std::get<0>(GetParam()); }
    std::size_t dim() const
    {
        return std::size_t{1} << numQubits();
    }
    Rng makeRng(std::uint64_t salt) const
    {
        return Rng(salt * 1000003 +
                   static_cast<std::uint64_t>(101 * std::get<0>(GetParam()) +
                                              std::get<1>(GetParam())));
    }

  private:
    ThresholdGuard thresholdGuard_;
};

TEST_P(KernelEquivalenceTest, Dense1)
{
    Rng rng = makeRng(1);
    const int n = numQubits();

    // Complex matrix on a random qubit, plus the q==0 adjacent-pair
    // walk, plus a real matrix (exercises the real fast path, which the
    // whole-state entry point selects by inspecting the matrix).
    for (const int q : {static_cast<int>(rng.uniformInt(
                            static_cast<std::uint64_t>(n))),
                        0}) {
        Complex m[4];
        randomComplexArray(m, 4, rng);
        differentialCase(
            dim(), rng,
            [&](const AmpSpan &s) { kern::applyDense1(s, q, m); },
            [&](std::vector<Complex> &a) { refDense1(a, q, m); });

        Complex mr[4];
        for (int i = 0; i < 4; ++i)
            mr[i] = Complex(rng.uniform(-1.0, 1.0), 0.0);
        differentialCase(
            dim(), rng,
            [&](const AmpSpan &s) { kern::applyDense1(s, q, mr); },
            [&](std::vector<Complex> &a) { refDense1(a, q, mr); });
    }
}

TEST_P(KernelEquivalenceTest, Dense2)
{
    Rng rng = makeRng(2);
    const int n = numQubits();

    // A random distinct pair plus a pair touching qubit 0 (the
    // low-bit-adjacent quartet path that cannot vectorize across runs).
    int qa = static_cast<int>(rng.uniformInt(static_cast<std::uint64_t>(n)));
    int qb = static_cast<int>(
        rng.uniformInt(static_cast<std::uint64_t>(n - 1)));
    if (qb >= qa)
        ++qb;
    const std::pair<int, int> pairs[2] = {{qa, qb}, {n - 1, 0}};
    for (const auto &[qm, ql] : pairs) {
        Complex m[16];
        randomComplexArray(m, 16, rng);
        differentialCase(
            dim(), rng,
            [&](const AmpSpan &s) { kern::applyDense2(s, qm, ql, m); },
            [&](std::vector<Complex> &a) { refDense2(a, qm, ql, m); });
    }
}

TEST_P(KernelEquivalenceTest, Diag)
{
    Rng rng = makeRng(3);
    const int n = numQubits();

    // Random qubit subset; force some exact-one entries so the skip
    // branch (which preserves -0.0 signs) is exercised.
    std::uint64_t mask = 0;
    for (int q = 0; q < n; ++q)
        if (rng.bernoulli(0.5))
            mask |= std::uint64_t{1} << q;
    if (mask == 0)
        mask = 1;
    const std::uint64_t entries = std::uint64_t{1}
                                  << std::popcount(mask);
    std::vector<Complex> table(entries);
    for (auto &d : table)
        d = rng.bernoulli(0.25)
                ? Complex(1.0, 0.0)
                : Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    differentialCase(
        dim(), rng,
        [&](const AmpSpan &s) { kern::applyDiag(s, mask, table.data()); },
        [&](std::vector<Complex> &a) { refDiag(a, mask, table.data()); });
}

TEST_P(KernelEquivalenceTest, Permutations)
{
    Rng rng = makeRng(4);
    const int n = numQubits();
    const int q = static_cast<int>(
        rng.uniformInt(static_cast<std::uint64_t>(n)));
    int p = static_cast<int>(
        rng.uniformInt(static_cast<std::uint64_t>(n - 1)));
    if (p >= q)
        ++p;

    differentialCase(
        dim(), rng,
        [&](const AmpSpan &s) { kern::applyPermX(s, q); },
        [&](std::vector<Complex> &a) { refPermX(a, q); });
    differentialCase(
        dim(), rng,
        [&](const AmpSpan &s) { kern::applyPermCX(s, q, p); },
        [&](std::vector<Complex> &a) { refPermCX(a, q, p); });
    differentialCase(
        dim(), rng,
        [&](const AmpSpan &s) { kern::applyPermSwap(s, q, p); },
        [&](std::vector<Complex> &a) { refPermSwap(a, q, p); });
}

TEST_P(KernelEquivalenceTest, OrderedReductions)
{
    Rng rng = makeRng(5);
    const std::vector<Complex> a = randomState(dim(), rng);
    const std::vector<Complex> b = randomState(dim(), rng);
    std::uint64_t mask = 0;
    for (int q = 0; q < numQubits(); ++q)
        if (rng.bernoulli(0.5))
            mask |= std::uint64_t{1} << q;

    const AmpSpan sa = AmpSpan::interleaved(
        const_cast<Complex *>(a.data()), a.size());
    const AmpSpan sb = AmpSpan::interleaved(
        const_cast<Complex *>(b.data()), b.size());

    // Reductions are scalar arithmetic on both SIMD settings (the
    // dispatch only affects the elementwise kernels), so the bits must
    // not move when the switch flips.
    SimdGuard simdGuard;
    setSimdEnabled(false);
    const double n2Off = kern::norm2(sa);
    const Complex ipOff = kern::innerProduct(sa, sb);
    const double ezOff = kern::expectationZMask(sa, mask);
    setSimdEnabled(true);
    EXPECT_EQ(kern::norm2(sa), n2Off);
    EXPECT_EQ(kern::innerProduct(sa, sb), ipOff);
    EXPECT_EQ(kern::expectationZMask(sa, mask), ezOff);

    // Split layout loads the same values, so same bits again.
    SplitAmpBuffer splitA, splitB;
    splitA.pack(a);
    splitB.pack(b);
    EXPECT_EQ(kern::norm2(splitA.span()), n2Off);
    EXPECT_EQ(kern::innerProduct(splitA.span(), splitB.span()), ipOff);
    EXPECT_EQ(kern::expectationZMask(splitA.span(), mask), ezOff);
}

INSTANTIATE_TEST_SUITE_P(Random, KernelEquivalenceTest,
                         ::testing::Combine(::testing::Range(2, 13),
                                            ::testing::Range(0, 10)));

// ---------------------------------------------------------------------
// Whole-circuit differential: compiled-kernel execution vs the legacy
// gate-by-gate path. Fusion reorders products, so this comparison is
// tolerance-bounded — it pins semantics, not bits (the bit-level
// contract is covered per-kernel above).
// ---------------------------------------------------------------------

TEST(KernelCircuitEquivalence, CompiledMatchesLegacySimdOnAndOff)
{
    for (const int n : {4, 7, 10}) {
        Rng rng(static_cast<std::uint64_t>(7100 + n));
        Circuit c(n);
        for (int g = 0; g < 6 * n; ++g) {
            const int q = static_cast<int>(
                rng.uniformInt(static_cast<std::uint64_t>(n)));
            int p = static_cast<int>(
                rng.uniformInt(static_cast<std::uint64_t>(n - 1)));
            if (p >= q)
                ++p;
            switch (rng.uniformInt(6)) {
              case 0: c.h(q); break;
              case 1: c.rx(q, rng.uniform(-M_PI, M_PI)); break;
              case 2: c.rz(q, rng.uniform(-M_PI, M_PI)); break;
              case 3: c.cx(q, p); break;
              case 4: c.cz(q, p); break;
              default: c.swap(q, p); break;
            }
        }

        Statevector legacy(n);
        for (const Gate &g : c.gates())
            legacy.applyGate(g);

        SimdGuard simdGuard;
        const CompiledCircuit cc(c);
        setSimdEnabled(false);
        Statevector scalar(n);
        scalar.run(cc);
        for (std::size_t i = 0; i < scalar.dim(); ++i) {
            EXPECT_NEAR(scalar.amplitudes()[i].real(),
                        legacy.amplitudes()[i].real(), 1e-12);
            EXPECT_NEAR(scalar.amplitudes()[i].imag(),
                        legacy.amplitudes()[i].imag(), 1e-12);
        }

        if (simdAvailable()) {
            setSimdEnabled(true);
            Statevector simd(n);
            simd.run(cc);
            expectBitIdentical(simd.amplitudes(), scalar.amplitudes(),
                               "compiled simd-vs-scalar");
        }
    }
}

// ---------------------------------------------------------------------
// Kraus sweeps (density matrix).
// ---------------------------------------------------------------------

/** Embed a w x w operator over `qubits` (MSB first) into the full dim. */
Matrix
embedOperator(const Matrix &op, const std::vector<int> &qubits, int n)
{
    const std::size_t dim = std::size_t{1} << n;
    std::uint64_t mask = 0;
    for (const int q : qubits)
        mask |= std::uint64_t{1} << q;
    const auto localIndex = [&](std::uint64_t full) {
        std::uint64_t l = 0;
        for (const int q : qubits)
            l = (l << 1) | ((full >> q) & 1);
        return l;
    };
    Matrix f(dim, dim);
    for (std::uint64_t r = 0; r < dim; ++r)
        for (std::uint64_t c = 0; c < dim; ++c)
            if ((r & ~mask) == (c & ~mask))
                f(r, c) = op(localIndex(r), localIndex(c));
    return f;
}

Matrix
densityToMatrix(const DensityMatrix &rho)
{
    Matrix m(rho.dim(), rho.dim());
    for (std::size_t r = 0; r < rho.dim(); ++r)
        for (std::size_t c = 0; c < rho.dim(); ++c)
            m(r, c) = rho.element(r, c);
    return m;
}

DensityMatrix
randomDensity(int n, Rng &rng)
{
    // A random pure state is enough: the sweeps never look at
    // Hermiticity, and a rank-1 rho keeps the reference cheap.
    std::vector<Complex> amps = randomState(std::size_t{1} << n, rng);
    return DensityMatrix(Statevector(std::move(amps)));
}

KrausChannel
randomChannel(int width, Rng &rng)
{
    switch (rng.uniformInt(4)) {
      case 0:
        return width == 1
                   ? KrausChannel::depolarizing1q(rng.uniform(0.01, 0.3))
                   : KrausChannel::depolarizing2q(rng.uniform(0.01, 0.3));
      case 1:
        return width == 1
                   ? KrausChannel::amplitudeDamping(rng.uniform(0.01, 0.5))
                   : KrausChannel::depolarizing2q(rng.uniform(0.01, 0.2));
      case 2:
        return width == 1
                   ? KrausChannel::phaseDamping(rng.uniform(0.01, 0.5))
                   : KrausChannel::depolarizing2q(rng.uniform(0.05, 0.4));
      default:
        return width == 1 ? KrausChannel::bitFlip(rng.uniform(0.01, 0.4))
                          : KrausChannel::depolarizing2q(
                                rng.uniform(0.1, 0.5));
    }
}

class KrausEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    void SetUp() override
    {
        if (std::get<1>(GetParam()) % 2 == 1)
            setIntraStateParallelThreshold(64);
    }

  private:
    ThresholdGuard thresholdGuard_;
};

TEST_P(KrausEquivalenceTest, SweepMatchesDenseReference)
{
    const int n = std::get<0>(GetParam());
    const int seed = std::get<1>(GetParam());
    Rng rng(static_cast<std::uint64_t>(8300 * n + seed));

    DensityMatrix rho = randomDensity(n, rng);
    const Matrix before = densityToMatrix(rho);

    const KrausChannel ch1 = randomChannel(1, rng);
    const int q = static_cast<int>(
        rng.uniformInt(static_cast<std::uint64_t>(n)));
    rho.applyChannel1q(q, ch1);

    Matrix expected(before.rows(), before.cols());
    for (const Matrix &k : ch1.operators()) {
        const Matrix f = embedOperator(k, {q}, n);
        expected += f * before * f.adjoint();
    }
    const Matrix after1 = densityToMatrix(rho);
    for (std::size_t r = 0; r < expected.rows(); ++r)
        for (std::size_t c = 0; c < expected.cols(); ++c)
            expectClose(after1(r, c), expected(r, c), "kraus1q",
                        r * expected.cols() + c);

    if (n >= 2) {
        const KrausChannel ch2 = randomChannel(2, rng);
        const int q1 = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(n)));
        int q0 = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(n - 1)));
        if (q0 >= q1)
            ++q0;
        rho.applyChannel2q(q1, q0, ch2);

        Matrix expected2(after1.rows(), after1.cols());
        for (const Matrix &k : ch2.operators()) {
            const Matrix f = embedOperator(k, {q1, q0}, n);
            expected2 += f * after1 * f.adjoint();
        }
        const Matrix after2 = densityToMatrix(rho);
        for (std::size_t r = 0; r < expected2.rows(); ++r)
            for (std::size_t c = 0; c < expected2.cols(); ++c)
                expectClose(after2(r, c), expected2(r, c), "kraus2q",
                            r * expected2.cols() + c);
    }
}

INSTANTIATE_TEST_SUITE_P(Random, KrausEquivalenceTest,
                         ::testing::Combine(::testing::Range(2, 7),
                                            ::testing::Range(0, 8)));

class KrausSimdBitIdentityTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(KrausSimdBitIdentityTest, SimdOnOffBitIdentical)
{
    if (!simdAvailable())
        GTEST_SKIP() << "no AVX2 on this host";
    const int n = std::get<0>(GetParam());
    const int seed = std::get<1>(GetParam());
    Rng rng(static_cast<std::uint64_t>(9400 * n + seed));

    const DensityMatrix init = randomDensity(n, rng);
    const KrausChannel ch1 = randomChannel(1, rng);
    const KrausChannel ch2 = randomChannel(2, rng);
    const int q = static_cast<int>(
        rng.uniformInt(static_cast<std::uint64_t>(n)));
    const int q1 = (q + 1) % n;

    SimdGuard simdGuard;
    const auto runBoth = [&](bool simd) {
        setSimdEnabled(simd);
        DensityMatrix rho = init;
        rho.applyChannel1q(q, ch1);
        rho.applyChannel2q(q1, q, ch2);
        return densityToMatrix(rho);
    };
    const Matrix off = runBoth(false);
    const Matrix on = runBoth(true);
    EXPECT_EQ(std::memcmp(off.data().data(), on.data().data(),
                          off.data().size() * sizeof(Complex)),
              0)
        << "Kraus sweep bits differ between SIMD on and off";
}

INSTANTIATE_TEST_SUITE_P(Random, KrausSimdBitIdentityTest,
                         ::testing::Combine(::testing::Range(2, 9),
                                            ::testing::Range(0, 4)));

} // namespace
} // namespace qismet
