/**
 * @file
 * Thread-count determinism for the intra-state parallel kernels: the
 * fixed-block partition (common/block_partition.hpp) is a pure function
 * of the problem size, so amplitudes, density-matrix elements and every
 * ordered reduction must be **byte-identical** at 1/2/4/8 worker
 * threads. The widths straddle the parallel threshold (default 1024
 * elements): a 9-qubit statevector stays on the serial path, 10 sits
 * exactly on the boundary, 11 is above it; the density-matrix sizes do
 * the same in dim^2 elements (5 qubits = 1024).
 *
 * Also pinned here: flipping the threshold itself never changes
 * elementwise-kernel bits (only reductions regroup across the
 * threshold, by design — the serial side keeps the legacy summation
 * order), and within any one threshold setting the reductions are
 * bit-stable across thread counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <tuple>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/block_partition.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "sim/compiled_circuit.hpp"
#include "sim/density_matrix.hpp"
#include "sim/kraus.hpp"
#include "sim/statevector.hpp"

namespace qismet {
namespace {

class GlobalThreadsGuard
{
  public:
    GlobalThreadsGuard() : saved_(ParallelExecutor::global().threads()) {}
    ~GlobalThreadsGuard() { ParallelExecutor::setGlobalThreads(saved_); }

  private:
    std::size_t saved_;
};

class ThresholdGuard
{
  public:
    ~ThresholdGuard() { setIntraStateParallelThreshold(0); }
};

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

Circuit
randomKernelCircuit(int n, Rng &rng)
{
    // Mix that compiles into every kernel class: dense 2x2 (h/rx), 4x4
    // (fused entangler neighborhoods), diagonal runs (rz/cz/s/t) and
    // permutations (x/cx/swap).
    Circuit c(n);
    for (int g = 0; g < 8 * n; ++g) {
        const int q = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(n)));
        int p = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(n - 1)));
        if (p >= q)
            ++p;
        switch (rng.uniformInt(9)) {
          case 0: c.h(q); break;
          case 1: c.x(q); break;
          case 2: c.s(q); break;
          case 3: c.t(q); break;
          case 4: c.rx(q, rng.uniform(-M_PI, M_PI)); break;
          case 5: c.rz(q, rng.uniform(-M_PI, M_PI)); break;
          case 6: c.cx(q, p); break;
          case 7: c.cz(q, p); break;
          default: c.swap(q, p); break;
        }
    }
    return c;
}

struct SvRun
{
    std::vector<Complex> amps;
    double norm = 0.0;
    double ez = 0.0;
    Complex overlap;
};

SvRun
runStatevector(int n, const CompiledCircuit &cc)
{
    Statevector sv(n);
    sv.run(cc);
    Statevector ref(n); // |0..0>, fixed second operand for the overlap
    SvRun r;
    r.amps = sv.amplitudes();
    r.norm = sv.norm();
    r.ez = sv.expectationZMask((std::uint64_t{1} << n) - 1);
    r.overlap = sv.innerProduct(ref);
    return r;
}

class StatevectorThreadDeterminismTest
    : public ::testing::TestWithParam<int>
{
};

TEST_P(StatevectorThreadDeterminismTest, BitIdenticalAcrossThreadCounts)
{
    const int n = GetParam();
    GlobalThreadsGuard guard;
    Rng rng(static_cast<std::uint64_t>(5200 + n));
    const CompiledCircuit cc(randomKernelCircuit(n, rng));

    ParallelExecutor::setGlobalThreads(1);
    const SvRun base = runStatevector(n, cc);
    for (const std::size_t threads : kThreadCounts) {
        ParallelExecutor::setGlobalThreads(threads);
        const SvRun run = runStatevector(n, cc);
        EXPECT_EQ(std::memcmp(run.amps.data(), base.amps.data(),
                              base.amps.size() * sizeof(Complex)),
                  0)
            << n << " qubits: amplitudes differ at " << threads
            << " threads";
        EXPECT_EQ(run.norm, base.norm) << threads << " threads";
        EXPECT_EQ(run.ez, base.ez) << threads << " threads";
        EXPECT_EQ(run.overlap, base.overlap) << threads << " threads";
    }
}

// 9/10/11 qubits = 512/1024/2048 amplitudes: below, at, above the
// default 1024-element parallel threshold.
INSTANTIATE_TEST_SUITE_P(ThresholdBoundary,
                         StatevectorThreadDeterminismTest,
                         ::testing::Values(9, 10, 11));

struct DmRun
{
    std::vector<Complex> rho;
    double trace = 0.0;
    double purity = 0.0;
    double fidelity = 0.0;
};

DmRun
runDensityMatrix(int n, const Circuit &c, const KrausChannel &ch)
{
    DensityMatrix rho(n);
    rho.run(c);
    for (int q = 0; q < n; ++q)
        rho.applyChannel1q(q, ch);
    DmRun r;
    r.rho.reserve(rho.dim() * rho.dim());
    for (std::size_t i = 0; i < rho.dim(); ++i)
        for (std::size_t j = 0; j < rho.dim(); ++j)
            r.rho.push_back(rho.element(i, j));
    r.trace = rho.trace();
    r.purity = rho.purity();
    r.fidelity = rho.fidelity(Statevector(n));
    return r;
}

class DensityMatrixThreadDeterminismTest
    : public ::testing::TestWithParam<int>
{
};

TEST_P(DensityMatrixThreadDeterminismTest, BitIdenticalAcrossThreadCounts)
{
    const int n = GetParam();
    GlobalThreadsGuard guard;
    Rng rng(static_cast<std::uint64_t>(6300 + n));
    const Circuit c = randomKernelCircuit(n, rng);
    const KrausChannel ch = KrausChannel::amplitudeDamping(0.05).then(
        KrausChannel::phaseDamping(0.03));

    ParallelExecutor::setGlobalThreads(1);
    const DmRun base = runDensityMatrix(n, c, ch);
    for (const std::size_t threads : kThreadCounts) {
        ParallelExecutor::setGlobalThreads(threads);
        const DmRun run = runDensityMatrix(n, c, ch);
        EXPECT_EQ(std::memcmp(run.rho.data(), base.rho.data(),
                              base.rho.size() * sizeof(Complex)),
                  0)
            << n << " qubits: rho differs at " << threads << " threads";
        EXPECT_EQ(run.trace, base.trace) << threads << " threads";
        EXPECT_EQ(run.purity, base.purity) << threads << " threads";
        EXPECT_EQ(run.fidelity, base.fidelity) << threads << " threads";
    }
}

// 4/5/6 qubits = 256/1024/4096 density-matrix elements: below, at,
// above the default threshold measured in dim^2.
INSTANTIATE_TEST_SUITE_P(ThresholdBoundary,
                         DensityMatrixThreadDeterminismTest,
                         ::testing::Values(4, 5, 6));

TEST(ThresholdInvariance, GateKernelsBitStableAcrossThresholdSettings)
{
    // Elementwise kernels compute each amplitude independently, so the
    // serial sweep and every blocked partition must produce the same
    // bits — flipping the threshold (or crossing it by state size) can
    // never move a gate result.
    GlobalThreadsGuard guard;
    ThresholdGuard thresholdGuard;
    ParallelExecutor::setGlobalThreads(4);

    const int n = 10;
    Rng rng(777);
    const CompiledCircuit cc(randomKernelCircuit(n, rng));

    setIntraStateParallelThreshold(1);
    Statevector blocked(n);
    blocked.run(cc);

    setIntraStateParallelThreshold(1 << 20); // force the serial path
    Statevector serial(n);
    serial.run(cc);

    EXPECT_EQ(std::memcmp(blocked.amplitudes().data(),
                          serial.amplitudes().data(),
                          serial.dim() * sizeof(Complex)),
              0)
        << "gate kernels changed bits across the parallel threshold";
}

TEST(ThresholdInvariance, ReductionsBitStableAcrossThreadsPerSetting)
{
    // Reductions MAY regroup when the threshold itself moves (serial
    // legacy order below, fixed blocks above — documented contract);
    // within either setting they must be bit-stable across threads.
    GlobalThreadsGuard guard;
    ThresholdGuard thresholdGuard;

    const int n = 10;
    Rng rng(888);
    const CompiledCircuit cc(randomKernelCircuit(n, rng));

    for (const std::size_t threshold : {std::size_t{1}, std::size_t{1}
                                                            << 20}) {
        setIntraStateParallelThreshold(threshold);
        ParallelExecutor::setGlobalThreads(1);
        Statevector sv(n);
        sv.run(cc);
        const double norm = sv.norm();
        const double ez = sv.expectationZMask(0x3ff);
        for (const std::size_t threads : kThreadCounts) {
            ParallelExecutor::setGlobalThreads(threads);
            EXPECT_EQ(sv.norm(), norm)
                << "threshold " << threshold << ", " << threads
                << " threads";
            EXPECT_EQ(sv.expectationZMask(0x3ff), ez)
                << "threshold " << threshold << ", " << threads
                << " threads";
        }
    }
}

TEST(ThresholdInvariance, BlockPartitionIsPureFunctionOfSize)
{
    // The partition the kernels rely on: kIntraStateBlocks contiguous
    // near-equal ranges tiling [0, units), independent of thread count.
    for (const std::size_t units : {std::size_t{17}, std::size_t{512},
                                    std::size_t{1024},
                                    std::size_t{4096}}) {
        std::size_t covered = 0;
        std::size_t prevEnd = 0;
        for (std::size_t b = 0; b < kIntraStateBlocks; ++b) {
            const BlockRange r = intraStateBlock(units, b);
            EXPECT_EQ(r.begin, prevEnd) << "units " << units;
            EXPECT_LE(r.end - r.begin,
                      (units + kIntraStateBlocks - 1) / kIntraStateBlocks)
                << "units " << units;
            covered += r.end - r.begin;
            prevEnd = r.end;
        }
        EXPECT_EQ(prevEnd, units);
        EXPECT_EQ(covered, units);
    }
}

} // namespace
} // namespace qismet
