/** @file Tests for the statevector simulator. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace qismet {
namespace {

Circuit
randomCircuit(int num_qubits, int num_gates, Rng &rng)
{
    Circuit c(num_qubits);
    for (int i = 0; i < num_gates; ++i) {
        const int q = static_cast<int>(rng.uniformInt(num_qubits));
        switch (rng.uniformInt(6)) {
          case 0: c.h(q); break;
          case 1: c.rx(q, rng.uniform(-3.0, 3.0)); break;
          case 2: c.ry(q, rng.uniform(-3.0, 3.0)); break;
          case 3: c.rz(q, rng.uniform(-3.0, 3.0)); break;
          case 4: c.s(q); break;
          default: {
            int q2 = static_cast<int>(rng.uniformInt(num_qubits));
            if (q2 == q)
                q2 = (q + 1) % num_qubits;
            c.cx(q, q2);
          }
        }
    }
    return c;
}

TEST(Statevector, InitialState)
{
    Statevector st(3);
    EXPECT_EQ(st.dim(), 8u);
    EXPECT_DOUBLE_EQ(st.probability(0), 1.0);
    EXPECT_DOUBLE_EQ(st.norm(), 1.0);
}

TEST(Statevector, ConstructorValidation)
{
    EXPECT_THROW(Statevector(0), std::invalid_argument);
    EXPECT_THROW(Statevector(std::vector<Complex>{{1, 0}, {0, 0}, {0, 0}}),
                 std::invalid_argument);
}

TEST(Statevector, BellState)
{
    Statevector st(2);
    Circuit c(2);
    c.h(0).cx(0, 1);
    st.run(c);
    EXPECT_NEAR(st.probability(0b00), 0.5, 1e-12);
    EXPECT_NEAR(st.probability(0b11), 0.5, 1e-12);
    EXPECT_NEAR(st.probability(0b01), 0.0, 1e-12);
    EXPECT_NEAR(st.probability(0b10), 0.0, 1e-12);
}

TEST(Statevector, GhzState)
{
    const int n = 5;
    Statevector st(n);
    Circuit c(n);
    c.h(0);
    for (int q = 0; q + 1 < n; ++q)
        c.cx(q, q + 1);
    st.run(c);
    EXPECT_NEAR(st.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(st.probability((1u << n) - 1), 0.5, 1e-12);
}

class NormPreservationTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(NormPreservationTest, RandomCircuitsPreserveNorm)
{
    Rng rng(GetParam());
    Statevector st(4);
    st.run(randomCircuit(4, 60, rng));
    EXPECT_NEAR(st.norm(), 1.0, 1e-10);
    double total = 0.0;
    for (double p : st.probabilities())
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormPreservationTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Statevector, Apply2qMatchesGateFastPath)
{
    // CX via the dense 4x4 path must equal the fast-path swap.
    Rng rng(42);
    Statevector a(3), b(3);
    const Circuit prep = randomCircuit(3, 20, rng);
    a.run(prep);
    b = a;

    Gate cx;
    cx.type = GateType::CX;
    cx.qubits = {2, 0};
    a.applyGate(cx);
    b.apply2q(2, 0, cx.matrix());
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
}

TEST(Statevector, CzIsSymmetric)
{
    Rng rng(43);
    Statevector a(2), b(2);
    const Circuit prep = randomCircuit(2, 10, rng);
    a.run(prep);
    b = a;
    Circuit c1(2), c2(2);
    c1.cz(0, 1);
    c2.cz(1, 0);
    a.run(c1);
    b.run(c2);
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
}

TEST(Statevector, SwapExchangesQubits)
{
    Statevector st(2);
    Circuit c(2);
    c.x(0).swap(0, 1);
    st.run(c);
    EXPECT_NEAR(st.probability(0b10), 1.0, 1e-12);
}

TEST(Statevector, InnerProductAndFidelity)
{
    Statevector a(1), b(1);
    Circuit h(1);
    h.h(0);
    b.run(h);
    EXPECT_NEAR(std::abs(a.innerProduct(b)), 1.0 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(a.fidelity(b), 0.5, 1e-12);
    EXPECT_NEAR(b.fidelity(b), 1.0, 1e-12);
}

TEST(Statevector, ExpectationZMask)
{
    Statevector st(2);
    EXPECT_DOUBLE_EQ(st.expectationZMask(0b01), 1.0); // |00>: Z0 = +1
    Circuit c(2);
    c.x(0);
    st.run(c);
    EXPECT_DOUBLE_EQ(st.expectationZMask(0b01), -1.0);
    EXPECT_DOUBLE_EQ(st.expectationZMask(0b11), -1.0); // Z0 Z1 on |01>
    EXPECT_DOUBLE_EQ(st.expectationZMask(0b10), 1.0);
}

TEST(Statevector, ExpectationZMaskSuperposition)
{
    Statevector st(1);
    Circuit c(1);
    c.h(0);
    st.run(c);
    EXPECT_NEAR(st.expectationZMask(1), 0.0, 1e-12);
}

TEST(Statevector, SamplingMatchesDistribution)
{
    Statevector st(2);
    Circuit c(2);
    c.h(0).cx(0, 1);
    st.run(c);
    Rng rng(77);
    const auto samples = st.sample(rng, 20000);
    std::size_t zeros = 0, threes = 0;
    for (auto s : samples) {
        if (s == 0)
            ++zeros;
        else if (s == 3)
            ++threes;
        else
            FAIL() << "impossible outcome " << s;
    }
    EXPECT_NEAR(static_cast<double>(zeros) / 20000.0, 0.5, 0.02);
    EXPECT_NEAR(static_cast<double>(threes) / 20000.0, 0.5, 0.02);
}

TEST(Statevector, RunRejectsWidthMismatch)
{
    Statevector st(2);
    Circuit c(3);
    EXPECT_THROW(st.run(c), std::invalid_argument);
}

TEST(Statevector, ResetRestoresGround)
{
    Statevector st(2);
    Circuit c(2);
    c.h(0).h(1);
    st.run(c);
    st.reset();
    EXPECT_DOUBLE_EQ(st.probability(0), 1.0);
}

TEST(Statevector, NormalizeFixesScaledState)
{
    std::vector<Complex> amps = {Complex(2, 0), Complex(0, 0)};
    Statevector st(std::move(amps));
    st.normalize();
    EXPECT_NEAR(st.norm(), 1.0, 1e-14);
}

} // namespace
} // namespace qismet
