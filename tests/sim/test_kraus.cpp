/** @file Tests for Kraus channels: CPTP validity, limits, composition. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/kraus.hpp"

namespace qismet {
namespace {

class Cptp1qTest : public ::testing::TestWithParam<double>
{
};

TEST_P(Cptp1qTest, AllFactoriesTracePreserving)
{
    const double p = GetParam();
    EXPECT_TRUE(KrausChannel::depolarizing1q(p).isTracePreserving());
    EXPECT_TRUE(KrausChannel::amplitudeDamping(p).isTracePreserving());
    EXPECT_TRUE(KrausChannel::phaseDamping(p).isTracePreserving());
    EXPECT_TRUE(KrausChannel::bitFlip(p).isTracePreserving());
    EXPECT_TRUE(KrausChannel::depolarizing2q(p).isTracePreserving());
}

INSTANTIATE_TEST_SUITE_P(Probabilities, Cptp1qTest,
                         ::testing::Values(0.0, 1e-4, 0.01, 0.25, 0.5,
                                           0.9, 1.0));

TEST(Kraus, ProbabilityRangeChecked)
{
    EXPECT_THROW(KrausChannel::depolarizing1q(-0.1), std::invalid_argument);
    EXPECT_THROW(KrausChannel::depolarizing1q(1.1), std::invalid_argument);
    EXPECT_THROW(KrausChannel::amplitudeDamping(2.0), std::invalid_argument);
}

TEST(Kraus, IdentityChannel)
{
    const auto id = KrausChannel::identity1q();
    EXPECT_EQ(id.numQubits(), 1);
    EXPECT_TRUE(id.isTracePreserving());
    EXPECT_EQ(id.operators().size(), 1u);
}

TEST(Kraus, NumQubits)
{
    EXPECT_EQ(KrausChannel::depolarizing1q(0.1).numQubits(), 1);
    EXPECT_EQ(KrausChannel::depolarizing2q(0.1).numQubits(), 2);
}

TEST(Kraus, CompositionStaysCptp)
{
    const auto composed = KrausChannel::amplitudeDamping(0.3).then(
        KrausChannel::phaseDamping(0.4));
    EXPECT_TRUE(composed.isTracePreserving(1e-9));
    EXPECT_EQ(composed.operators().size(), 4u);
}

TEST(Kraus, CompositionShapeMismatchThrows)
{
    EXPECT_THROW(KrausChannel::depolarizing1q(0.1).then(
                     KrausChannel::depolarizing2q(0.1)),
                 std::invalid_argument);
}

TEST(Kraus, EmptyOperatorListRejected)
{
    EXPECT_THROW(KrausChannel(std::vector<Matrix>{}), std::invalid_argument);
}

TEST(Kraus, InconsistentShapesRejected)
{
    EXPECT_THROW(KrausChannel({Matrix::identity(2), Matrix::identity(4)}),
                 std::invalid_argument);
}

TEST(ThermalRelaxation, ZeroDurationIsIdentityLike)
{
    const auto ch = KrausChannel::thermalRelaxation(100e3, 80e3, 0.0);
    EXPECT_TRUE(ch.isTracePreserving());
    // Sum of K ρ K† on |1><1| must keep the excited population.
    // With zero duration gamma = 0 and lambda = 0, so one operator must
    // be the identity (others numerically zero).
    double max_offdiag_damp = 0.0;
    for (const auto &k : ch.operators())
        max_offdiag_damp = std::max(max_offdiag_damp,
                                    std::abs(k(1, 1).real()));
    EXPECT_NEAR(max_offdiag_damp, 1.0, 1e-12);
}

class ThermalRelaxationTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>>
{
};

TEST_P(ThermalRelaxationTest, CptpAcrossParameterSpace)
{
    const auto [t1, t2, dt] = GetParam();
    EXPECT_TRUE(
        KrausChannel::thermalRelaxation(t1, t2, dt).isTracePreserving(1e-8));
}

INSTANTIATE_TEST_SUITE_P(
    Params, ThermalRelaxationTest,
    ::testing::Combine(::testing::Values(50e3, 100e3),
                       ::testing::Values(30e3, 80e3),
                       ::testing::Values(0.0, 35.0, 300.0, 5000.0)));

TEST(ThermalRelaxation, InvalidParamsThrow)
{
    EXPECT_THROW(KrausChannel::thermalRelaxation(-1.0, 1.0, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(KrausChannel::thermalRelaxation(1.0, 3.0, 1.0),
                 std::invalid_argument); // T2 > 2 T1 unphysical
    EXPECT_THROW(KrausChannel::thermalRelaxation(1.0, 1.0, -1.0),
                 std::invalid_argument);
}

} // namespace
} // namespace qismet
