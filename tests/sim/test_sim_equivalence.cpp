/**
 * @file
 * Randomized cross-validation of the two exact simulators: for seeded
 * random circuits over varied widths and gate mixes, the statevector
 * probabilities must match the density-matrix diagonal to 1e-10, and
 * noiseless Kraus channels must leave the density matrix invariant.
 * These are the invariants the parallel energy estimator leans on when
 * it treats simulator calls as pure, scheduling-free functions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "sim/density_matrix.hpp"
#include "sim/kraus.hpp"
#include "sim/statevector.hpp"

namespace qismet {
namespace {

/** Random circuit over the full gate set (entanglers when width > 1). */
Circuit
randomCircuit(int num_qubits, int num_gates, Rng &rng)
{
    Circuit c(num_qubits);
    for (int g = 0; g < num_gates; ++g) {
        const int q = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(num_qubits)));
        const std::uint64_t kind = rng.uniformInt(num_qubits > 1 ? 15 : 12);
        switch (kind) {
          case 0: c.h(q); break;
          case 1: c.x(q); break;
          case 2: c.y(q); break;
          case 3: c.z(q); break;
          case 4: c.s(q); break;
          case 5: c.sdg(q); break;
          case 6: c.t(q); break;
          case 7: c.tdg(q); break;
          case 8: c.sx(q); break;
          case 9: c.rx(q, rng.uniform(-M_PI, M_PI)); break;
          case 10: c.ry(q, rng.uniform(-M_PI, M_PI)); break;
          case 11: c.rz(q, rng.uniform(-M_PI, M_PI)); break;
          default: {
            int p = static_cast<int>(
                rng.uniformInt(static_cast<std::uint64_t>(num_qubits - 1)));
            if (p >= q)
                ++p; // distinct second qubit
            if (kind == 12)
                c.cx(q, p);
            else if (kind == 13)
                c.cz(q, p);
            else
                c.swap(q, p);
            break;
          }
        }
    }
    return c;
}

/** (width, generator-seed) grid giving ~50 distinct random circuits. */
class SimEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SimEquivalenceTest, DensityMatrixDiagonalMatchesStatevector)
{
    const int n = std::get<0>(GetParam());
    const int seed = std::get<1>(GetParam());
    Rng rng(static_cast<std::uint64_t>(1000 * n + seed));
    const Circuit circuit = randomCircuit(n, 8 * n + 12, rng);

    Statevector sv(n);
    sv.run(circuit);
    DensityMatrix dm(n);
    dm.run(circuit);

    const auto sv_probs = sv.probabilities();
    const auto dm_probs = dm.probabilities();
    ASSERT_EQ(sv_probs.size(), dm_probs.size());
    for (std::size_t b = 0; b < sv_probs.size(); ++b)
        EXPECT_NEAR(sv_probs[b], dm_probs[b], 1e-10)
            << "basis state " << b;

    // The unitary evolution must keep the state pure and faithful.
    EXPECT_NEAR(dm.trace(), 1.0, 1e-10);
    EXPECT_NEAR(dm.purity(), 1.0, 1e-10);
    EXPECT_NEAR(dm.fidelity(sv), 1.0, 1e-10);
}

TEST_P(SimEquivalenceTest, NoiselessKrausChannelsAreIdentity)
{
    const int n = std::get<0>(GetParam());
    const int seed = std::get<1>(GetParam());
    Rng rng(static_cast<std::uint64_t>(7000 * n + seed));
    const Circuit circuit = randomCircuit(n, 6 * n + 10, rng);

    DensityMatrix dm(n);
    dm.run(circuit);

    std::vector<Complex> before;
    before.reserve(dm.dim() * dm.dim());
    for (std::size_t r = 0; r < dm.dim(); ++r)
        for (std::size_t c = 0; c < dm.dim(); ++c)
            before.push_back(dm.element(r, c));

    const KrausChannel noiseless[] = {
        KrausChannel::identity1q(),
        KrausChannel::depolarizing1q(0.0),
        KrausChannel::amplitudeDamping(0.0),
        KrausChannel::phaseDamping(0.0),
        KrausChannel::bitFlip(0.0),
        KrausChannel::thermalRelaxation(50e3, 70e3, 0.0),
    };
    for (const auto &channel : noiseless)
        for (int q = 0; q < n; ++q)
            dm.applyChannel1q(q, channel);

    std::size_t k = 0;
    for (std::size_t r = 0; r < dm.dim(); ++r) {
        for (std::size_t c = 0; c < dm.dim(); ++c, ++k) {
            EXPECT_NEAR(dm.element(r, c).real(), before[k].real(), 1e-10)
                << "rho(" << r << "," << c << ") real";
            EXPECT_NEAR(dm.element(r, c).imag(), before[k].imag(), 1e-10)
                << "rho(" << r << "," << c << ") imag";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, SimEquivalenceTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4,
                                                              5),
                                            ::testing::Range(0, 10)));

} // namespace
} // namespace qismet
