/** @file Tests for the gradient-faithful controller (paper Fig. 9). */

#include <gtest/gtest.h>

#include <cmath>

#include "core/controller.hpp"

namespace qismet {
namespace {

EvalContext
makeContext(double e_prev, double e_rerun, double e_curr, int retry = 0)
{
    EvalContext ctx;
    ctx.ePrev = e_prev;
    ctx.eCurr = e_curr;
    ctx.hasReference = true;
    ctx.eReferenceRerun = e_rerun;
    ctx.retryIndex = retry;
    return ctx;
}

QismetControllerConfig
absoluteConfig(double threshold)
{
    // mixedEnergy far away and relativeThreshold tiny so the noise
    // floor acts as an absolute threshold — convenient for table tests.
    QismetControllerConfig cfg;
    cfg.relativeThreshold = 0.0;
    cfg.noiseFloor = threshold;
    cfg.mixedEnergy = 0.0;
    cfg.retryBudget = 5;
    return cfg;
}

/**
 * The six Fig. 9 scenarios. Values chosen so |T_m| is well outside the
 * 0.05 threshold band whenever a transient is present.
 */
struct Fig9Case
{
    const char *name;
    double ePrev, eRerun, eCurr;
    bool accept;
};

class Fig9Test : public ::testing::TestWithParam<Fig9Case>
{
};

TEST_P(Fig9Test, ControllerMatchesPaper)
{
    const auto &c = GetParam();
    GradientFaithfulController ctrl(absoluteConfig(0.05));
    const Decision d = ctrl.judgeEvaluation(
        makeContext(c.ePrev, c.eRerun, c.eCurr));
    EXPECT_EQ(d == Decision::Accept, c.accept) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, Fig9Test,
    ::testing::Values(
        // (a) large positive transient, both gradients still positive.
        Fig9Case{"a_pos_transient_pos_gradients", -2.0, -1.5, -1.2, true},
        // (b) small transient, both gradients positive.
        Fig9Case{"b_small_transient_pos_gradients", -2.0, -1.98, -1.5,
                 true},
        // (c) machine gradient positive only because of the transient:
        // prediction flips negative -> reject.
        Fig9Case{"c_bad_perceived_good", -2.0, -1.2, -1.5, false},
        // (d) both gradients negative, small transient.
        Fig9Case{"d_small_transient_neg_gradients", -2.0, -2.02, -2.5,
                 true},
        // (e) both gradients negative despite a transient.
        Fig9Case{"e_transient_neg_gradients", -2.0, -1.8, -2.5, true},
        // (f) inverse of (c): good config perceived bad -> reject.
        Fig9Case{"f_good_perceived_bad", -2.0, -2.8, -2.3, false}));

TEST(Controller, PinkBandAcceptsSmallSwings)
{
    // Sign flip but |T_m| inside the band: accept (Fig. 9's pink region).
    GradientFaithfulController ctrl(absoluteConfig(0.10));
    const Decision d =
        ctrl.judgeEvaluation(makeContext(-2.0, -1.96, -1.99));
    EXPECT_EQ(d, Decision::Accept);
}

TEST(Controller, RetryBudgetExhaustionAccepts)
{
    QismetControllerConfig cfg = absoluteConfig(0.05);
    cfg.retryBudget = 3;
    GradientFaithfulController ctrl(cfg);

    // The (c) scenario: rejected until the budget is spent.
    for (int retry = 0; retry < 3; ++retry)
        EXPECT_EQ(ctrl.judgeEvaluation(
                      makeContext(-2.0, -1.2, -1.5, retry)),
                  Decision::Retry);
    EXPECT_EQ(ctrl.judgeEvaluation(makeContext(-2.0, -1.2, -1.5, 3)),
              Decision::Accept);
}

TEST(Controller, NoReferenceMeansAccept)
{
    GradientFaithfulController ctrl(absoluteConfig(0.05));
    EvalContext ctx;
    ctx.hasReference = false;
    ctx.eCurr = 100.0;
    EXPECT_EQ(ctrl.judgeEvaluation(ctx), Decision::Accept);
}

TEST(Controller, SkipAccounting)
{
    GradientFaithfulController ctrl(absoluteConfig(0.05));
    ctrl.judgeEvaluation(makeContext(-2.0, -1.2, -1.5)); // reject
    ctrl.judgeEvaluation(makeContext(-2.0, -1.5, -1.2)); // accept (a)
    EXPECT_EQ(ctrl.judged(), 2u);
    EXPECT_EQ(ctrl.skipsIssued(), 1u);
    EXPECT_DOUBLE_EQ(ctrl.skipFraction(), 0.5);
    ctrl.reset();
    EXPECT_EQ(ctrl.judged(), 0u);
    EXPECT_DOUBLE_EQ(ctrl.skipFraction(), 0.0);
}

TEST(Controller, RelativeThresholdScalesWithSwing)
{
    QismetControllerConfig cfg;
    cfg.relativeThreshold = 0.10;
    cfg.noiseFloor = 0.0;
    cfg.mixedEnergy = 0.0;
    GradientFaithfulController ctrl(cfg);
    // Near the mixed energy the band is tight; far from it, wide.
    EXPECT_NEAR(ctrl.effectiveThreshold(-0.5), 0.05, 1e-12);
    EXPECT_NEAR(ctrl.effectiveThreshold(-5.0), 0.50, 1e-12);
}

TEST(Controller, CorrectedFeedAboveThresholdOnly)
{
    QismetControllerConfig cfg = absoluteConfig(0.30);
    cfg.correctedFeed = true;
    GradientFaithfulController ctrl(cfg);

    // First evaluation: feed equals the measurement.
    EvalContext first;
    first.hasReference = false;
    first.eCurr = -2.0;
    EXPECT_DOUBLE_EQ(ctrl.energyForOptimizer(first), -2.0);

    // Transient 0.6 > 0.30: corrected to E_p = eCurr - transient.
    const auto big = makeContext(-2.0, -1.4, -1.1);
    EXPECT_DOUBLE_EQ(ctrl.energyForOptimizer(big), -1.1 - 0.6);

    // Small transient relative to the *fed* baseline: trusted as-is.
    const auto small = makeContext(-1.7, -1.65, -1.6);
    EXPECT_DOUBLE_EQ(ctrl.energyForOptimizer(small), -1.6);
}

TEST(Controller, CorrectedFeedDisabledReturnsMeasurement)
{
    QismetControllerConfig cfg = absoluteConfig(0.05);
    cfg.correctedFeed = false;
    GradientFaithfulController ctrl(cfg);
    const auto ctx = makeContext(-2.0, -1.0, -1.1);
    EXPECT_DOUBLE_EQ(ctrl.energyForOptimizer(ctx), -1.1);
}

TEST(Controller, Validation)
{
    QismetControllerConfig cfg;
    cfg.relativeThreshold = -0.1;
    EXPECT_THROW(GradientFaithfulController{cfg}, std::invalid_argument);
    cfg = {};
    cfg.retryBudget = 0;
    EXPECT_THROW(GradientFaithfulController{cfg}, std::invalid_argument);
}

TEST(OnlyTransientsPolicy, SkipsOnMagnitudeAlone)
{
    // Scenario (a): big transient with preserved gradient direction.
    // QISMET accepts it; only-transients skips it — the paper's key
    // distinction (Section 5.3).
    OnlyTransientsPolicy ot(/*relative_threshold=*/0.0,
                            /*noise_floor=*/0.05, /*mixed_energy=*/0.0,
                            /*retry_budget=*/5);
    GradientFaithfulController qismet(absoluteConfig(0.05));

    const auto scenario_a = makeContext(-2.0, -1.5, -1.2);
    EXPECT_EQ(qismet.judgeEvaluation(scenario_a), Decision::Accept);
    EXPECT_EQ(ot.judgeEvaluation(scenario_a), Decision::Retry);
}

TEST(OnlyTransientsPolicy, AcceptsBelowThreshold)
{
    OnlyTransientsPolicy ot(0.0, 0.5, 0.0, 5);
    EXPECT_EQ(ot.judgeEvaluation(makeContext(-2.0, -1.9, -1.5)),
              Decision::Accept);
}

TEST(KalmanPolicy, AlwaysAcceptsAndFilters)
{
    KalmanParams kp;
    kp.measurementVariance = 1e-4;
    KalmanPolicy policy(kp);
    EXPECT_EQ(policy.judgeEvaluation(makeContext(0, 0, 0)),
              Decision::Accept);
    EXPECT_DOUBLE_EQ(policy.transformEnergy(-1.0), -1.0); // initializes
    // Low MV: follows the measurement closely.
    EXPECT_NEAR(policy.transformEnergy(-2.0), -2.0, 0.05);
    policy.reset();
    EXPECT_DOUBLE_EQ(policy.transformEnergy(5.0), 5.0);
}

} // namespace
} // namespace qismet
