/** @file Tests for the online-adaptive (dynamic) threshold extension. */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/applications.hpp"
#include "core/controller.hpp"

namespace qismet {
namespace {

QismetControllerConfig
adaptiveConfig()
{
    QismetControllerConfig cfg;
    cfg.relativeThreshold = 0.05;
    cfg.noiseFloor = 0.0;
    cfg.mixedEnergy = 0.0;
    cfg.retryBudget = 5;
    cfg.adaptiveThreshold = true;
    cfg.adaptiveSkipTarget = 0.10;
    cfg.adaptiveWindow = 50;
    return cfg;
}

EvalContext
ctxWithTransient(double e_prev, double transient, double g_m)
{
    EvalContext ctx;
    ctx.ePrev = e_prev;
    ctx.eReferenceRerun = e_prev + transient;
    ctx.eCurr = e_prev + g_m;
    ctx.hasReference = true;
    return ctx;
}

TEST(DynamicThreshold, Validation)
{
    QismetControllerConfig cfg = adaptiveConfig();
    cfg.adaptiveSkipTarget = 0.0;
    EXPECT_THROW(GradientFaithfulController{cfg}, std::invalid_argument);
    cfg = adaptiveConfig();
    cfg.adaptiveWindow = 5;
    EXPECT_THROW(GradientFaithfulController{cfg}, std::invalid_argument);
}

TEST(DynamicThreshold, AdaptsToObservedMagnitudes)
{
    GradientFaithfulController ctrl(adaptiveConfig());
    Rng rng(3);

    // Feed 200 judgments whose relative transient magnitude is ~N(0,
    // 0.2 * swing): the 90th percentile of |T|/swing is ~0.33.
    for (int i = 0; i < 200; ++i) {
        const double swing = 2.0;
        const double transient = rng.normal(0.0, 0.2) * swing;
        ctrl.judgeEvaluation(
            ctxWithTransient(-swing, transient, rng.normal(0.0, 0.1)));
    }
    EXPECT_NEAR(ctrl.activeRelativeThreshold(), 0.33, 0.08);
}

TEST(DynamicThreshold, StaticControllerNeverAdapts)
{
    QismetControllerConfig cfg = adaptiveConfig();
    cfg.adaptiveThreshold = false;
    GradientFaithfulController ctrl(cfg);
    Rng rng(5);
    for (int i = 0; i < 200; ++i)
        ctrl.judgeEvaluation(
            ctxWithTransient(-2.0, rng.normal(0.0, 0.5), 0.1));
    EXPECT_DOUBLE_EQ(ctrl.activeRelativeThreshold(), 0.05);
}

TEST(DynamicThreshold, ResetRestoresInitialThreshold)
{
    GradientFaithfulController ctrl(adaptiveConfig());
    Rng rng(7);
    for (int i = 0; i < 200; ++i)
        ctrl.judgeEvaluation(
            ctxWithTransient(-2.0, rng.normal(0.0, 1.0), 0.1));
    EXPECT_NE(ctrl.activeRelativeThreshold(), 0.05);
    ctrl.reset();
    EXPECT_DOUBLE_EQ(ctrl.activeRelativeThreshold(), 0.05);
}

TEST(DynamicThreshold, SchemeRunsEndToEnd)
{
    const QismetVqe runner = application(2).makeRunner();
    QismetVqeConfig cfg;
    cfg.totalJobs = 600;
    cfg.seed = 9;
    cfg.scheme = Scheme::QismetDynamic;
    const auto res = runner.run(cfg);
    EXPECT_EQ(res.scheme, "QISMET-dynamic");
    EXPECT_EQ(res.run.jobsUsed, 600u);
    EXPECT_LT(res.run.finalEstimate, 0.0);
}

TEST(DynamicThreshold, TracksRegimeChange)
{
    // After a regime change (much larger transients), the adaptive
    // threshold grows to keep the skip rate near target.
    GradientFaithfulController ctrl(adaptiveConfig());
    Rng rng(11);
    for (int i = 0; i < 120; ++i)
        ctrl.judgeEvaluation(
            ctxWithTransient(-2.0, rng.normal(0.0, 0.1), 0.05));
    const double before = ctrl.activeRelativeThreshold();
    for (int i = 0; i < 300; ++i)
        ctrl.judgeEvaluation(
            ctxWithTransient(-2.0, rng.normal(0.0, 1.0), 0.05));
    EXPECT_GT(ctrl.activeRelativeThreshold(), 2.0 * before);
}

} // namespace
} // namespace qismet
