/** @file Tests for the Fig.-8 transient estimation equations. */

#include <gtest/gtest.h>

#include "core/transient_estimator.hpp"

namespace qismet {
namespace {

TEST(TransientEstimator, EquationsExact)
{
    TransientEstimator est;
    // E_m(i) = -2.0, E_mR(i) = -1.4 (transient +0.6), E_m(i+1) = -1.1.
    const auto e = est.estimate(-2.0, -1.4, -1.1);

    EXPECT_DOUBLE_EQ(e.transient, 0.6);            // T_m = E_mR - E_m
    EXPECT_DOUBLE_EQ(e.machineGradient, 0.9);      // G_m = E(i+1) - E(i)
    EXPECT_DOUBLE_EQ(e.predictedEnergy, -1.7);     // E_p = E(i+1) - T_m
    EXPECT_DOUBLE_EQ(e.predictedGradient, 0.3);    // G_p = E_p - E(i)
}

TEST(TransientEstimator, GpEqualsGmMinusTm)
{
    TransientEstimator est;
    const auto e = est.estimate(0.3, -0.2, 1.7);
    EXPECT_DOUBLE_EQ(e.predictedGradient,
                     e.machineGradient - e.transient);
}

TEST(TransientEstimator, GpIsWithinJobDifference)
{
    // The controller's key identity: G_p = E_m(i+1) - E_mR(i), a
    // within-job quantity.
    TransientEstimator est;
    const auto e = est.estimate(-5.0, -4.2, -3.9);
    EXPECT_NEAR(e.predictedGradient, -3.9 - (-4.2), 1e-12);
}

TEST(TransientEstimator, ZeroTransientPredictionIsMeasurement)
{
    TransientEstimator est;
    const auto e = est.estimate(-1.0, -1.0, -1.5);
    EXPECT_DOUBLE_EQ(e.transient, 0.0);
    EXPECT_DOUBLE_EQ(e.predictedEnergy, -1.5);
    EXPECT_DOUBLE_EQ(e.predictedGradient, e.machineGradient);
}

TEST(TransientEstimator, HistoryAccumulatesMagnitudes)
{
    TransientEstimator est;
    est.estimate(0.0, 0.5, 0.0);
    est.estimate(0.0, -0.25, 0.0);
    ASSERT_EQ(est.count(), 2u);
    EXPECT_DOUBLE_EQ(est.magnitudeHistory()[0], 0.5);
    EXPECT_DOUBLE_EQ(est.magnitudeHistory()[1], 0.25);
    est.reset();
    EXPECT_EQ(est.count(), 0u);
}

} // namespace
} // namespace qismet
