/** @file Tests for the integrated experiment runner. */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/applications.hpp"
#include "core/qismet_vqe.hpp"

namespace qismet {
namespace {

TEST(SchemeName, MatchesPaperLegends)
{
    EXPECT_EQ(schemeName(Scheme::Baseline), "Baseline");
    EXPECT_EQ(schemeName(Scheme::Qismet), "QISMET");
    EXPECT_EQ(schemeName(Scheme::QismetConservative),
              "QISMET-conservative");
    EXPECT_EQ(schemeName(Scheme::SecondOrder), "2nd-order");
    EXPECT_EQ(schemeName(Scheme::OnlyTransients), "Only-transients");
}

TEST(QismetVqe, ConstructionValidation)
{
    const Application app = application(1);
    PauliSum wrong(4);
    wrong.add(1.0, "ZZZZ");
    EXPECT_THROW(QismetVqe(wrong, app.ansatzCircuit, app.machine, -1.0),
                 std::invalid_argument);
}

TEST(QismetVqe, EnergyScalePositive)
{
    const Application app = application(2);
    const QismetVqe runner = app.makeRunner();
    EXPECT_GT(runner.energyScale(), 0.0);
    EXPECT_LT(runner.energyScale(), std::abs(app.exactGroundEnergy));
}

TEST(QismetVqe, CalibratedThresholdOrdering)
{
    const QismetVqe runner = application(2).makeRunner();
    const double conservative =
        runner.calibratedThreshold(SkipTargets::kConservative, 1);
    const double standard =
        runner.calibratedThreshold(SkipTargets::kDefault, 1);
    const double aggressive =
        runner.calibratedThreshold(SkipTargets::kAggressive, 1);
    EXPECT_GT(conservative, standard);
    EXPECT_GT(standard, aggressive);
    EXPECT_GT(aggressive, 0.0);
}

TEST(QismetVqe, DeterministicRuns)
{
    const QismetVqe runner = application(1).makeRunner();
    QismetVqeConfig cfg;
    cfg.totalJobs = 120;
    cfg.seed = 5;
    cfg.scheme = Scheme::Qismet;
    const auto a = runner.run(cfg);
    const auto b = runner.run(cfg);
    EXPECT_DOUBLE_EQ(a.run.finalEstimate, b.run.finalEstimate);
    EXPECT_EQ(a.run.retriesUsed, b.run.retriesUsed);
}

TEST(QismetVqe, NoiseFreeHasNoTransients)
{
    const QismetVqe runner = application(1).makeRunner();
    QismetVqeConfig cfg;
    cfg.totalJobs = 150;
    cfg.scheme = Scheme::NoiseFree;
    const auto res = runner.run(cfg);
    for (const auto &rec : res.run.history)
        EXPECT_DOUBLE_EQ(rec.transientIntensity, 0.0);
}

TEST(QismetVqe, QismetSkipsAreBudgeted)
{
    const QismetVqe runner = application(2).makeRunner();
    QismetVqeConfig cfg;
    cfg.totalJobs = 800;
    cfg.seed = 3;
    cfg.scheme = Scheme::Qismet;
    cfg.retryBudget = 2;
    const auto res = runner.run(cfg);
    // No evaluation may be retried more than the budget.
    for (const auto &rec : res.run.history)
        EXPECT_LE(rec.retryIndex, 2);
}

TEST(QismetVqe, SkipFractionNearTarget)
{
    const QismetVqe runner = application(2).makeRunner();
    QismetVqeConfig cfg;
    cfg.totalJobs = 1500;
    cfg.seed = 7;
    cfg.scheme = Scheme::Qismet;
    const auto res = runner.run(cfg);
    // "skip at most ~10% of the iterations": allow headroom for retry
    // amplification but demand the controller is in the right regime.
    EXPECT_GT(res.skipFraction, 0.005);
    EXPECT_LT(res.skipFraction, 0.20);
}

TEST(QismetVqe, TransientScaleZeroMatchesStaticOnly)
{
    const QismetVqe runner = application(1).makeRunner();
    QismetVqeConfig cfg;
    cfg.totalJobs = 200;
    cfg.scheme = Scheme::Baseline;
    cfg.transientScale = 0.0;
    const auto res = runner.run(cfg);
    for (const auto &rec : res.run.history)
        EXPECT_DOUBLE_EQ(rec.transientIntensity, 0.0);
}

TEST(QismetVqe, OverheadAccountingReflectsReferenceCircuits)
{
    const QismetVqe runner = application(1).makeRunner();
    QismetVqeConfig cfg;
    cfg.totalJobs = 200;
    cfg.seed = 11;

    cfg.scheme = Scheme::Baseline;
    const auto base = runner.run(cfg);
    cfg.scheme = Scheme::Qismet;
    const auto qismet = runner.run(cfg);

    // Section 8.3: QISMET executes the reference rerun per job, so its
    // circuit count approaches 2x the baseline's at equal job budget.
    EXPECT_GT(qismet.run.circuitsUsed,
              static_cast<std::size_t>(1.8 *
                                       static_cast<double>(
                                           base.run.circuitsUsed)));
}

TEST(QismetVqe, ResamplingCostsMoreCircuitsPerIteration)
{
    const QismetVqe runner = application(1).makeRunner();
    QismetVqeConfig cfg;
    cfg.totalJobs = 200;
    cfg.scheme = Scheme::Resampling;
    const auto res = runner.run(cfg);
    // 4 evaluations per iteration instead of 2 at the same job budget:
    // half the optimizer iterations.
    EXPECT_NEAR(static_cast<double>(res.run.iterationEnergies.size()),
                200.0 / 4.0, 1.0);
}

} // namespace
} // namespace qismet
