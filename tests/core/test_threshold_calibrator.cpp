/** @file Tests for skip-rate threshold calibration. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/threshold_calibrator.hpp"

namespace qismet {
namespace {

TEST(ThresholdCalibrator, Validation)
{
    EXPECT_THROW(ThresholdCalibrator(0.0), std::invalid_argument);
    EXPECT_THROW(ThresholdCalibrator(1.0), std::invalid_argument);
    EXPECT_THROW(ThresholdCalibrator(-0.1), std::invalid_argument);
}

TEST(ThresholdCalibrator, FromSamplesQuantile)
{
    // 100 samples 0.01..1.00: the 10% skip target picks ~the 90th
    // percentile.
    std::vector<double> mags;
    for (int i = 1; i <= 100; ++i)
        mags.push_back(0.01 * i);
    const double thr = ThresholdCalibrator(0.10).fromSamples(mags);
    EXPECT_NEAR(thr, 0.90, 0.02);

    const double thr25 = ThresholdCalibrator(0.25).fromSamples(mags);
    EXPECT_LT(thr25, thr);
}

TEST(ThresholdCalibrator, FromSamplesUsesMagnitudes)
{
    const double thr =
        ThresholdCalibrator(0.5).fromSamples({-1.0, -1.0, 1.0, 1.0});
    EXPECT_NEAR(thr, 1.0, 1e-12);
}

TEST(ThresholdCalibrator, FromSamplesRejectsEmpty)
{
    EXPECT_THROW(ThresholdCalibrator(0.1).fromSamples({}),
                 std::invalid_argument);
}

TEST(ThresholdCalibrator, FromTraceScalesByEnergy)
{
    TransientTrace trace({0.1, 0.2, 0.3, 0.4, 0.5});
    const double thr1 = ThresholdCalibrator(0.2).fromTrace(trace, 1.0);
    const double thr2 = ThresholdCalibrator(0.2).fromTrace(trace, 3.0);
    EXPECT_NEAR(thr2, 3.0 * thr1, 1e-12);
}

TEST(ThresholdCalibrator, FromTraceValidation)
{
    EXPECT_THROW(ThresholdCalibrator(0.1).fromTrace(TransientTrace{}, 1.0),
                 std::invalid_argument);
    TransientTrace t({0.1});
    EXPECT_THROW(ThresholdCalibrator(0.1).fromTrace(t, 0.0),
                 std::invalid_argument);
}

TEST(ThresholdCalibrator, FromTraceDifferencesAchievesTarget)
{
    // Synthetic trace with known difference distribution: the
    // calibrated threshold should be exceeded by ~the target fraction
    // of differences.
    Rng rng(5);
    std::vector<double> vals;
    double v = 0.0;
    for (int i = 0; i < 5000; ++i) {
        v = rng.bernoulli(0.1) ? rng.uniform(0.0, 1.0) : 0.0;
        vals.push_back(v);
    }
    TransientTrace trace(vals);
    const double target = 0.10;
    const double thr = ThresholdCalibrator(target)
                           .fromTraceDifferences(trace, 1.0, 0.0);

    int exceed = 0;
    for (std::size_t i = 0; i + 1 < vals.size(); ++i)
        if (std::abs(vals[i + 1] - vals[i]) > thr)
            ++exceed;
    EXPECT_NEAR(exceed / static_cast<double>(vals.size() - 1), target,
                0.02);
}

TEST(ThresholdCalibrator, NoiseRaisesDifferenceThreshold)
{
    TransientTrace trace(std::vector<double>(2000, 0.0));
    const double quiet = ThresholdCalibrator(0.1).fromTraceDifferences(
        trace, 1.0, 0.0);
    const double noisy = ThresholdCalibrator(0.1).fromTraceDifferences(
        trace, 1.0, 0.2);
    EXPECT_DOUBLE_EQ(quiet, 0.0);
    EXPECT_GT(noisy, 0.1);
}

TEST(ThresholdCalibrator, FromTraceDifferencesValidation)
{
    TransientTrace t({0.1});
    EXPECT_THROW(
        ThresholdCalibrator(0.1).fromTraceDifferences(t, 1.0, 0.0),
        std::invalid_argument);
    TransientTrace ok({0.1, 0.2});
    EXPECT_THROW(
        ThresholdCalibrator(0.1).fromTraceDifferences(ok, -1.0, 0.0),
        std::invalid_argument);
    EXPECT_THROW(
        ThresholdCalibrator(0.1).fromTraceDifferences(ok, 1.0, -0.1),
        std::invalid_argument);
}

TEST(SkipTargets, PaperValues)
{
    EXPECT_DOUBLE_EQ(SkipTargets::kConservative, 0.01);
    EXPECT_DOUBLE_EQ(SkipTargets::kDefault, 0.10);
    EXPECT_DOUBLE_EQ(SkipTargets::kAggressive, 0.25);
}

} // namespace
} // namespace qismet
