/** @file Tests for MaxCut instances and cost Hamiltonians. */

#include <gtest/gtest.h>

#include "hamiltonian/exact_solver.hpp"
#include "qaoa/maxcut.hpp"

namespace qismet {
namespace {

TEST(MaxCut, Validation)
{
    EXPECT_THROW(MaxCutProblem(1, {}), std::invalid_argument);
    EXPECT_THROW(MaxCutProblem(3, {{0, 3, 1.0}}), std::invalid_argument);
    EXPECT_THROW(MaxCutProblem(3, {{1, 1, 1.0}}), std::invalid_argument);
    EXPECT_THROW(MaxCutProblem(3, {{0, 1, -1.0}}), std::invalid_argument);
}

TEST(MaxCut, CutValueOfTriangle)
{
    const MaxCutProblem tri(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}});
    EXPECT_DOUBLE_EQ(tri.cutValue(0b000), 0.0);
    EXPECT_DOUBLE_EQ(tri.cutValue(0b001), 2.0);
    EXPECT_DOUBLE_EQ(tri.cutValue(0b111), 0.0);
    EXPECT_DOUBLE_EQ(tri.maxCutValue(), 2.0);
}

class RingCutTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RingCutTest, EvenRingCutsAllEdges)
{
    const int n = GetParam();
    const MaxCutProblem ring = MaxCutProblem::ring(n);
    // Even ring: alternating assignment cuts every edge.
    EXPECT_DOUBLE_EQ(ring.maxCutValue(),
                     n % 2 == 0 ? static_cast<double>(n)
                                : static_cast<double>(n - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingCutTest,
                         ::testing::Values(4, 5, 6, 7, 8));

TEST(MaxCut, CostHamiltonianGroundEnergyIsMinusMaxCut)
{
    Rng rng(21);
    const MaxCutProblem p = MaxCutProblem::random(5, 0.6, rng);
    const auto sol = solveExact(p.costHamiltonian());
    EXPECT_NEAR(sol.groundEnergy(), -p.maxCutValue(), 1e-9);
}

TEST(MaxCut, CostHamiltonianDiagonalValues)
{
    // <z|C|z> = -cut(z) for every computational basis state.
    const MaxCutProblem p(3, {{0, 1, 2.0}, {1, 2, 1.0}});
    const Matrix c = p.costHamiltonian().toMatrix();
    for (std::uint64_t z = 0; z < 8; ++z)
        EXPECT_NEAR(c(z, z).real(), -p.cutValue(z), 1e-12) << z;
}

TEST(MaxCut, WeightedEdges)
{
    const MaxCutProblem p(2, {{0, 1, 3.5}});
    EXPECT_DOUBLE_EQ(p.maxCutValue(), 3.5);
    EXPECT_DOUBLE_EQ(p.cutValue(0b01), 3.5);
}

TEST(MaxCut, RandomGraphDeterministicPerSeed)
{
    Rng a(5), b(5);
    const auto g1 = MaxCutProblem::random(6, 0.5, a);
    const auto g2 = MaxCutProblem::random(6, 0.5, b);
    EXPECT_EQ(g1.edges().size(), g2.edges().size());
}

TEST(MaxCut, RandomGraphNeverEmpty)
{
    Rng rng(7);
    const auto g = MaxCutProblem::random(4, 0.0, rng);
    EXPECT_GE(g.edges().size(), 1u);
}

} // namespace
} // namespace qismet
