/** @file Tests for the QAOA ansatz circuit. */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/metrics.hpp"
#include "pauli/expectation.hpp"
#include "qaoa/qaoa_ansatz.hpp"
#include "sim/statevector.hpp"

namespace qismet {
namespace {

TEST(QaoaAnsatz, ParamCountAndStructure)
{
    const MaxCutProblem ring = MaxCutProblem::ring(4);
    const QaoaAnsatz ansatz(ring, 3);
    EXPECT_EQ(ansatz.numParams(), 6);

    const Circuit c = ansatz.build();
    const CircuitMetrics m = computeMetrics(c);
    // 2 CX per edge per layer.
    EXPECT_EQ(m.twoQubitGates, 3 * 2 * 4);
}

TEST(QaoaAnsatz, ZeroAnglesGiveUniformSuperposition)
{
    const MaxCutProblem ring = MaxCutProblem::ring(4);
    const QaoaAnsatz ansatz(ring, 2);
    Statevector st(4);
    st.run(ansatz.build(), std::vector<double>(4, 0.0));
    for (std::uint64_t z = 0; z < 16; ++z)
        EXPECT_NEAR(st.probability(z), 1.0 / 16.0, 1e-12);
}

TEST(QaoaAnsatz, ExpectationAtZeroAnglesIsMean)
{
    // On the uniform superposition, <ZZ> = 0 so <C> = -(1/2) sum w.
    const MaxCutProblem ring = MaxCutProblem::ring(6);
    const QaoaAnsatz ansatz(ring, 1);
    Statevector st(6);
    st.run(ansatz.build(), {0.0, 0.0});
    EXPECT_NEAR(expectation(st, ring.costHamiltonian()), -3.0, 1e-10);
}

TEST(QaoaAnsatz, SingleLayerRingAnalyticOptimum)
{
    // For MaxCut-QAOA at p = 1 on a (triangle-free) ring, the optimal
    // approximation ratio is known to be ~0.692 at gamma, beta != 0.
    // We check that a coarse grid search beats the random-assignment
    // ratio of 0.5 and approaches the analytic value.
    const MaxCutProblem ring = MaxCutProblem::ring(6);
    const QaoaAnsatz ansatz(ring, 1);
    const Circuit c = ansatz.build();
    const PauliSum cost = ring.costHamiltonian();
    const double maxcut = ring.maxCutValue();

    double best_ratio = 0.0;
    for (double gamma = 0.1; gamma < 1.6; gamma += 0.1) {
        for (double beta = 0.1; beta < 1.6; beta += 0.1) {
            Statevector st(6);
            st.run(c, {gamma, beta});
            best_ratio = std::max(best_ratio,
                                  -expectation(st, cost) / maxcut);
        }
    }
    EXPECT_GT(best_ratio, 0.68);
    EXPECT_LE(best_ratio, 1.0 + 1e-9);
}

TEST(QaoaAnsatz, DeeperIsAtLeastAsExpressive)
{
    const MaxCutProblem ring = MaxCutProblem::ring(4);
    const PauliSum cost = ring.costHamiltonian();

    auto best_over_grid = [&](int layers) {
        const QaoaAnsatz ansatz(ring, layers);
        const Circuit c = ansatz.build();
        Rng rng(3);
        double best = 0.0;
        for (int t = 0; t < 400; ++t) {
            std::vector<double> theta(
                static_cast<std::size_t>(ansatz.numParams()));
            for (auto &x : theta)
                x = rng.uniform(0.0, M_PI);
            Statevector st(4);
            st.run(c, theta);
            best = std::max(best, -expectation(st, cost));
        }
        return best;
    };
    EXPECT_GE(best_over_grid(2) + 0.1, best_over_grid(1));
}

} // namespace
} // namespace qismet
