/**
 * @file
 * Lease-scoped ExpectationPlan caching in the serve layer: one cache
 * slot per backend, reused across legs of the same tenant, emptied on
 * tenant handoff (multi-tenant isolation), and invisible in every
 * trajectory digest.
 */

#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "vqe/run_digest.hpp"

namespace qismet {
namespace {

ServeJobSpec
tfimSpec(std::uint64_t tenant, std::uint64_t seed, int app_index = 2)
{
    ServeJobSpec spec;
    spec.tenantId = tenant;
    spec.kind = WorkloadKind::TfimApp;
    spec.appIndex = app_index;
    spec.seed = seed;
    spec.totalJobs = 6;
    return spec;
}

std::string
soloDigest(const ServeJobSpec &spec)
{
    const QismetVqe runner = buildRunner(spec);
    return trajectoryDigest(runner.run(buildRunConfig(spec)).run);
}

TEST(ServePlanCache, SameTenantReusesPlansAcrossJobs)
{
    ServeSchedulerConfig cfg;
    cfg.workers = 1;
    cfg.backends = {"guadalupe"};
    ServeScheduler scheduler(cfg);

    // Three jobs, one tenant, same workload → same Hamiltonian
    // fingerprint: the first leg compiles, the rest hit.
    for (std::uint64_t seed : {11u, 22u, 33u})
        scheduler.submit(tfimSpec(/*tenant=*/5, seed));
    scheduler.drain();

    EXPECT_EQ(scheduler.backendPlanCacheMisses(0), 1u);
    EXPECT_GE(scheduler.backendPlanCacheHits(0), 2u);
    EXPECT_EQ(scheduler.backendPlanCacheSize(0), 1u);
}

TEST(ServePlanCache, TenantHandoffEmptiesTheSlot)
{
    ServeSchedulerConfig cfg;
    cfg.workers = 1;
    cfg.backends = {"guadalupe"};
    cfg.startPaused = true;
    ServeScheduler scheduler(cfg);

    // Alternating tenants on one backend: every handoff clears the
    // slot, so the same Hamiltonian recompiles for each leg and the
    // cache never carries one tenant's plans into another's run.
    scheduler.submit(tfimSpec(/*tenant=*/1, 7));
    scheduler.submit(tfimSpec(/*tenant=*/2, 8));
    scheduler.submit(tfimSpec(/*tenant=*/1, 9));
    scheduler.setPaused(false);
    scheduler.drain();

    EXPECT_EQ(scheduler.backendPlanCacheMisses(0), 3u);
    EXPECT_EQ(scheduler.backendPlanCacheHits(0), 0u);
    // Only the last tenant's plan may remain.
    EXPECT_EQ(scheduler.backendPlanCacheSize(0), 1u);
}

TEST(ServePlanCache, CachedRunsKeepSoloDigests)
{
    // Cache hit vs miss must be invisible in the trajectory: jobs that
    // lease warmed and cold caches all reproduce their solo digest.
    std::vector<ServeJobSpec> specs = {
        tfimSpec(3, 101), tfimSpec(3, 102), tfimSpec(4, 103),
        tfimSpec(3, 104, /*app_index=*/3)};

    ServeSchedulerConfig cfg;
    cfg.workers = 2;
    cfg.backends = {"guadalupe", "mumbai"};
    ServeScheduler scheduler(cfg);
    std::map<std::uint64_t, const ServeJobSpec *> byId;
    for (const ServeJobSpec &spec : specs)
        byId[scheduler.submit(spec)] = &spec;
    scheduler.drain();

    for (const auto &[id, spec] : byId) {
        const auto info = scheduler.poll(id);
        ASSERT_TRUE(info.has_value());
        EXPECT_EQ(info->state, ServeJobState::Completed);
        EXPECT_EQ(info->trajectoryDigest, soloDigest(*spec));
    }
}

} // namespace
} // namespace qismet
