/**
 * @file
 * The full serve-layer soak (`soak` ctest label, not tier1): >= 1000
 * short multiplexed runs with crash injection. Every run's digest must
 * equal its solo digest, and the whole digest table must be identical
 * at 1/2/4/8 workers. Run with `ctest -L soak` or the soak preset.
 *
 * The bounded per-commit variant is test_serve_soak_smoke.cpp; the
 * whole-process kill (exit 43) variant is soak_kill_resume.sh —
 * std::_Exit cannot be exercised inside a gtest process.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "soak_workload.hpp"

#include "common/scratch_dir.hpp"

namespace qismet {
namespace {

namespace fs = std::filesystem;

std::map<std::uint64_t, std::string>
runFleet(const std::vector<ServeJobSpec> &specs, std::size_t workers,
         const std::string &state_dir)
{
    ServeSchedulerConfig cfg;
    cfg.workers = workers;
    cfg.backends.assign(4, "guadalupe");
    cfg.stateDir = state_dir;
    ServeScheduler scheduler(cfg);
    for (const ServeJobSpec &spec : specs)
        scheduler.submit(spec);
    scheduler.drain();
    std::map<std::uint64_t, std::string> digests;
    for (std::uint64_t id : scheduler.jobIds()) {
        const auto info = scheduler.poll(id);
        EXPECT_EQ(info->state, ServeJobState::Completed);
        digests[id] = info->trajectoryDigest;
    }
    return digests;
}

TEST(ServeSoak, ThousandRunSoak)
{
    const fs::path dir = test::scratchDir("qismet_soak_thousand", false);
    const std::size_t kRuns = 1000;
    const std::vector<ServeJobSpec> specs =
        test::soakWorkload(90210, kRuns, true);

    // The same fleet at every worker count, each over fresh state.
    std::map<std::uint64_t, std::string> reference;
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
        std::string leaf = "w";
        leaf += std::to_string(workers);
        const std::string state = (dir / leaf).string();
        const auto digests = runFleet(specs, workers, state);
        ASSERT_EQ(digests.size(), kRuns);
        if (reference.empty())
            reference = digests;
        else
            ASSERT_EQ(digests, reference)
                << "digest table drifted at " << workers << " workers";
    }

    // Every run bit-identical to its solo execution.
    for (std::size_t i = 0; i < specs.size(); ++i)
        ASSERT_EQ(reference.at(i + 1), test::soloDigest(specs[i]))
            << "run " << i << " diverged from solo";
    fs::remove_all(dir);
}

} // namespace
} // namespace qismet
