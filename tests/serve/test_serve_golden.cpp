/**
 * @file
 * Golden-trace equivalence through the serve layer: the three pinned
 * golden runs (tests/golden/test_golden_traces.cpp) execute inside a
 * busy multi-tenant scheduler, surrounded by filler tenants, and must
 * reproduce the pinned digests byte for byte at several worker counts.
 *
 * This is the serve determinism contract stated against an *external*
 * reference: not merely "serve equals solo" (the solo run could drift
 * with the serve layer), but "serve equals the repo-wide golden
 * constants that predate the serve layer".
 *
 * Labelled `golden` with the other trace pins: a trajectory change that
 * regenerates those constants regenerates these too (same constants).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "serve/scheduler.hpp"

namespace qismet {
namespace {

struct GoldenCase
{
    const char *name;
    ServeJobSpec spec;
    const char *digest;
    double finalEstimate;
};

std::vector<GoldenCase>
goldenCases()
{
    std::vector<GoldenCase> cases(3);

    cases[0].name = "h2-vqe";
    cases[0].spec.kind = WorkloadKind::H2Vqe;
    cases[0].spec.seed = 11;
    cases[0].spec.totalJobs = 200;
    cases[0].digest = "c2c0acaf7d968c0e";
    cases[0].finalEstimate = -0.37032714293828062;

    cases[1].name = "tfim-vqe-faults";
    cases[1].spec.kind = WorkloadKind::TfimApp;
    cases[1].spec.appIndex = 1;
    cases[1].spec.seed = 23;
    cases[1].spec.totalJobs = 200;
    cases[1].spec.withFaults = true;
    cases[1].digest = "52dbf1dc85157f0e";
    cases[1].finalEstimate = -2.2793949905318844;

    cases[2].name = "qaoa-maxcut";
    cases[2].spec.kind = WorkloadKind::QaoaRing;
    cases[2].spec.seed = 37;
    cases[2].spec.totalJobs = 200;
    cases[2].digest = "b2296b1a912f1e94";
    cases[2].finalEstimate = -3.7907668020003014;

    for (std::size_t i = 0; i < cases.size(); ++i) {
        cases[i].spec.tenantId = 0;
        // Fillers outrank the goldens: the goldens queue behind other
        // tenants' work, take whichever lease frees up, and must not
        // care.
        cases[i].spec.priority = 0;
    }
    return cases;
}

/** Cheap filler runs from competing tenants. */
std::vector<ServeJobSpec>
fillerWorkload(std::size_t count)
{
    std::vector<ServeJobSpec> specs;
    for (std::size_t i = 0; i < count; ++i) {
        Rng rng(deriveStreamSeed(808, StreamDomain::kSoakSpec, i));
        ServeJobSpec spec;
        spec.tenantId = 1 + rng.uniformInt(3);
        spec.priority = static_cast<int>(rng.uniformInt(2));
        spec.kind = WorkloadKind::TfimApp;
        spec.appIndex = static_cast<int>(1 + rng.uniformInt(6));
        spec.seed = rng.engine()();
        spec.totalJobs = 6 + rng.uniformInt(6);
        spec.withFaults = rng.bernoulli(0.5);
        specs.push_back(spec);
    }
    return specs;
}

void
runGoldenThroughServe(std::size_t workers)
{
    const std::vector<GoldenCase> cases = goldenCases();
    const std::vector<ServeJobSpec> fillers = fillerWorkload(9);

    ServeSchedulerConfig cfg;
    cfg.workers = workers;
    cfg.backends = {"guadalupe", "toronto", "sydney"};
    ServeScheduler scheduler(cfg);

    // Interleave: filler, golden, filler, … so goldens contend for
    // leases from the first dispatch on.
    std::map<std::string, std::uint64_t> goldenIds;
    std::size_t f = 0;
    for (const GoldenCase &c : cases) {
        for (int k = 0; k < 3 && f < fillers.size(); ++k)
            scheduler.submit(fillers[f++]);
        goldenIds[c.name] = scheduler.submit(c.spec);
    }
    scheduler.drain();

    for (const GoldenCase &c : cases) {
        const auto info = scheduler.poll(goldenIds.at(c.name));
        ASSERT_TRUE(info.has_value()) << c.name;
        ASSERT_EQ(info->state, ServeJobState::Completed) << c.name;
        EXPECT_EQ(info->trajectoryDigest, c.digest)
            << c.name << " at " << workers
            << " workers: multiplexed trajectory diverged from the "
               "pinned golden";
        EXPECT_DOUBLE_EQ(info->finalEstimate, c.finalEstimate)
            << c.name;
    }
    // The fillers completed too (sanity: the fleet really was busy).
    for (std::uint64_t id : scheduler.jobIds())
        EXPECT_EQ(scheduler.poll(id)->state, ServeJobState::Completed);
}

TEST(ServeGoldenEquivalence, TwoWorkers)
{
    runGoldenThroughServe(2);
}

TEST(ServeGoldenEquivalence, FourWorkers)
{
    runGoldenThroughServe(4);
}

} // namespace
} // namespace qismet
