/**
 * @file
 * Backend health model + circuit breaker: hysteresis thresholds,
 * breaker trip/half-open/reopen timing, latency degradation, storm
 * drift, transition journaling and restoreHealth round-trips.
 * All single-threaded — the model is deterministic arithmetic.
 */

#include "serve/backend_pool.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace qismet {
namespace {

BackendPool
fleet(std::size_t n, HealthPolicy policy = {})
{
    return BackendPool(std::vector<std::string>(n, "guadalupe"), 1234,
                       policy);
}

/** Lease backend 0 and fault it, advancing `tick` by one per cycle. */
std::vector<HealthTransition>
faultOnce(BackendPool &pool, std::uint64_t &tick)
{
    std::vector<HealthTransition> acquireTransitions;
    auto lease = pool.acquireHealthAware(tick, acquireTransitions);
    EXPECT_TRUE(lease.has_value());
    ++tick;
    auto t = pool.releaseFaulted(*lease, tick);
    for (const HealthTransition &a : acquireTransitions)
        t.insert(t.begin(), a);
    return t;
}

TEST(HealthPolicy, RejectsMalformedFields)
{
    HealthPolicy p;
    p.degradeAfterFaults = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = HealthPolicy{};
    p.quarantineAfterFaults = p.degradeAfterFaults - 1;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = HealthPolicy{};
    p.breakerCooldownGrowth = 0.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = HealthPolicy{};
    p.latencyEwmaAlpha = 1.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(BackendHealthModel, ConsecutiveFaultsDegradeThenQuarantine)
{
    BackendPool pool = fleet(1);
    std::uint64_t tick = 0;

    faultOnce(pool, tick);
    EXPECT_EQ(pool.health(0), BackendHealth::Healthy);
    faultOnce(pool, tick); // 2nd consecutive fault: degradeAfterFaults
    EXPECT_EQ(pool.health(0), BackendHealth::Degraded);
    EXPECT_EQ(pool.breaker(0), BreakerState::Closed);
    faultOnce(pool, tick);
    faultOnce(pool, tick); // 4th: quarantineAfterFaults — breaker trips
    EXPECT_EQ(pool.health(0), BackendHealth::Quarantined);
    EXPECT_EQ(pool.breaker(0), BreakerState::Open);
    EXPECT_EQ(pool.stats().breakerTrips, 1u);
    EXPECT_EQ(pool.stats().faultsObserved, 4u);
    EXPECT_EQ(pool.leasesFaulted(0), 4u);
    EXPECT_EQ(pool.leasesCompleted(0), 0u);
}

TEST(BackendHealthModel, SuccessResetsFaultStreak)
{
    BackendPool pool = fleet(1);
    std::uint64_t tick = 0;
    faultOnce(pool, tick);
    std::vector<HealthTransition> t;
    auto lease = pool.acquireHealthAware(tick, t);
    pool.releaseSuccess(*lease, 1.0, ++tick);
    EXPECT_EQ(pool.consecutiveFaults(0), 0u);
    // The streak starts over: one more fault must not degrade.
    faultOnce(pool, tick);
    EXPECT_EQ(pool.health(0), BackendHealth::Healthy);
}

TEST(BackendHealthModel, OpenBreakerBlocksLeasingUntilCooldown)
{
    BackendPool pool = fleet(1);
    std::uint64_t tick = 0;
    for (int i = 0; i < 4; ++i)
        faultOnce(pool, tick); // trips at tick 4
    ASSERT_EQ(pool.breaker(0), BreakerState::Open);

    const std::uint64_t cooldown = pool.policy().breakerCooldownTicks;
    EXPECT_FALSE(pool.leasable(0, tick));
    EXPECT_FALSE(pool.anyLeasable(tick));
    ASSERT_TRUE(pool.earliestProbeTick().has_value());
    const std::uint64_t probeTick = *pool.earliestProbeTick();
    EXPECT_EQ(probeTick, tick + cooldown);
    EXPECT_FALSE(pool.leasable(0, probeTick - 1));
    EXPECT_TRUE(pool.leasable(0, probeTick));

    // Leasing at the probe tick half-opens the breaker.
    std::vector<HealthTransition> t;
    auto lease = pool.acquireHealthAware(probeTick, t);
    ASSERT_TRUE(lease.has_value());
    EXPECT_EQ(pool.breaker(0), BreakerState::HalfOpen);
    EXPECT_EQ(pool.stats().halfOpenProbes, 1u);
    ASSERT_FALSE(t.empty());
    EXPECT_EQ(t.back().breaker, BreakerState::HalfOpen);
}

TEST(BackendHealthModel, SuccessfulProbeClosesToDegraded)
{
    BackendPool pool = fleet(1, {});
    std::uint64_t tick = 0;
    for (int i = 0; i < 4; ++i)
        faultOnce(pool, tick);
    const std::uint64_t probeTick = *pool.earliestProbeTick();
    std::vector<HealthTransition> t;
    auto lease = pool.acquireHealthAware(probeTick, t);
    pool.releaseSuccess(*lease, 1.0, probeTick + 1);
    EXPECT_EQ(pool.breaker(0), BreakerState::Closed);
    // Recovery is hysteretic: one probe success earns Degraded, not
    // Healthy.
    EXPECT_EQ(pool.health(0), BackendHealth::Degraded);

    // recoverAfterSuccesses clean successes earn Healthy again.
    std::uint64_t now = probeTick + 1;
    for (int i = 0; i < pool.policy().recoverAfterSuccesses; ++i) {
        std::vector<HealthTransition> tr;
        auto l = pool.acquireHealthAware(now, tr);
        pool.releaseSuccess(*l, 1.0, ++now);
    }
    EXPECT_EQ(pool.health(0), BackendHealth::Healthy);
}

TEST(BackendHealthModel, FailedProbeReopensWithGrownBoundedCooldown)
{
    BackendPool pool = fleet(1);
    std::uint64_t tick = 0;
    for (int i = 0; i < 4; ++i)
        faultOnce(pool, tick);

    const HealthPolicy &p = pool.policy();
    std::uint64_t cooldown = p.breakerCooldownTicks;
    for (int round = 0; round < 8; ++round) {
        const std::uint64_t probeTick = *pool.earliestProbeTick();
        std::vector<HealthTransition> t;
        auto lease = pool.acquireHealthAware(probeTick, t);
        ASSERT_TRUE(lease.has_value());
        const auto reopen = pool.releaseFaulted(*lease, probeTick + 1);
        ASSERT_EQ(pool.breaker(0), BreakerState::Open);
        ASSERT_FALSE(reopen.empty());
        const std::uint64_t grown = static_cast<std::uint64_t>(
            static_cast<double>(cooldown) * p.breakerCooldownGrowth);
        cooldown = std::min(grown, p.breakerMaxCooldownTicks);
        EXPECT_EQ(reopen.back().cooldownTicks, cooldown);
    }
    EXPECT_EQ(cooldown, p.breakerMaxCooldownTicks);
    EXPECT_EQ(pool.stats().breakerReopens, 8u);
}

TEST(BackendHealthModel, SlowSuccessesDegradeViaLatencyEwma)
{
    BackendPool pool = fleet(1);
    std::uint64_t tick = 0;
    // Latency factor 8 with alpha 0.25: EWMA jumps 1 -> 2.75 on the
    // first observation, past the degrade factor of 2.
    for (int i = 0; i < 2; ++i) {
        std::vector<HealthTransition> t;
        auto lease = pool.acquireHealthAware(tick, t);
        pool.releaseSuccess(*lease, 8.0, ++tick);
    }
    EXPECT_EQ(pool.health(0), BackendHealth::Degraded);
    EXPECT_GT(pool.latencyEwma(0), pool.policy().latencyDegradeFactor);
    // Breaker stays closed — slowness is not a fault.
    EXPECT_EQ(pool.breaker(0), BreakerState::Closed);
}

TEST(BackendHealthModel, HealthAwareAcquirePrefersHealthy)
{
    BackendPool pool = fleet(3);
    std::uint64_t tick = 0;
    // Degrade backend 0 (it would otherwise win by lowest id).
    for (int i = 0; i < 2; ++i)
        faultOnce(pool, tick);
    ASSERT_EQ(pool.health(0), BackendHealth::Degraded);

    std::vector<HealthTransition> t;
    const auto first = pool.acquireHealthAware(tick, t);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->backendId, 1u); // healthy beats degraded
    const auto second = pool.acquireHealthAware(tick, t);
    EXPECT_EQ(second->backendId, 2u);
    const auto third = pool.acquireHealthAware(tick, t);
    EXPECT_EQ(third->backendId, 0u); // degraded still serves
}

TEST(BackendHealthModel, CalibrationStormDriftsDigestAndDegrades)
{
    BackendPool pool = fleet(2);
    const std::uint64_t before = pool.calibrationDigest(0);
    const std::uint64_t other = pool.calibrationDigest(1);
    pool.applyCalibrationStorm(0, 3, 5);
    EXPECT_NE(pool.calibrationDigest(0), before);
    EXPECT_EQ(pool.calibrationDigest(1), other); // isolation holds
    EXPECT_EQ(pool.health(0), BackendHealth::Degraded);
    EXPECT_EQ(pool.stats().stormsApplied, 1u);

    // Equal storm histories give equal digests (pure drift stream).
    BackendPool pool2 = fleet(2);
    pool2.applyCalibrationStorm(0, 3, 99); // tick does not enter drift
    EXPECT_EQ(pool2.calibrationDigest(0), pool.calibrationDigest(0));
}

TEST(BackendHealthModel, RestoreHealthRebuildsBreakerState)
{
    BackendPool pool = fleet(2);
    std::uint64_t tick = 0;
    std::vector<HealthTransition> journal;
    for (int i = 0; i < 4; ++i) {
        // Pin every fault to backend 0, holding other leases so the
        // health-aware pick cannot route around it: the fault streak
        // lands on one machine, like a real outage.
        std::vector<HealthTransition> t;
        std::vector<BackendLease> held;
        while (true) {
            auto lease = pool.acquireHealthAware(tick, t);
            ASSERT_TRUE(lease.has_value());
            if (lease->backendId == 0) {
                ++tick;
                auto tr = pool.releaseFaulted(*lease, tick);
                journal.insert(journal.end(), tr.begin(), tr.end());
                break;
            }
            held.push_back(*lease);
        }
        for (const BackendLease &h : held)
            pool.releaseSuccess(h, 1.0, tick);
    }
    ASSERT_EQ(pool.breaker(0), BreakerState::Open);

    BackendPool resumed = fleet(2);
    for (const HealthTransition &t : journal)
        resumed.restoreHealth(t);
    EXPECT_EQ(resumed.health(0), pool.health(0));
    EXPECT_EQ(resumed.breaker(0), pool.breaker(0));
    EXPECT_EQ(resumed.consecutiveFaults(0), pool.consecutiveFaults(0));
    EXPECT_EQ(resumed.earliestProbeTick(), pool.earliestProbeTick());
    EXPECT_EQ(resumed.health(1), BackendHealth::Healthy);
}

TEST(BackendHealthModel, RestoreHalfOpenBecomesOpen)
{
    // A crash mid-probe loses the probe lease; the restored breaker
    // must be Open (serving its cooldown), never stuck HalfOpen.
    BackendPool pool = fleet(1);
    HealthTransition t;
    t.backendId = 0;
    t.tick = 12;
    t.health = BackendHealth::Quarantined;
    t.breaker = BreakerState::HalfOpen;
    t.cooldownTicks = 16;
    t.breakerOpenedTick = 4;
    pool.restoreHealth(t);
    EXPECT_EQ(pool.breaker(0), BreakerState::Open);
    EXPECT_EQ(pool.health(0), BackendHealth::Quarantined);
    ASSERT_TRUE(pool.earliestProbeTick().has_value());
    EXPECT_EQ(*pool.earliestProbeTick(), 20u);
}

TEST(BackendHealthModel, FaultedLeaseDoesNotAdvanceCalibration)
{
    BackendPool pool = fleet(1);
    const std::uint64_t before = pool.calibrationDigest(0);
    std::uint64_t tick = 0;
    faultOnce(pool, tick);
    EXPECT_EQ(pool.calibrationDigest(0), before);

    // A successful lease does advance it.
    std::vector<HealthTransition> t;
    auto lease = pool.acquireHealthAware(tick, t);
    pool.releaseSuccess(*lease, 1.0, ++tick);
    EXPECT_NE(pool.calibrationDigest(0), before);
}

TEST(BackendHealthModel, LegacyReleaseKeepsHysteresisArithmetic)
{
    // Direct pool users (pre-health API) still feed the same success
    // hysteresis: release() == releaseSuccess(latency 1, tick 0).
    BackendPool pool = fleet(1);
    std::uint64_t tick = 0;
    for (int i = 0; i < 2; ++i)
        faultOnce(pool, tick);
    ASSERT_EQ(pool.health(0), BackendHealth::Degraded);
    for (int i = 0; i < pool.policy().recoverAfterSuccesses; ++i)
        pool.release(pool.acquire());
    EXPECT_EQ(pool.health(0), BackendHealth::Healthy);
}

TEST(BackendHealthModel, StateNamesAreStable)
{
    EXPECT_EQ(backendHealthName(BackendHealth::Quarantined),
              "quarantined");
    EXPECT_EQ(breakerStateName(BreakerState::HalfOpen), "half-open");
}

} // namespace
} // namespace qismet
