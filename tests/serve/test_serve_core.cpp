#include "serve/serve_core.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace qismet {
namespace {

ServeJobSpec
spec(std::uint64_t tenant, int priority = 0)
{
    ServeJobSpec s;
    s.tenantId = tenant;
    s.priority = priority;
    s.kind = WorkloadKind::TfimApp;
    s.appIndex = 1;
    s.totalJobs = 4;
    return s;
}

/** Dispatch + finish one leg; returns the dispatched job id. */
std::uint64_t
step(ServeCore &core)
{
    const auto d = core.nextDispatch();
    EXPECT_TRUE(d.has_value());
    core.onRunFinished(*d, "digest", -1.0, 4);
    return d->jobId;
}

TEST(ServeCore, SubmitAssignsDenseIdsFromOne)
{
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    EXPECT_EQ(core.submit(spec(0)), 1u);
    EXPECT_EQ(core.submit(spec(0)), 2u);
    EXPECT_EQ(core.submit(spec(1)), 3u);
    EXPECT_EQ(core.queuedCount(), 3u);
    EXPECT_EQ(core.jobIds(), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(ServeCore, LifecycleQueuedRunningCompleted)
{
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    const std::uint64_t id = core.submit(spec(0));
    EXPECT_EQ(core.find(id)->state, ServeJobState::Queued);

    const auto d = core.nextDispatch();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->jobId, id);
    EXPECT_FALSE(d->resume);
    EXPECT_EQ(d->crashAfterIters, 0u);
    EXPECT_EQ(core.find(id)->state, ServeJobState::Running);
    EXPECT_FALSE(pool.anyFree());

    core.onRunFinished(*d, "abc", -2.5, 4);
    const auto info = core.find(id);
    EXPECT_EQ(info->state, ServeJobState::Completed);
    EXPECT_EQ(info->trajectoryDigest, "abc");
    EXPECT_EQ(info->finalEstimate, -2.5);
    EXPECT_EQ(info->jobsUsed, 4u);
    EXPECT_TRUE(pool.anyFree());
    EXPECT_EQ(core.pendingCount(), 0u);
}

TEST(ServeCore, NoDispatchWithoutFreeBackend)
{
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    core.submit(spec(0));
    core.submit(spec(0));
    const auto first = core.nextDispatch();
    ASSERT_TRUE(first.has_value());
    EXPECT_FALSE(core.nextDispatch().has_value())
        << "single backend is leased; second job must wait";
    core.onRunFinished(*first, "d", 0.0, 4);
    EXPECT_TRUE(core.nextDispatch().has_value());
}

TEST(ServeCore, FifoWithinOneTenant)
{
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    core.submit(spec(0));
    core.submit(spec(0));
    core.submit(spec(0));
    EXPECT_EQ(step(core), 1u);
    EXPECT_EQ(step(core), 2u);
    EXPECT_EQ(step(core), 3u);
}

TEST(ServeCore, StrictPriorityFirst)
{
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    core.submit(spec(0, 0)); // id 1, low priority
    core.submit(spec(1, 5)); // id 2, high priority
    core.submit(spec(2, 5)); // id 3, high priority
    EXPECT_EQ(step(core), 2u);
    EXPECT_EQ(step(core), 3u);
    EXPECT_EQ(step(core), 1u);
}

TEST(ServeCore, EqualWeightsAlternateTenants)
{
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    // Tenant 0 floods first; tenant 1's jobs arrive after. Stride
    // fair-share interleaves them instead of draining tenant 0.
    const std::uint64_t a1 = core.submit(spec(0));
    const std::uint64_t a2 = core.submit(spec(0));
    const std::uint64_t b1 = core.submit(spec(1));
    const std::uint64_t b2 = core.submit(spec(1));
    EXPECT_EQ(step(core), a1);
    EXPECT_EQ(step(core), b1);
    EXPECT_EQ(step(core), a2);
    EXPECT_EQ(step(core), b2);
}

TEST(ServeCore, WeightsSkewTheShare)
{
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    core.setTenantWeight(0, 2.0);
    core.setTenantWeight(1, 1.0);
    for (int i = 0; i < 30; ++i) {
        core.submit(spec(0));
        core.submit(spec(1));
    }
    for (int i = 0; i < 30; ++i)
        step(core);
    // Weight 2 tenant gets ~2/3 of the first 30 dispatches.
    const std::uint64_t heavy = core.tenantDispatches(0);
    const std::uint64_t light = core.tenantDispatches(1);
    EXPECT_EQ(heavy + light, 30u);
    EXPECT_NEAR(static_cast<double>(heavy), 20.0, 1.0);
    EXPECT_NEAR(static_cast<double>(light), 10.0, 1.0);
}

TEST(ServeCore, LateTenantGetsNoAbsenceCredit)
{
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    for (int i = 0; i < 10; ++i)
        core.submit(spec(0));
    for (int i = 0; i < 5; ++i)
        step(core);
    // Tenant 1 joins late: it must share from now on, not monopolize
    // the queue to "catch up" on dispatches it never asked for.
    core.submit(spec(1));
    core.submit(spec(1));
    const std::uint64_t first = step(core);
    const std::uint64_t second = step(core);
    EXPECT_NE(first, second);
    const bool interleaved =
        core.tenantDispatches(1) == 1u || core.tenantDispatches(1) == 2u;
    EXPECT_TRUE(interleaved);
    // But never both late jobs before tenant 0 runs again.
    EXPECT_GE(core.tenantDispatches(0), 6u - 1u);
}

TEST(ServeCore, SetTenantWeightValidates)
{
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    EXPECT_THROW(core.setTenantWeight(0, 0.0), std::invalid_argument);
    EXPECT_THROW(core.setTenantWeight(0, -1.0), std::invalid_argument);
}

TEST(ServeCore, CancelOnlyQueuedJobs)
{
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    const std::uint64_t a = core.submit(spec(0));
    const std::uint64_t b = core.submit(spec(0));
    const auto d = core.nextDispatch();
    ASSERT_TRUE(d.has_value());
    ASSERT_EQ(d->jobId, a);

    EXPECT_FALSE(core.cancel(a)) << "running job is not preemptible";
    EXPECT_TRUE(core.cancel(b));
    EXPECT_FALSE(core.cancel(b)) << "already cancelled";
    EXPECT_FALSE(core.cancel(999)) << "unknown id";
    EXPECT_EQ(core.find(b)->state, ServeJobState::Cancelled);

    core.onRunFinished(*d, "d", 0.0, 4);
    EXPECT_FALSE(core.cancel(a)) << "completed job";
    EXPECT_FALSE(core.nextDispatch().has_value())
        << "cancelled job must never dispatch";
    EXPECT_EQ(core.cancelledCount(), 1u);
    EXPECT_EQ(core.completedCount(), 1u);
}

TEST(ServeCore, CrashPlanDrivesLegsAndResume)
{
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    ServeJobSpec s = spec(0);
    s.crashPlan = {2, 5};
    const std::uint64_t id = core.submit(s);

    // Leg 0: fresh start, crashes at iteration 2.
    auto d = core.nextDispatch();
    ASSERT_TRUE(d.has_value());
    EXPECT_FALSE(d->resume);
    EXPECT_EQ(d->crashAfterIters, 2u);
    core.onRunCrashed(*d);
    EXPECT_EQ(core.find(id)->state, ServeJobState::Queued);
    EXPECT_TRUE(pool.anyFree()) << "crashed leg released its lease";

    // Leg 1: resumes, crashes at iteration 5.
    d = core.nextDispatch();
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(d->resume);
    EXPECT_EQ(d->leg, 1u);
    EXPECT_EQ(d->crashAfterIters, 5u);
    core.onRunCrashed(*d);

    // Leg 2: past the plan — runs to completion.
    d = core.nextDispatch();
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(d->resume);
    EXPECT_EQ(d->crashAfterIters, 0u);
    core.onRunFinished(*d, "final", -1.5, 4);
    const auto info = core.find(id);
    EXPECT_EQ(info->state, ServeJobState::Completed);
    EXPECT_EQ(info->legsDispatched, 3u);
}

TEST(ServeCore, ReplayRebuildsTheJobTable)
{
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    ServeJobSpec s = spec(3);
    core.replaySubmit(5, s);
    core.replaySubmit(9, s);
    EXPECT_THROW(core.replaySubmit(9, s), std::invalid_argument)
        << "id reuse";
    EXPECT_THROW(core.replaySubmit(7, s), std::invalid_argument)
        << "non-monotonic id";

    core.replayComplete(5, "olddigest", -3.0, 4);
    EXPECT_EQ(core.find(5)->state, ServeJobState::Completed);
    EXPECT_EQ(core.find(5)->trajectoryDigest, "olddigest");
    EXPECT_THROW(core.replayComplete(5, "x", 0.0, 0),
                 std::invalid_argument)
        << "double replay-complete";

    // The un-completed replayed job dispatches with resume set: its
    // checkpoint (if any) carries the progress.
    const auto d = core.nextDispatch();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->jobId, 9u);
    EXPECT_TRUE(d->resume);

    // Fresh submissions continue above the replayed id range.
    EXPECT_EQ(core.submit(spec(0)), 10u);
}

TEST(ServeCore, FinishValidatesJobState)
{
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    core.submit(spec(0));
    const auto d = core.nextDispatch();
    ASSERT_TRUE(d.has_value());
    core.onRunFinished(*d, "d", 0.0, 4);
    EXPECT_THROW(core.onRunFinished(*d, "d", 0.0, 4),
                 std::invalid_argument)
        << "double finish of the same dispatch";
    EXPECT_THROW(core.onRunCrashed(*d), std::invalid_argument);
}

TEST(ServeCore, MultipleBackendsRunConcurrentLegs)
{
    BackendPool pool({"guadalupe", "toronto", "sydney"}, 1);
    ServeCore core(pool);
    for (int i = 0; i < 5; ++i)
        core.submit(spec(static_cast<std::uint64_t>(i)));
    const auto d1 = core.nextDispatch();
    const auto d2 = core.nextDispatch();
    const auto d3 = core.nextDispatch();
    ASSERT_TRUE(d1 && d2 && d3);
    EXPECT_FALSE(core.nextDispatch().has_value()) << "pool exhausted";
    EXPECT_EQ(core.runningCount(), 3u);
    // Distinct backends, distinct jobs.
    EXPECT_NE(d1->lease.backendId, d2->lease.backendId);
    EXPECT_NE(d2->lease.backendId, d3->lease.backendId);
    core.onRunFinished(*d2, "d", 0.0, 4);
    EXPECT_TRUE(core.nextDispatch().has_value())
        << "freed backend re-dispatches immediately";
}

} // namespace
} // namespace qismet
