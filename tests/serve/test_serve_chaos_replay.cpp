/**
 * @file
 * Chaos replay equivalence (the `chaos` tier): a generated fleet fault
 * schedule produces the *same* per-job outcome table — states, shed
 * set and trajectory digests — at every worker count, every completed
 * run still equals its solo execution, and the repo's pinned golden
 * workloads survive a chaotic fleet (outages forcing migrations,
 * slowdowns, a calibration storm) byte for byte.
 *
 * This is the serve determinism contract under adversity: chaos may
 * reshape *which machine* runs a leg and *when*, never *what the run
 * computes*. Collision identity (which leg hits which outage window)
 * is explicitly interleaving-dependent; outcome identity is not.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "fault/chaos.hpp"
#include "serve/scheduler.hpp"
#include "vqe/run_digest.hpp"

namespace qismet {
namespace {

/** Mirror of the serve_chaos CLI workload derivation (kChaosWorkload
 * stream): spec i is a pure function of (seed, i). */
ServeJobSpec
chaosSpec(std::uint64_t master_seed, std::uint64_t index,
          std::uint64_t tenants)
{
    Rng rng(deriveStreamSeed(master_seed, StreamDomain::kChaosWorkload,
                             index));
    ServeJobSpec spec;
    spec.tenantId = rng.uniformInt(tenants);
    spec.priority = static_cast<int>(rng.uniformInt(3));
    const std::uint64_t kindDraw = rng.uniformInt(10);
    if (kindDraw < 7) {
        spec.kind = WorkloadKind::TfimApp;
        spec.appIndex = static_cast<int>(1 + rng.uniformInt(6));
    }
    else if (kindDraw < 9) {
        spec.kind = WorkloadKind::QaoaRing;
    }
    else {
        spec.kind = WorkloadKind::H2Vqe;
    }
    spec.seed = rng.engine()();
    spec.totalJobs = 8 + rng.uniformInt(8);
    spec.withFaults = rng.bernoulli(0.3);
    if (rng.uniform() < 0.25)
        spec.deadlineSimSeconds =
            0.6 * static_cast<double>(spec.totalJobs);
    return spec;
}

/** Per-job (state, digest) table of one chaotic fleet execution. */
std::map<std::uint64_t, std::pair<ServeJobState, std::string>>
runChaoticFleet(const std::vector<ServeJobSpec> &specs,
                const ChaosSchedule &schedule, std::size_t workers,
                ServeFleetStats *stats_out = nullptr)
{
    ServeSchedulerConfig cfg;
    cfg.workers = workers;
    cfg.backends = {"guadalupe", "guadalupe", "guadalupe"};
    cfg.queueBound = 16;
    cfg.chaos = &schedule;
    cfg.startPaused = true; // worker-count-invariant shed set
    ServeScheduler scheduler(cfg);
    for (const ServeJobSpec &spec : specs)
        scheduler.submit(spec);
    scheduler.setPaused(false);
    scheduler.drain();

    std::map<std::uint64_t, std::pair<ServeJobState, std::string>>
        table;
    for (std::uint64_t id : scheduler.jobIds()) {
        const auto info = scheduler.poll(id);
        EXPECT_TRUE(info.has_value());
        table[id] = {info->state, info->trajectoryDigest};
    }
    if (stats_out != nullptr)
        *stats_out = scheduler.fleetStats();
    return table;
}

TEST(ChaosReplay, OutcomeTableInvariantAcrossWorkerCounts)
{
    ChaosConfig chaosCfg;
    chaosCfg.backends = 3;
    chaosCfg.tenants = 4;
    chaosCfg.horizonTicks = 96;
    const ChaosSchedule schedule = generateChaosSchedule(chaosCfg, 99);

    std::vector<ServeJobSpec> specs;
    for (std::uint64_t i = 0; i < 24; ++i)
        specs.push_back(chaosSpec(2026, i, chaosCfg.tenants));

    ServeFleetStats soloStats;
    const auto solo = runChaoticFleet(specs, schedule, 1, &soloStats);
    // The schedule actually bit: something was shed, migrated or
    // truncated — this test must not pass vacuously.
    EXPECT_GT(soloStats.shed + soloStats.migrations +
                  soloStats.deadlineExpirations,
              0u);

    for (std::size_t workers : {2u, 4u, 8u}) {
        const auto wide = runChaoticFleet(specs, schedule, workers);
        EXPECT_EQ(solo, wide)
            << "outcome table diverged at " << workers << " workers";
    }

    // Outcome purity: every completed run equals its solo execution.
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto &[state, digest] = solo.at(i + 1);
        if (state != ServeJobState::Completed)
            continue;
        const QismetVqe runner = buildRunner(specs[i]);
        EXPECT_EQ(digest,
                  trajectoryDigest(
                      runner.run(buildRunConfig(specs[i])).run))
            << "spec " << i;
    }
}

TEST(ChaosReplay, GoldenWorkloadsSurviveAChaoticFleet)
{
    struct GoldenCase
    {
        const char *name;
        ServeJobSpec spec;
        const char *digest;
        double finalEstimate;
    };
    // The three repo-wide golden pins (tests/golden,
    // tests/serve/test_serve_golden.cpp) — constants predate the
    // chaos layer and must survive it untouched.
    std::vector<GoldenCase> cases(3);
    cases[0].name = "h2-vqe";
    cases[0].spec.kind = WorkloadKind::H2Vqe;
    cases[0].spec.seed = 11;
    cases[0].spec.totalJobs = 200;
    cases[0].digest = "c2c0acaf7d968c0e";
    cases[0].finalEstimate = -0.37032714293828062;
    cases[1].name = "tfim-vqe-faults";
    cases[1].spec.kind = WorkloadKind::TfimApp;
    cases[1].spec.appIndex = 1;
    cases[1].spec.seed = 23;
    cases[1].spec.totalJobs = 200;
    cases[1].spec.withFaults = true;
    cases[1].digest = "52dbf1dc85157f0e";
    cases[1].finalEstimate = -2.2793949905318844;
    cases[2].name = "qaoa-maxcut";
    cases[2].spec.kind = WorkloadKind::QaoaRing;
    cases[2].spec.seed = 37;
    cases[2].spec.totalJobs = 200;
    cases[2].digest = "b2296b1a912f1e94";
    cases[2].finalEstimate = -3.7907668020003014;

    // A deliberately hostile hand-built schedule: every backend opens
    // with an outage (forcing the goldens' first legs to migrate), a
    // long slowdown degrades one machine, and a storm drifts another.
    std::vector<ChaosEvent> events;
    for (std::uint64_t b = 0; b < 3; ++b) {
        ChaosEvent outage;
        outage.kind = ChaosKind::BackendOutage;
        outage.target = b;
        outage.startTick = b; // staggered: never all down at once
        outage.endTick = b + 3;
        events.push_back(outage);
    }
    ChaosEvent slow;
    slow.kind = ChaosKind::BackendSlowdown;
    slow.target = 1;
    slow.startTick = 0;
    slow.endTick = 40;
    slow.magnitude = 6.0;
    events.push_back(slow);
    ChaosEvent storm;
    storm.kind = ChaosKind::CalibrationStorm;
    storm.target = 2;
    storm.startTick = 4;
    storm.endTick = 30;
    storm.count = 3;
    events.push_back(storm);
    const ChaosSchedule schedule(std::move(events));

    ServeSchedulerConfig cfg;
    cfg.workers = 4;
    cfg.backends = {"guadalupe", "toronto", "sydney"};
    cfg.chaos = &schedule;
    ServeScheduler scheduler(cfg);

    // Filler tenants keep the fleet contended while the goldens run
    // (same construction as the golden serve suite).
    std::map<std::string, std::uint64_t> goldenIds;
    std::size_t f = 0;
    for (const GoldenCase &c : cases) {
        for (int k = 0; k < 3; ++k) {
            Rng rng(deriveStreamSeed(808, StreamDomain::kSoakSpec,
                                     f++));
            ServeJobSpec filler;
            filler.tenantId = 1 + rng.uniformInt(3);
            filler.priority = static_cast<int>(rng.uniformInt(2));
            filler.kind = WorkloadKind::TfimApp;
            filler.appIndex = static_cast<int>(1 + rng.uniformInt(6));
            filler.seed = rng.engine()();
            filler.totalJobs = 6 + rng.uniformInt(6);
            filler.withFaults = rng.bernoulli(0.5);
            scheduler.submit(filler);
        }
        goldenIds[c.name] = scheduler.submit(c.spec);
    }
    scheduler.drain();

    for (const GoldenCase &c : cases) {
        const auto info = scheduler.poll(goldenIds.at(c.name));
        ASSERT_TRUE(info.has_value()) << c.name;
        ASSERT_EQ(info->state, ServeJobState::Completed) << c.name;
        EXPECT_EQ(info->trajectoryDigest, c.digest)
            << c.name
            << ": trajectory diverged from the pinned golden while "
               "served through a chaotic fleet";
        EXPECT_DOUBLE_EQ(info->finalEstimate, c.finalEstimate)
            << c.name;
    }

    // The opening outages really did force migrations, and every
    // filler completed despite them.
    const ServeFleetStats stats = scheduler.fleetStats();
    EXPECT_GE(stats.backendFaults, 1u);
    EXPECT_EQ(stats.failed, 0u);
    for (std::uint64_t id : scheduler.jobIds())
        EXPECT_EQ(scheduler.poll(id)->state, ServeJobState::Completed);
}

} // namespace
} // namespace qismet
