#include "serve/backend_pool.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

namespace qismet {
namespace {

TEST(BackendPool, ConstructionValidates)
{
    EXPECT_THROW(BackendPool({}, 1), std::invalid_argument);
    EXPECT_THROW(BackendPool({"not-a-machine"}, 1),
                 std::invalid_argument);
    const BackendPool pool({"guadalupe", "toronto"}, 1);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.freeCount(), 2u);
    EXPECT_TRUE(pool.anyFree());
}

TEST(BackendPool, AcquiresLowestIdFreeBackend)
{
    BackendPool pool({"guadalupe", "guadalupe", "guadalupe"}, 1);
    const BackendLease a = pool.acquire();
    const BackendLease b = pool.acquire();
    EXPECT_EQ(a.backendId, 0u);
    EXPECT_EQ(b.backendId, 1u);
    pool.release(a);
    // 0 freed: the next acquire goes back to the lowest id.
    EXPECT_EQ(pool.acquire().backendId, 0u);
    EXPECT_EQ(pool.acquire().backendId, 2u);
}

TEST(BackendPool, ExhaustedPoolThrows)
{
    BackendPool pool({"guadalupe"}, 1);
    const BackendLease lease = pool.acquire();
    EXPECT_FALSE(pool.anyFree());
    EXPECT_THROW(pool.acquire(), std::runtime_error);
    pool.release(lease);
    EXPECT_TRUE(pool.anyFree());
}

TEST(BackendPool, DoubleReleaseThrows)
{
    BackendPool pool({"guadalupe"}, 1);
    const BackendLease lease = pool.acquire();
    pool.release(lease);
    EXPECT_THROW(pool.release(lease), std::invalid_argument);
}

TEST(BackendPool, StaleEpochCannotRelease)
{
    BackendPool pool({"guadalupe"}, 1);
    const BackendLease first = pool.acquire();
    pool.release(first);
    const BackendLease second = pool.acquire();
    EXPECT_NE(first.epoch, second.epoch);
    // The old lease must not be able to yank the backend from its new
    // holder.
    EXPECT_THROW(pool.release(first), std::invalid_argument);
    pool.release(second);
}

TEST(BackendPool, UnknownIdThrows)
{
    BackendPool pool({"guadalupe"}, 1);
    BackendLease bogus;
    bogus.backendId = 99;
    EXPECT_THROW(pool.release(bogus), std::invalid_argument);
    EXPECT_THROW(pool.machine(99), std::invalid_argument);
}

TEST(BackendPool, EpochsIncreaseMonotonically)
{
    BackendPool pool({"guadalupe"}, 7);
    std::uint64_t last = 0;
    for (int i = 0; i < 5; ++i) {
        const BackendLease lease = pool.acquire();
        EXPECT_GT(lease.epoch, last);
        last = lease.epoch;
        pool.release(lease);
    }
    EXPECT_EQ(pool.leasesCompleted(0), 5u);
}

TEST(BackendPool, CalibrationStreamsAreIsolatedPerMachine)
{
    // Two pools with the same seed: in pool A only backend 0 works; in
    // pool B both work. Backend 0's calibration digest must not care
    // what backend 1 did.
    BackendPool a({"guadalupe", "toronto"}, 42);
    BackendPool b({"guadalupe", "toronto"}, 42);

    for (int i = 0; i < 3; ++i) {
        const BackendLease lease = a.acquire(); // always backend 0
        a.release(lease);
    }
    for (int i = 0; i < 3; ++i) {
        const BackendLease l0 = b.acquire();
        const BackendLease l1 = b.acquire();
        b.release(l0);
        b.release(l1);
    }

    EXPECT_EQ(a.calibrationDigest(0), b.calibrationDigest(0));
    EXPECT_NE(b.calibrationDigest(0), b.calibrationDigest(1));
    EXPECT_EQ(a.calibrationDigest(1), 0u) << "idle machine must not "
                                             "advance its stream";
}

TEST(BackendPool, IdenticalMachinesStillHaveDistinctStreams)
{
    // A fleet of identical machines: same model, but per-backend stream
    // roots must differ (keyed by backend id, not machine name).
    BackendPool pool({"guadalupe", "guadalupe"}, 42);
    const BackendLease l0 = pool.acquire();
    const BackendLease l1 = pool.acquire();
    pool.release(l0);
    pool.release(l1);
    EXPECT_NE(pool.calibrationDigest(0), pool.calibrationDigest(1));
}

TEST(BackendPool, EqualHistoriesGiveEqualDigests)
{
    BackendPool a({"sydney"}, 9);
    BackendPool b({"sydney"}, 9);
    for (int i = 0; i < 4; ++i) {
        const BackendLease la = a.acquire();
        a.release(la);
        const BackendLease lb = b.acquire();
        b.release(lb);
    }
    EXPECT_EQ(a.calibrationDigest(0), b.calibrationDigest(0));
    EXPECT_NE(a.calibrationDigest(0), 0u);
}

TEST(BackendPool, NoDoubleLeaseUnderChurn)
{
    BackendPool pool(
        {"guadalupe", "toronto", "sydney", "casablanca"}, 3);
    std::vector<BackendLease> held;
    std::set<std::size_t> heldIds;
    // Deterministic churn: acquire until exhausted, release half,
    // repeat — held ids must stay unique throughout.
    for (int round = 0; round < 6; ++round) {
        while (pool.anyFree()) {
            const BackendLease lease = pool.acquire();
            EXPECT_TRUE(heldIds.insert(lease.backendId).second)
                << "backend " << lease.backendId << " double-leased";
            held.push_back(lease);
        }
        const std::size_t releaseCount = held.size() / 2;
        for (std::size_t i = 0; i < releaseCount; ++i) {
            pool.release(held.back());
            heldIds.erase(held.back().backendId);
            held.pop_back();
        }
    }
    for (const BackendLease &lease : held)
        pool.release(lease);
}

} // namespace
} // namespace qismet
