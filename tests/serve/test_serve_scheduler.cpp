/**
 * @file
 * Threaded end-to-end tests of the ServeScheduler: multiplexed runs
 * stay bit-identical to solo execution at every worker count, crash
 * plans recover through per-run checkpoints, and a rebuilt scheduler
 * (manifest resume) completes interrupted work deterministically.
 */

#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/rng.hpp"
#include "fault/crash_point.hpp"
#include "vqe/run_digest.hpp"

#include "common/scratch_dir.hpp"

namespace qismet {
namespace {

namespace fs = std::filesystem;

/** Small mixed-tenant workload, cheap enough for tier1. */
std::vector<ServeJobSpec>
smallWorkload(std::size_t count)
{
    std::vector<ServeJobSpec> specs;
    for (std::size_t i = 0; i < count; ++i) {
        Rng rng(deriveStreamSeed(404, StreamDomain::kSoakSpec, i));
        ServeJobSpec spec;
        spec.tenantId = rng.uniformInt(3);
        spec.priority = static_cast<int>(rng.uniformInt(2));
        spec.kind = WorkloadKind::TfimApp;
        spec.appIndex = static_cast<int>(1 + rng.uniformInt(6));
        spec.seed = rng.engine()();
        spec.totalJobs = 6 + rng.uniformInt(6);
        spec.withFaults = rng.bernoulli(0.5);
        specs.push_back(spec);
    }
    return specs;
}

std::string
soloDigest(const ServeJobSpec &spec)
{
    const QismetVqe runner = buildRunner(spec);
    return trajectoryDigest(runner.run(buildRunConfig(spec)).run);
}

/** Run a workload through a scheduler; digests keyed by job id. */
std::map<std::uint64_t, std::string>
serveAll(const std::vector<ServeJobSpec> &specs,
         ServeSchedulerConfig cfg)
{
    ServeScheduler scheduler(cfg);
    for (const ServeJobSpec &spec : specs)
        scheduler.submit(spec);
    scheduler.drain();
    std::map<std::uint64_t, std::string> digests;
    for (std::uint64_t id : scheduler.jobIds()) {
        const auto info = scheduler.poll(id);
        EXPECT_TRUE(info.has_value());
        EXPECT_EQ(info->state, ServeJobState::Completed);
        digests[id] = info->trajectoryDigest;
    }
    return digests;
}

fs::path
freshDir(const std::string &name)
{
    return test::scratchDir("qismet_serve_" + name, false);
}

TEST(ServeScheduler, ConfigValidation)
{
    ServeSchedulerConfig cfg;
    cfg.workers = 0;
    EXPECT_THROW(ServeScheduler s(cfg), std::invalid_argument);
    cfg.workers = 1;
    cfg.resume = true;
    EXPECT_THROW(ServeScheduler s(cfg), std::invalid_argument)
        << "resume without stateDir";
}

TEST(ServeScheduler, CrashPlanRequiresDurableScheduler)
{
    ServeSchedulerConfig cfg;
    ServeScheduler scheduler(cfg);
    ServeJobSpec spec;
    spec.totalJobs = 4;
    spec.crashPlan = {2};
    EXPECT_THROW(scheduler.submit(spec), std::invalid_argument);
}

TEST(ServeScheduler, ServedRunMatchesSoloExecution)
{
    ServeJobSpec spec;
    spec.kind = WorkloadKind::TfimApp;
    spec.appIndex = 2;
    spec.seed = 1234;
    spec.totalJobs = 10;
    spec.withFaults = true;

    ServeSchedulerConfig cfg;
    cfg.workers = 2;
    cfg.backends = {"guadalupe", "toronto"};
    const auto digests = serveAll({spec, spec, spec}, cfg);
    const std::string solo = soloDigest(spec);
    ASSERT_EQ(digests.size(), 3u);
    for (const auto &[id, digest] : digests)
        EXPECT_EQ(digest, solo) << "job " << id;
}

TEST(ServeScheduler, DigestsIdenticalAcrossWorkerCounts)
{
    const std::vector<ServeJobSpec> specs = smallWorkload(8);
    ServeSchedulerConfig cfg;
    cfg.backends = {"guadalupe", "guadalupe", "guadalupe",
                    "guadalupe"};
    cfg.workers = 1;
    const auto w1 = serveAll(specs, cfg);
    cfg.workers = 2;
    const auto w2 = serveAll(specs, cfg);
    cfg.workers = 4;
    const auto w4 = serveAll(specs, cfg);
    EXPECT_EQ(w1, w2);
    EXPECT_EQ(w1, w4);

    // And every one equals its solo execution.
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(w1.at(i + 1), soloDigest(specs[i])) << "spec " << i;
}

TEST(ServeScheduler, CancelQueuedJobNeverRuns)
{
    // One worker, one backend: submit two, cancel the second while the
    // first may still be running. If the cancel lands while queued the
    // job must stay cancelled; if the race was lost it completed.
    ServeSchedulerConfig cfg;
    ServeScheduler scheduler(cfg);
    const std::vector<ServeJobSpec> specs = smallWorkload(2);
    const std::uint64_t first = scheduler.submit(specs[0]);
    const std::uint64_t second = scheduler.submit(specs[1]);
    const bool cancelled = scheduler.cancel(second);
    scheduler.drain();
    EXPECT_EQ(scheduler.poll(first)->state, ServeJobState::Completed);
    const ServeJobState got = scheduler.poll(second)->state;
    EXPECT_EQ(got, cancelled ? ServeJobState::Cancelled
                             : ServeJobState::Completed);
    EXPECT_FALSE(scheduler.poll(999).has_value());
}

TEST(ServeScheduler, CancelDuringDrainReleasesTheDrainer)
{
    // Regression: a drain() blocked on the last pending job must wake
    // when that job is *cancelled* rather than completed — the cancel
    // path has to signal the idle condition itself. The paused
    // scheduler guarantees the job can never complete on its own, so
    // only the cancel can release the drainer.
    ServeSchedulerConfig cfg;
    cfg.startPaused = true;
    ServeScheduler scheduler(cfg);
    const std::uint64_t id = scheduler.submit(smallWorkload(1)[0]);

    // A raw thread on purpose: the subject under test is drain()'s own
    // blocking, so it cannot run on the scheduler's ThreadPool.
    auto drained = std::async( // qismet-lint: allow(raw-thread)
        std::launch::async, [&] { scheduler.drain(); });
    // Let the drainer reach its condition-variable wait.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(scheduler.cancel(id));
    ASSERT_EQ(drained.wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "drain() still blocked after the last pending job was "
           "cancelled";
    drained.get();
    EXPECT_EQ(scheduler.poll(id)->state, ServeJobState::Cancelled);
}

TEST(ServeScheduler, CrashPlanLegsRecoverBitIdentically)
{
    const fs::path dir = freshDir("crashplan");
    ServeJobSpec spec;
    spec.kind = WorkloadKind::TfimApp;
    spec.appIndex = 3;
    spec.seed = 777;
    spec.totalJobs = 10;
    spec.crashPlan = {2, 5};

    ServeJobSpec noCrash = spec;
    noCrash.crashPlan.clear();

    ServeSchedulerConfig cfg;
    cfg.workers = 2;
    cfg.stateDir = (dir / "state").string();
    const auto digests = serveAll({spec, noCrash}, cfg);
    const std::string solo = soloDigest(noCrash);
    // Three legs (crash@2, crash@5, finish) produce the same
    // trajectory as the uninterrupted run: resume is bit-exact and
    // crashAfterIters never enters the run config digest.
    EXPECT_EQ(digests.at(1), solo);
    EXPECT_EQ(digests.at(2), solo);
    fs::remove_all(dir);
}

TEST(ServeScheduler, LegAccountingCoversCrashes)
{
    const fs::path dir = freshDir("legs");
    ServeJobSpec spec;
    spec.totalJobs = 8;
    spec.crashPlan = {3};

    ServeSchedulerConfig cfg;
    cfg.stateDir = (dir / "state").string();
    ServeScheduler scheduler(cfg);
    const std::uint64_t id = scheduler.submit(spec);
    scheduler.drain();
    const auto info = scheduler.poll(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, ServeJobState::Completed);
    EXPECT_EQ(info->legsDispatched, 2u) << "crash leg + finish leg";
    // The fleet telemetry agrees: every leg was a completed lease.
    EXPECT_EQ(scheduler.backendLeases(0), 2u);
    fs::remove_all(dir);
}

TEST(ServeScheduler, ResumeReplaysCompletedJobsWithoutRerun)
{
    const fs::path dir = freshDir("resume_done");
    ServeSchedulerConfig cfg;
    cfg.stateDir = (dir / "state").string();
    const std::vector<ServeJobSpec> specs = smallWorkload(3);

    std::map<std::uint64_t, std::string> before;
    {
        ServeScheduler scheduler(cfg);
        for (const ServeJobSpec &spec : specs)
            scheduler.submit(spec);
        scheduler.drain();
        for (std::uint64_t id : scheduler.jobIds())
            before[id] = scheduler.poll(id)->trajectoryDigest;
    }

    cfg.resume = true;
    ServeScheduler resumed(cfg);
    EXPECT_EQ(resumed.replayedCompletions(), 3u);
    resumed.drain();
    for (const auto &[id, digest] : before) {
        const auto info = resumed.poll(id);
        ASSERT_TRUE(info.has_value());
        EXPECT_EQ(info->state, ServeJobState::Completed);
        EXPECT_EQ(info->trajectoryDigest, digest);
    }
    // New work continues above the replayed id range.
    EXPECT_EQ(resumed.submit(specs[0]), 4u);
    resumed.drain();
    EXPECT_EQ(resumed.poll(4)->trajectoryDigest, before.at(1));
    fs::remove_all(dir);
}

TEST(ServeScheduler, ResumeRejectsDifferentFleet)
{
    const fs::path dir = freshDir("fleet_mismatch");
    ServeSchedulerConfig cfg;
    cfg.stateDir = (dir / "state").string();
    cfg.backends = {"guadalupe", "toronto"};
    {
        ServeScheduler scheduler(cfg);
    }
    cfg.resume = true;
    cfg.backends = {"guadalupe"};
    EXPECT_THROW(ServeScheduler s(cfg), ManifestError);
    fs::remove_all(dir);
}

TEST(ServeScheduler, ResumeFinishesInterruptedRunBitIdentically)
{
    // Simulate a whole-process kill mid-run without leaving the test
    // process: run leg 0 by hand until its planned crash (leaving a
    // genuine mid-run checkpoint in the scheduler's run dir), write a
    // manifest that records the submission but no completion, then
    // construct a resume scheduler over that state.
    const fs::path dir = freshDir("resume_midrun");
    const std::string state = (dir / "state").string();
    fs::create_directories(state);

    ServeJobSpec spec;
    spec.kind = WorkloadKind::TfimApp;
    spec.appIndex = 1;
    spec.seed = 4242;
    spec.totalJobs = 10;
    spec.crashPlan = {3};

    ServeSchedulerConfig cfg;
    cfg.stateDir = state;

    {
        // Leg 0, exactly as a worker would run it.
        QismetVqeConfig runCfg = buildRunConfig(spec);
        runCfg.checkpointDir = state + "/run-1";
        runCfg.crashAfterIters = spec.crashPlan[0];
        EXPECT_THROW(buildRunner(spec).run(runCfg), SimulatedCrash);
    }
    {
        // The manifest a killed scheduler would have left behind. The
        // fleet digest must match the config above (same encoding the
        // scheduler uses).
        Encoder enc;
        enc.writeU64(cfg.backendSeed);
        enc.writeU64(cfg.backends.size());
        for (const std::string &name : cfg.backends)
            enc.writeString(name);
        enc.writeU64(cfg.queueBound);
        enc.writeU64(0); // no chaos schedule
        enc.writeI64(cfg.health.degradeAfterFaults);
        enc.writeI64(cfg.health.quarantineAfterFaults);
        enc.writeI64(cfg.health.recoverAfterSuccesses);
        enc.writeU64(cfg.health.breakerCooldownTicks);
        enc.writeF64(cfg.health.breakerCooldownGrowth);
        enc.writeU64(cfg.health.breakerMaxCooldownTicks);
        enc.writeF64(cfg.health.latencyDegradeFactor);
        enc.writeF64(cfg.health.latencyEwmaAlpha);
        ServeManifest manifest(state + "/manifest.qsvm",
                               fnv1a64(enc.bytes()),
                               DurableFile::Mode::Truncate);
        manifest.appendSubmit(1, spec);
    }

    cfg.resume = true;
    ServeScheduler resumed(cfg);
    EXPECT_EQ(resumed.replayedCompletions(), 0u);
    resumed.drain();
    const auto info = resumed.poll(1);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, ServeJobState::Completed);

    ServeJobSpec noCrash = spec;
    noCrash.crashPlan.clear();
    EXPECT_EQ(info->trajectoryDigest, soloDigest(noCrash))
        << "recovered run must continue the interrupted trajectory, "
           "not restart it";
    fs::remove_all(dir);
}

TEST(ServeScheduler, FairShareHoldsUnderThreads)
{
    // Two tenants, weight 1:3, single backend so dispatches serialize.
    ServeSchedulerConfig cfg;
    cfg.workers = 2;
    ServeScheduler scheduler(cfg);
    scheduler.setTenantWeight(0, 1.0);
    scheduler.setTenantWeight(1, 3.0);
    const std::vector<ServeJobSpec> base = smallWorkload(1);
    for (int i = 0; i < 8; ++i) {
        ServeJobSpec spec = base[0];
        spec.priority = 0;
        spec.tenantId = 0;
        scheduler.submit(spec);
        spec.tenantId = 1;
        scheduler.submit(spec);
        scheduler.submit(spec);
        scheduler.submit(spec);
    }
    scheduler.drain();
    EXPECT_EQ(scheduler.tenantDispatches(0), 8u);
    EXPECT_EQ(scheduler.tenantDispatches(1), 24u);
}

} // namespace
} // namespace qismet
