#!/usr/bin/env bash
# Whole-process kill-and-resume soak: run the serve_soak CLI with an
# armed Exit crash point (std::_Exit(43) at a job boundary), then
# resume over the surviving state directory and verify every recovered
# run finishes bit-identical to its solo execution.
#
# Usage: soak_kill_resume.sh <serve_soak-binary> [runs] [kill-after]
set -u

SOAK_BIN=${1:?usage: soak_kill_resume.sh <serve_soak-binary>}
RUNS=${2:-120}
KILL_AFTER=${3:-25}
STATE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/qismet_soak_kill.XXXXXX")
trap 'rm -rf "$STATE_DIR"' EXIT

echo "== phase 1: soak $RUNS runs, kill at job boundary $KILL_AFTER =="
"$SOAK_BIN" --runs "$RUNS" --workers 4 --state-dir "$STATE_DIR/state" \
    --kill-after "$KILL_AFTER"
status=$?
if [ "$status" -ne 43 ]; then
    echo "FAIL: expected the armed crash point to exit 43, got $status"
    exit 1
fi

echo "== phase 2: resume the killed scheduler, verify against solo =="
"$SOAK_BIN" --resume --workers 4 --state-dir "$STATE_DIR/state" \
    --verify-solo --digest-out "$STATE_DIR/phase2.csv" || exit 1

echo "== phase 3: clean same-seed run must reproduce every digest =="
"$SOAK_BIN" --runs "$RUNS" --workers 2 \
    --state-dir "$STATE_DIR/clean" \
    --digest-out "$STATE_DIR/clean.csv" || exit 1

# The kill may have interrupted the submission loop, so the recovered
# run set is a prefix of the clean run's (a submit the manifest never
# acknowledged was never a job). Every job that *did* survive must
# match the uninterrupted run byte for byte, and the kill point
# guarantees at least KILL_AFTER of them completed.
RECOVERED=$(wc -l < "$STATE_DIR/phase2.csv")
if [ "$RECOVERED" -lt "$KILL_AFTER" ]; then
    echo "FAIL: only $RECOVERED runs recovered (< $KILL_AFTER)"
    exit 1
fi
if ! head -n "$RECOVERED" "$STATE_DIR/clean.csv" \
        | cmp -s - "$STATE_DIR/phase2.csv"; then
    echo "FAIL: kill+resume digests differ from an uninterrupted run"
    head -n "$RECOVERED" "$STATE_DIR/clean.csv" \
        | diff - "$STATE_DIR/phase2.csv" | head -20
    exit 1
fi
echo "PASS: kill+resume soak ($RECOVERED runs) is bit-identical to" \
     "the clean run"
