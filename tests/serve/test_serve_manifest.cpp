#include "serve/manifest.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "common/scratch_dir.hpp"

namespace qismet {
namespace {

namespace fs = std::filesystem;

class ServeManifestTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = test::scratchDirForCurrentTest("qismet_manifest");
        path_ = (dir_ / "manifest.qsvm").string();
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string readAll() const
    {
        std::ifstream in(path_, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in), {});
    }

    void writeAll(const std::string &bytes) const
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    ServeJobSpec spec(std::uint64_t tenant) const
    {
        ServeJobSpec s;
        s.tenantId = tenant;
        s.kind = WorkloadKind::TfimApp;
        s.totalJobs = 8;
        s.crashPlan = {3};
        return s;
    }

    fs::path dir_;
    std::string path_;
};

TEST_F(ServeManifestTest, RoundTripsSubmitsCancelsAndCompletions)
{
    {
        ServeManifest manifest(path_, 0xF1EE7, DurableFile::Mode::Truncate);
        manifest.appendSubmit(1, spec(0));
        manifest.appendSubmit(2, spec(1));
        manifest.appendSubmit(3, spec(2));
        manifest.appendCancel(2);
        ManifestCompletion done;
        done.trajectoryDigest = "abcdef0123456789";
        done.finalEstimate = -2.25;
        done.jobsUsed = 8;
        manifest.appendComplete(1, done);
    }
    const ManifestScan scan = scanManifest(path_);
    EXPECT_EQ(scan.fleetDigest, 0xF1EE7u);
    EXPECT_FALSE(scan.tornTail);
    ASSERT_EQ(scan.submitted.size(), 3u);
    EXPECT_EQ(scan.submitted[0].first, 1u);
    EXPECT_EQ(scan.submitted[1].first, 2u);
    EXPECT_EQ(scan.submitted[2].first, 3u);
    EXPECT_EQ(scan.submitted[1].second.tenantId, 1u);
    EXPECT_EQ(scan.submitted[0].second.crashPlan,
              (std::vector<std::uint64_t>{3}));
    EXPECT_EQ(scan.cancelled.count(2), 1u);
    ASSERT_EQ(scan.completed.count(1), 1u);
    const ManifestCompletion &done = scan.completed.at(1);
    EXPECT_EQ(done.trajectoryDigest, "abcdef0123456789");
    EXPECT_EQ(done.finalEstimate, -2.25);
    EXPECT_EQ(done.jobsUsed, 8u);
    EXPECT_EQ(scan.cleanOffset, fs::file_size(path_));
}

TEST_F(ServeManifestTest, EmptyManifestScansClean)
{
    {
        ServeManifest manifest(path_, 5, DurableFile::Mode::Truncate);
    }
    const ManifestScan scan = scanManifest(path_);
    EXPECT_TRUE(scan.submitted.empty());
    EXPECT_FALSE(scan.tornTail);
    EXPECT_EQ(scan.fleetDigest, 5u);
}

TEST_F(ServeManifestTest, TornTailIsDroppedNotFatal)
{
    {
        ServeManifest manifest(path_, 5, DurableFile::Mode::Truncate);
        manifest.appendSubmit(1, spec(0));
        manifest.appendSubmit(2, spec(1));
    }
    const std::string full = readAll();
    const ManifestScan clean = scanManifest(path_);
    // Chop the last frame mid-payload: a crash artifact, not
    // corruption — the scan keeps everything before it.
    writeAll(full.substr(0, full.size() - 7));
    const ManifestScan scan = scanManifest(path_);
    EXPECT_TRUE(scan.tornTail);
    ASSERT_EQ(scan.submitted.size(), 1u);
    EXPECT_EQ(scan.submitted[0].first, 1u);
    EXPECT_LT(scan.cleanOffset, clean.cleanOffset);
}

TEST_F(ServeManifestTest, AppendModeResumesAfterTornTail)
{
    {
        ServeManifest manifest(path_, 5, DurableFile::Mode::Truncate);
        manifest.appendSubmit(1, spec(0));
        manifest.appendSubmit(2, spec(1));
    }
    writeAll(readAll().substr(0, readAll().size() - 3));
    const ManifestScan scan = scanManifest(path_);
    ASSERT_TRUE(scan.tornTail);
    {
        // Recovery: continue from the clean offset (drops the tail)…
        ServeManifest manifest(path_, 5, DurableFile::Mode::Append,
                               scan.cleanOffset);
        manifest.appendSubmit(2, spec(1));
        manifest.appendCancel(1);
    }
    // …and the result scans clean with the re-appended record intact.
    const ManifestScan after = scanManifest(path_);
    EXPECT_FALSE(after.tornTail);
    ASSERT_EQ(after.submitted.size(), 2u);
    EXPECT_EQ(after.submitted[1].first, 2u);
    EXPECT_EQ(after.cancelled.count(1), 1u);
}

TEST_F(ServeManifestTest, MidFileCorruptionThrows)
{
    {
        ServeManifest manifest(path_, 5, DurableFile::Mode::Truncate);
        manifest.appendSubmit(1, spec(0));
        manifest.appendSubmit(2, spec(1));
    }
    std::string bytes = readAll();
    // Flip one byte in the *first* frame's payload: checksum mismatch
    // that is provably not a torn tail (a valid frame follows).
    bytes[30] = static_cast<char>(bytes[30] ^ 0x40);
    writeAll(bytes);
    EXPECT_THROW(scanManifest(path_), ManifestError);
}

TEST_F(ServeManifestTest, BadHeaderThrows)
{
    writeAll("not a manifest at all, definitely long enough");
    EXPECT_THROW(scanManifest(path_), ManifestError);
    writeAll("QS");
    EXPECT_THROW(scanManifest(path_), ManifestError);
    EXPECT_THROW(scanManifest((dir_ / "missing.qsvm").string()),
                 FileError);
}

TEST_F(ServeManifestTest, SpecEncodingRoundTrips)
{
    ServeJobSpec s;
    s.tenantId = 17;
    s.priority = 2;
    s.kind = WorkloadKind::QaoaRing;
    s.seed = 0xDEADBEEFCAFEull;
    s.totalJobs = 123;
    s.scheme = Scheme::Qismet;
    s.withFaults = true;
    s.snapshotEveryIters = 4;
    s.crashPlan = {2, 9, 31};

    Encoder enc;
    s.encode(enc);
    Decoder dec(enc.bytes());
    const ServeJobSpec back = ServeJobSpec::decode(dec);
    EXPECT_EQ(back.tenantId, s.tenantId);
    EXPECT_EQ(back.priority, s.priority);
    EXPECT_EQ(back.kind, s.kind);
    EXPECT_EQ(back.seed, s.seed);
    EXPECT_EQ(back.totalJobs, s.totalJobs);
    EXPECT_EQ(back.withFaults, s.withFaults);
    EXPECT_EQ(back.snapshotEveryIters, s.snapshotEveryIters);
    EXPECT_EQ(back.crashPlan, s.crashPlan);
    EXPECT_EQ(back.digest(), s.digest());
}

TEST_F(ServeManifestTest, DecodeRejectsMalformedSpecs)
{
    ServeJobSpec s;
    s.crashPlan = {5, 5}; // not strictly increasing
    EXPECT_THROW(s.validate(), std::invalid_argument);
    s.crashPlan = {5, 2};
    EXPECT_THROW(s.validate(), std::invalid_argument);
    s.crashPlan.clear();
    s.totalJobs = 0;
    EXPECT_THROW(s.validate(), std::invalid_argument);
    s.totalJobs = 10;
    s.kind = WorkloadKind::TfimApp;
    s.appIndex = 7;
    EXPECT_THROW(s.validate(), std::invalid_argument);
}

} // namespace
} // namespace qismet
