/**
 * @file
 * Shared soak-fleet builder for the serve soak tests (tier1 smoke and
 * the `soak`-labelled thousand-run variant). Mirrors the spec shape of
 * tools/serve_soak.cpp: every spec is a pure function of
 * (master seed, index) through the StreamDomain convention.
 */

#ifndef QISMET_TESTS_SERVE_SOAK_WORKLOAD_HPP
#define QISMET_TESTS_SERVE_SOAK_WORKLOAD_HPP

#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "serve/scheduler.hpp"
#include "vqe/run_digest.hpp"

namespace qismet::test {

inline std::vector<ServeJobSpec>
soakWorkload(std::uint64_t master_seed, std::size_t count,
             bool with_crashes)
{
    std::vector<ServeJobSpec> specs;
    for (std::size_t i = 0; i < count; ++i) {
        Rng rng(deriveStreamSeed(master_seed, StreamDomain::kSoakSpec,
                                 i));
        ServeJobSpec spec;
        spec.tenantId = rng.uniformInt(5);
        spec.priority = static_cast<int>(rng.uniformInt(3));
        spec.kind = WorkloadKind::TfimApp;
        spec.appIndex = static_cast<int>(1 + rng.uniformInt(6));
        spec.seed = rng.engine()();
        spec.totalJobs = 5 + rng.uniformInt(6);
        spec.withFaults = rng.bernoulli(0.3);
        if (with_crashes && rng.bernoulli(0.25)) {
            Rng plan(deriveStreamSeed(
                master_seed, StreamDomain::kSoakCrashPlan, i));
            std::uint64_t at = 1 + plan.uniformInt(3);
            spec.crashPlan.push_back(at);
            if (plan.bernoulli(0.5))
                spec.crashPlan.push_back(at + 1 + plan.uniformInt(3));
        }
        specs.push_back(spec);
    }
    return specs;
}

/** The spec's solo trajectory digest (crash plan stripped). */
inline std::string
soloDigest(ServeJobSpec spec)
{
    spec.crashPlan.clear();
    const QismetVqe runner = buildRunner(spec);
    return trajectoryDigest(runner.run(buildRunConfig(spec)).run);
}

} // namespace qismet::test

#endif // QISMET_TESTS_SERVE_SOAK_WORKLOAD_HPP
