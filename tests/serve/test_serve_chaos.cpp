/**
 * @file
 * Chaos semantics of the serve layer (DESIGN.md §15), single-threaded
 * through ServeCore plus a bounded threaded smoke through
 * ServeScheduler: outage faults migrate a job with its leg and RNG
 * lineage intact, migration budgets fail jobs deterministically,
 * admission control sheds the newest lowest-priority job, a fully
 * quarantined fleet wakes itself via the discrete-event time skip,
 * calibration storms drift a machine exactly once per event, and the
 * degradation telemetry (deadline, retries, backoff) surfaces through
 * poll() instead of having to be inferred from latency.
 *
 * The heavyweight worker-count/kill-resume replay equivalence lives in
 * test_serve_chaos_replay.cpp (the `chaos` tier); this binary is the
 * fast tier1 gate.
 */

#include "fault/chaos.hpp"
#include "serve/scheduler.hpp"
#include "serve/serve_core.hpp"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace qismet {
namespace {

/** A small H2 run: 2 qubits, fast enough for tier1. */
ServeJobSpec
h2Spec(std::uint64_t seed, std::uint64_t tenant = 0, int priority = 0)
{
    ServeJobSpec spec;
    spec.tenantId = tenant;
    spec.priority = priority;
    spec.kind = WorkloadKind::H2Vqe;
    spec.seed = seed;
    spec.totalJobs = 24;
    return spec;
}

ChaosEvent
outageEvent(std::uint64_t backend, std::uint64_t start,
            std::uint64_t end)
{
    ChaosEvent e;
    e.kind = ChaosKind::BackendOutage;
    e.target = backend;
    e.startTick = start;
    e.endTick = end;
    return e;
}

TEST(ChaosCore, OutageFaultMigratesWithLineageIntact)
{
    const ChaosSchedule sched({outageEvent(0, 0, 3)});
    HealthPolicy policy;
    policy.degradeAfterFaults = 1; // one fault deprioritizes backend 0
    BackendPool pool({"guadalupe", "guadalupe"}, 1234, policy);
    ServeCoreConfig cfg;
    cfg.chaos = &sched;
    ServeCore core(pool, cfg);

    const std::uint64_t id = core.submit(h2Spec(7));
    auto first = core.nextDispatch();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->lease.backendId, 0u);
    EXPECT_TRUE(core.backendDown(first->lease.backendId));

    core.onBackendFault(*first);

    // The backend did no work: the job re-queues with leg, resume flag
    // and therefore RNG lineage untouched, and the calibration stream
    // of the faulted machine did not advance.
    auto info = core.find(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, ServeJobState::Queued);
    EXPECT_EQ(info->leg, 0u);
    EXPECT_FALSE(info->resumeNextLeg);
    EXPECT_EQ(info->migrations, 1u);
    EXPECT_EQ(info->legsDispatched, 1u);
    EXPECT_EQ(pool.leasesCompleted(0), 0u);
    EXPECT_EQ(pool.leasesFaulted(0), 1u);

    // Migration: the degraded machine ranks behind the healthy one, so
    // the same leg re-dispatches onto backend 1.
    auto second = core.nextDispatch();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->lease.backendId, 1u);
    EXPECT_EQ(second->leg, 0u);
    EXPECT_FALSE(second->resume);

    core.onRunFinished(*second, "digest", -1.0, 24);
    info = core.find(id);
    EXPECT_EQ(info->state, ServeJobState::Completed);

    const ServeFleetStats stats = core.fleetStats();
    EXPECT_EQ(stats.migrations, 1u);
    EXPECT_EQ(stats.backendFaults, 1u);
    EXPECT_EQ(stats.failed, 0u);
}

TEST(ChaosCore, MigrationBudgetExhaustionFailsTheJob)
{
    BackendPool pool({"guadalupe"}, 1234);
    ServeCore core(pool);

    ServeJobSpec spec = h2Spec(7);
    spec.migrationBudget = 1;
    const std::uint64_t id = core.submit(spec);

    auto d = core.nextDispatch();
    ASSERT_TRUE(d.has_value());
    core.onBackendFault(*d); // within budget: re-queued
    EXPECT_EQ(core.find(id)->state, ServeJobState::Queued);

    d = core.nextDispatch();
    ASSERT_TRUE(d.has_value());
    core.onBackendFault(*d); // budget exhausted: Failed

    const auto info = core.find(id);
    EXPECT_EQ(info->state, ServeJobState::Failed);
    EXPECT_EQ(info->migrations, 2u);
    EXPECT_EQ(core.failedCount(), 1u);
    EXPECT_EQ(core.pendingCount(), 0u);
    const std::vector<std::uint64_t> failed = core.drainFailedJobs();
    ASSERT_EQ(failed.size(), 1u);
    EXPECT_EQ(failed[0], id);
    EXPECT_TRUE(core.drainFailedJobs().empty()); // drained once

    const ServeFleetStats stats = core.fleetStats();
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.migrations, 2u);
    EXPECT_EQ(stats.backendFaults, 2u);
}

TEST(ChaosCore, QueueBoundShedsNewestWithinLowestPriority)
{
    BackendPool pool({"guadalupe"}, 1234);
    ServeCoreConfig cfg;
    cfg.queueBound = 2;
    ServeCore core(pool, cfg);

    const std::uint64_t a = core.submit(h2Spec(1, 0, /*priority=*/1));
    const std::uint64_t b = core.submit(h2Spec(2, 1, /*priority=*/0));
    // Third submission overflows the bound; the victim is the newest
    // job at the lowest priority — the arriving job itself.
    const std::uint64_t c = core.submit(h2Spec(3, 2, /*priority=*/0));
    EXPECT_EQ(core.find(c)->state, ServeJobState::Shed);
    EXPECT_EQ(core.find(a)->state, ServeJobState::Queued);
    EXPECT_EQ(core.find(b)->state, ServeJobState::Queued);
    std::vector<std::uint64_t> shed = core.drainShedJobs();
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_EQ(shed[0], c);

    // A high-priority arrival is admitted and evicts the lowest-
    // priority queued job instead; the older high-priority job a is
    // protected.
    const std::uint64_t d = core.submit(h2Spec(4, 3, /*priority=*/2));
    EXPECT_EQ(core.find(d)->state, ServeJobState::Queued);
    EXPECT_EQ(core.find(b)->state, ServeJobState::Shed);
    EXPECT_EQ(core.find(a)->state, ServeJobState::Queued);
    shed = core.drainShedJobs();
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_EQ(shed[0], b);

    EXPECT_EQ(core.shedCount(), 2u);
    EXPECT_EQ(core.queuedCount(), 2u);
    EXPECT_EQ(core.fleetStats().shed, 2u);
}

TEST(ChaosCore, IdleQuarantinedFleetWakesItselfViaTimeSkip)
{
    HealthPolicy policy;
    policy.degradeAfterFaults = 1;
    policy.quarantineAfterFaults = 2;
    BackendPool pool({"guadalupe"}, 1234, policy);
    ServeCore core(pool);

    const std::uint64_t id = core.submit(h2Spec(7));
    for (int i = 0; i < 2; ++i) {
        auto d = core.nextDispatch();
        ASSERT_TRUE(d.has_value());
        core.onBackendFault(*d);
    }
    // Two consecutive faults quarantined the only machine: breaker
    // Open at tick 2, probe-eligible at 2 + cooldown(8) = 10. With
    // work queued and nothing running, dispatch must not wedge — it
    // fast-forwards the fleet clock to the probe tick.
    ASSERT_EQ(pool.breaker(0), BreakerState::Open);
    ASSERT_EQ(core.clockNow(), 2u);

    auto probe = core.nextDispatch();
    ASSERT_TRUE(probe.has_value());
    EXPECT_EQ(core.clockNow(), 10u);
    EXPECT_EQ(pool.breaker(0), BreakerState::HalfOpen);

    core.onRunFinished(*probe, "digest", -1.0, 24);
    EXPECT_EQ(core.find(id)->state, ServeJobState::Completed);

    const ServeFleetStats stats = core.fleetStats();
    EXPECT_EQ(stats.timeSkips, 1u);
    EXPECT_EQ(stats.breakerTrips, 1u);
    EXPECT_EQ(stats.halfOpenProbes, 1u);
    EXPECT_EQ(stats.migrations, 2u);
}

TEST(ChaosCore, CalibrationStormDriftsExactlyOncePerEvent)
{
    ChaosEvent storm;
    storm.kind = ChaosKind::CalibrationStorm;
    storm.target = 0;
    storm.startTick = 0;
    storm.endTick = 50;
    storm.count = 2;
    const ChaosSchedule sched({storm});

    BackendPool stormed({"guadalupe"}, 1234);
    ServeCoreConfig cfg;
    cfg.chaos = &sched;
    ServeCore core(stormed, cfg);

    core.submit(h2Spec(1));
    core.submit(h2Spec(2));
    for (int i = 0; i < 2; ++i) {
        auto d = core.nextDispatch();
        ASSERT_TRUE(d.has_value());
        core.onRunFinished(*d, "digest", -1.0, 24);
    }
    // Both dispatches landed inside the storm window, but the drift is
    // folded into the machine exactly once.
    EXPECT_EQ(core.fleetStats().stormsApplied, 1u);
    EXPECT_EQ(stormed.health(0), BackendHealth::Degraded);

    // The drift is real machine state: a control fleet with the same
    // completed-lease history but no storm ends at a different
    // calibration digest.
    BackendPool control({"guadalupe"}, 1234);
    for (int i = 0; i < 2; ++i)
        control.release(control.acquire());
    EXPECT_EQ(control.leasesCompleted(0), stormed.leasesCompleted(0));
    EXPECT_NE(control.calibrationDigest(0),
              stormed.calibrationDigest(0));
}

TEST(ChaosCore, SlowdownWindowFeedsTheLatencyHealthModel)
{
    ChaosEvent slow;
    slow.kind = ChaosKind::BackendSlowdown;
    slow.target = 0;
    slow.startTick = 0;
    slow.endTick = 100;
    slow.magnitude = 8.0;
    const ChaosSchedule sched({slow});

    BackendPool pool({"guadalupe"}, 1234);
    ServeCoreConfig cfg;
    cfg.chaos = &sched;
    ServeCore core(pool, cfg);

    EXPECT_DOUBLE_EQ(core.backendSlowdown(0), 8.0);

    core.submit(h2Spec(1));
    auto d = core.nextDispatch();
    ASSERT_TRUE(d.has_value());
    core.onRunFinished(*d, "digest", -1.0, 24);

    // One 8x-slow success pushes the latency EWMA past the degrade
    // factor (0.75*1 + 0.25*8 = 2.75 > 2.0): slow machines degrade
    // even though every lease "succeeds".
    EXPECT_EQ(pool.health(0), BackendHealth::Degraded);
    EXPECT_GT(pool.latencyEwma(0), pool.policy().latencyDegradeFactor);

    // Outside the window the chaos factor is nominal again.
    core.advanceClock(200);
    EXPECT_DOUBLE_EQ(core.backendSlowdown(0), 1.0);
}

/**
 * Degradation telemetry rides the completion payload end to end:
 * a deadline-budgeted run stops at an iteration boundary past its
 * budget and poll() reports the truncation, the retry/backoff
 * counters, and the run's simulated time directly.
 */
TEST(ChaosServe, DeadlineAndRetryTelemetrySurfaceThroughPoll)
{
    ServeJobSpec spec;
    spec.kind = WorkloadKind::TfimApp;
    spec.appIndex = 1;
    spec.seed = 23;
    spec.totalJobs = 120;
    spec.withFaults = true;

    ServeJobSpec budgeted = spec;
    budgeted.deadlineSimSeconds = 30.0;

    ServeSchedulerConfig cfg;
    cfg.workers = 1;
    ServeScheduler sched(cfg);
    const std::uint64_t fullId = sched.submit(spec);
    const std::uint64_t cutId = sched.submit(budgeted);
    sched.drain();

    const auto full = sched.poll(fullId);
    const auto cut = sched.poll(cutId);
    ASSERT_TRUE(full.has_value());
    ASSERT_TRUE(cut.has_value());

    ASSERT_EQ(full->state, ServeJobState::Completed);
    ASSERT_EQ(cut->state, ServeJobState::Completed);

    EXPECT_FALSE(full->deadlineExpired);
    EXPECT_TRUE(cut->deadlineExpired);
    EXPECT_LT(cut->jobsUsed, full->jobsUsed);
    EXPECT_GE(cut->simTimeSeconds, budgeted.deadlineSimSeconds);
    EXPECT_LT(cut->simTimeSeconds, full->simTimeSeconds);

    // The 6% mixed fault load forces retries, and the counters are
    // observable rather than inferred from latency.
    EXPECT_GT(full->faultRetries, 0u);
    EXPECT_GE(full->retriesUsed, full->faultRetries);
    EXPECT_GT(full->backoffSeconds, 0.0);
    EXPECT_GT(full->simTimeSeconds, 0.0);

    EXPECT_EQ(sched.fleetStats().deadlineExpirations, 1u);
}

/**
 * With startPaused, the queue-depth evolution is purely a function of
 * submission order, so admission control sheds the *same* job set at
 * any worker count.
 */
TEST(ChaosServe, PausedSubmissionMakesShedSetWorkerCountInvariant)
{
    const int priorities[] = {1, 0, 2, 0, 1, 0, 2, 1};

    auto runFleet = [&](std::size_t workers) {
        ServeSchedulerConfig cfg;
        cfg.workers = workers;
        cfg.backends = {"guadalupe", "guadalupe"};
        cfg.queueBound = 3;
        cfg.startPaused = true;
        ServeScheduler sched(cfg);
        EXPECT_TRUE(sched.paused());

        std::vector<std::uint64_t> ids;
        for (int i = 0; i < 8; ++i) {
            ServeJobSpec spec = h2Spec(100 + i, i % 3, priorities[i]);
            spec.totalJobs = 12;
            ids.push_back(sched.submit(spec));
        }
        sched.setPaused(false);
        sched.drain();

        std::map<std::uint64_t, ServeJobState> states;
        std::map<std::uint64_t, std::string> digests;
        for (std::uint64_t id : ids) {
            const auto info = sched.poll(id);
            states[id] = info->state;
            digests[id] = info->trajectoryDigest;
        }
        EXPECT_EQ(sched.fleetStats().shed, 5u);
        return std::make_pair(states, digests);
    };

    const auto solo = runFleet(1);
    const auto wide = runFleet(4);
    EXPECT_EQ(solo.first, wide.first);   // identical shed/complete set
    EXPECT_EQ(solo.second, wide.second); // identical digests
}

/**
 * Threaded smoke of the whole resilience path: jobs served through a
 * chaotic fleet (an outage forcing migrations, a slowdown window)
 * complete with digests bit-identical to their no-chaos solo runs.
 */
TEST(ChaosServe, ChaoticFleetMatchesSoloDigests)
{
    std::vector<ServeJobSpec> specs;
    for (std::uint64_t seed = 1; seed <= 5; ++seed)
        specs.push_back(h2Spec(seed, seed % 2));

    std::map<std::uint64_t, std::string> soloDigests;
    {
        ServeSchedulerConfig cfg;
        cfg.workers = 1;
        ServeScheduler sched(cfg);
        std::vector<std::uint64_t> ids;
        for (const ServeJobSpec &spec : specs)
            ids.push_back(sched.submit(spec));
        sched.drain();
        for (std::size_t i = 0; i < ids.size(); ++i)
            soloDigests[specs[i].seed] =
                sched.poll(ids[i])->trajectoryDigest;
    }

    ChaosEvent slow;
    slow.kind = ChaosKind::BackendSlowdown;
    slow.target = 1;
    slow.startTick = 0;
    slow.endTick = 10;
    slow.magnitude = 3.0;
    const ChaosSchedule sched({outageEvent(0, 0, 3), slow});

    ServeSchedulerConfig cfg;
    cfg.workers = 3;
    cfg.backends = {"guadalupe", "guadalupe"};
    cfg.chaos = &sched;
    ServeScheduler fleet(cfg);
    std::vector<std::uint64_t> ids;
    for (const ServeJobSpec &spec : specs)
        ids.push_back(fleet.submit(spec));
    fleet.drain();

    for (std::size_t i = 0; i < ids.size(); ++i) {
        const auto info = fleet.poll(ids[i]);
        ASSERT_TRUE(info.has_value());
        ASSERT_EQ(info->state, ServeJobState::Completed);
        EXPECT_EQ(info->trajectoryDigest, soloDigests[specs[i].seed])
            << "job seed " << specs[i].seed
            << " diverged from its solo digest";
    }

    // The very first leg leased backend 0 inside its outage window, so
    // at least one migration happened; with an unlimited budget every
    // fault migrates, and each completion or fault advanced the fleet
    // clock by one tick.
    const ServeFleetStats stats = fleet.fleetStats();
    EXPECT_GE(stats.backendFaults, 1u);
    EXPECT_EQ(stats.migrations, stats.backendFaults);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.clockTicks,
              specs.size() + stats.backendFaults);
}

} // namespace
} // namespace qismet
