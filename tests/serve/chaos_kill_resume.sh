#!/usr/bin/env bash
# Whole-process kill-and-resume under chaos: run the serve_chaos CLI
# with an armed Exit crash point (std::_Exit(43) at a job boundary —
# early enough to land inside the schedule's opening outage windows),
# then resume over the surviving state directory. Resume rebuilds the
# job table, the fleet health/breaker state (manifest health frames)
# and the fleet clock, and the finished per-job table must be
# byte-identical to an uninterrupted run of the same seeds.
#
# Usage: chaos_kill_resume.sh <serve_chaos-binary> [runs] [kill-after]
set -u

CHAOS_BIN=${1:?usage: chaos_kill_resume.sh <serve_chaos-binary>}
RUNS=${2:-40}
KILL_AFTER=${3:-8}
STATE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/qismet_chaos_kill.XXXXXX")
trap 'rm -rf "$STATE_DIR"' EXIT

# One workload, one schedule, everywhere: the table is a pure function
# of these flags (never of --workers or the kill).
COMMON_ARGS=(--runs "$RUNS" --jobs 8 --queue-bound 24)

echo "== phase 1: uninterrupted chaotic run (reference table) =="
"$CHAOS_BIN" "${COMMON_ARGS[@]}" --workers 2 \
    --digest-out "$STATE_DIR/clean.csv" || exit 1

echo "== phase 2: chaotic run killed at job boundary $KILL_AFTER =="
"$CHAOS_BIN" "${COMMON_ARGS[@]}" --workers 4 \
    --state-dir "$STATE_DIR/state" --kill-after "$KILL_AFTER"
status=$?
if [ "$status" -ne 43 ]; then
    echo "FAIL: expected the armed crash point to exit 43, got $status"
    exit 1
fi

echo "== phase 3: resume mid-chaos, verify against solo =="
"$CHAOS_BIN" "${COMMON_ARGS[@]}" --workers 4 \
    --state-dir "$STATE_DIR/state" --resume --verify-solo \
    --digest-out "$STATE_DIR/resumed.csv" || exit 1

# The whole workload is journaled before dispatch unpauses (paused
# submission), so the resumed table covers every job — completed,
# shed and failed alike — and must equal the uninterrupted run's
# byte for byte.
if ! cmp -s "$STATE_DIR/clean.csv" "$STATE_DIR/resumed.csv"; then
    echo "FAIL: kill+resume table differs from an uninterrupted run"
    diff "$STATE_DIR/clean.csv" "$STATE_DIR/resumed.csv" | head -20
    exit 1
fi
echo "PASS: chaos kill+resume table is bit-identical to the" \
     "uninterrupted run"
