/**
 * @file
 * Bounded tier1 soak: a small fleet with crash plans and a scheduler
 * teardown/reconstruct (manifest resume) in the middle — the fast
 * per-commit stand-in for the full `soak`-labelled thousand-run test
 * (test_serve_soak.cpp) and the exit-43 kill harness
 * (soak_kill_resume.sh).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "soak_workload.hpp"

#include "common/scratch_dir.hpp"

namespace qismet {
namespace {

namespace fs = std::filesystem;

TEST(ServeSoak, SoakSmoke)
{
    const fs::path dir = test::scratchDir("qismet_soak_smoke", false);
    const std::vector<ServeJobSpec> specs =
        test::soakWorkload(31337, 24, true);

    // Phase 1: first half of the fleet through a durable scheduler.
    std::map<std::uint64_t, std::string> firstHalf;
    {
        ServeSchedulerConfig cfg;
        cfg.workers = 4;
        cfg.backends.assign(3, "guadalupe");
        cfg.stateDir = (dir / "state").string();
        ServeScheduler scheduler(cfg);
        for (std::size_t i = 0; i < specs.size() / 2; ++i)
            scheduler.submit(specs[i]);
        scheduler.drain();
        for (std::uint64_t id : scheduler.jobIds())
            firstHalf[id] = scheduler.poll(id)->trajectoryDigest;
    }

    // Phase 2: reconstruct over the same state (the bounded stand-in
    // for a process kill), replay phase 1, then soak the second half.
    {
        ServeSchedulerConfig cfg;
        cfg.workers = 4;
        cfg.backends.assign(3, "guadalupe");
        cfg.stateDir = (dir / "state").string();
        cfg.resume = true;
        ServeScheduler scheduler(cfg);
        EXPECT_EQ(scheduler.replayedCompletions(), firstHalf.size());
        for (std::size_t i = specs.size() / 2; i < specs.size(); ++i)
            scheduler.submit(specs[i]);
        scheduler.drain();

        for (std::uint64_t id : scheduler.jobIds()) {
            const auto info = scheduler.poll(id);
            ASSERT_TRUE(info.has_value());
            ASSERT_EQ(info->state, ServeJobState::Completed);
            const auto replayed = firstHalf.find(id);
            if (replayed != firstHalf.end()) {
                EXPECT_EQ(info->trajectoryDigest, replayed->second)
                    << "replayed job " << id << " lost its digest";
            }
            // Every run — replayed, crash-recovered or fresh — equals
            // its solo execution.
            const ServeJobSpec &spec = specs[id - 1];
            EXPECT_EQ(info->trajectoryDigest, test::soloDigest(spec))
                << "job " << id << " diverged from solo";
        }
    }
    fs::remove_all(dir);
}

} // namespace
} // namespace qismet
