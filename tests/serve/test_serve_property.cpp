/**
 * @file
 * Property tests for the deterministic scheduler core: randomized
 * submit/cancel/crash sequences (1000+ cases) asserting the invariants
 * DESIGN.md §12 promises — no double-lease, no starvation, stride
 * fair-share bounds, and a dispatch order that is a pure function of
 * the call sequence.
 */

#include "serve/serve_core.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace qismet {
namespace {

const std::vector<std::string> kFleets[] = {
    {"guadalupe"},
    {"guadalupe", "toronto"},
    {"guadalupe", "toronto", "sydney"},
};

ServeJobSpec
randomSpec(Rng &rng)
{
    ServeJobSpec spec;
    spec.tenantId = rng.uniformInt(4);
    spec.priority = static_cast<int>(rng.uniformInt(3));
    spec.kind = WorkloadKind::TfimApp;
    spec.appIndex = static_cast<int>(1 + rng.uniformInt(6));
    spec.seed = rng.engine()();
    spec.totalJobs = 2 + rng.uniformInt(6);
    if (rng.bernoulli(0.3)) {
        std::uint64_t at = 0;
        const std::uint64_t legs = 1 + rng.uniformInt(2);
        for (std::uint64_t i = 0; i < legs; ++i) {
            at += 1 + rng.uniformInt(3);
            spec.crashPlan.push_back(at);
        }
    }
    return spec;
}

/**
 * Drive one randomized case end to end and return its event trace.
 * Structural invariants are asserted inline; the caller asserts trace
 * determinism by replaying the same seed.
 */
std::string
runCase(std::uint64_t seed)
{
    Rng rng(seed);
    const auto &fleet = kFleets[rng.uniformInt(3)];
    BackendPool pool(fleet, seed);
    ServeCore core(pool);
    std::string trace;

    std::vector<ServeDispatch> inFlight;
    std::set<std::size_t> leasedIds;
    std::vector<std::uint64_t> submitted;

    const auto dispatchOne = [&] {
        const std::size_t freeBefore = pool.freeCount();
        const auto d = core.nextDispatch();
        if (!d) {
            // nullopt is only legitimate when there is genuinely
            // nothing to do or nowhere to run it.
            EXPECT_TRUE(core.queuedCount() == 0 || freeBefore == 0);
            return false;
        }
        EXPECT_TRUE(leasedIds.insert(d->lease.backendId).second)
            << "backend " << d->lease.backendId
            << " double-leased (case " << seed << ")";
        inFlight.push_back(*d);
        trace += 'D' + std::to_string(d->jobId) + ';';
        return true;
    };
    const auto retireOne = [&](std::size_t pick) {
        const ServeDispatch d = inFlight[pick];
        inFlight.erase(inFlight.begin() +
                       static_cast<std::ptrdiff_t>(pick));
        leasedIds.erase(d.lease.backendId);
        if (d.crashAfterIters > 0) {
            core.onRunCrashed(d);
            trace += 'X' + std::to_string(d.jobId) + ';';
        }
        else {
            core.onRunFinished(d, "digest-" + std::to_string(d.jobId),
                               -1.0, 2);
            trace += 'F' + std::to_string(d.jobId) + ';';
        }
    };

    const std::size_t ops = 8 + rng.uniformInt(32);
    for (std::size_t op = 0; op < ops; ++op) {
        switch (rng.uniformInt(4)) {
        case 0:
            submitted.push_back(core.submit(randomSpec(rng)));
            trace += 'S' + std::to_string(submitted.back()) + ';';
            break;
        case 1:
            if (!submitted.empty()) {
                const std::uint64_t id =
                    submitted[rng.uniformInt(submitted.size())];
                if (core.cancel(id))
                    trace += 'C' + std::to_string(id) + ';';
            }
            break;
        case 2:
            dispatchOne();
            break;
        default:
            if (!inFlight.empty())
                retireOne(rng.uniformInt(inFlight.size()));
            break;
        }
        // Conservation: every submitted job is in exactly one state.
        EXPECT_EQ(core.queuedCount() + core.runningCount() +
                      core.completedCount() + core.cancelledCount(),
                  submitted.size());
        EXPECT_EQ(core.runningCount(), inFlight.size());
    }

    // Drain: alternate dispatch/retire until quiescent. Every queued
    // job must reach a terminal state — this is the no-starvation
    // property (the drain would trip the loop guard if any job were
    // starved forever).
    std::size_t guard = 0;
    while (core.pendingCount() > 0) {
        EXPECT_LT(guard++, 10000u) << "drain did not converge";
        if (guard > 10000u)
            return trace;
        if (!dispatchOne()) {
            EXPECT_FALSE(inFlight.empty());
            if (inFlight.empty())
                return trace;
            retireOne(0);
        }
    }
    EXPECT_EQ(core.queuedCount(), 0u);
    EXPECT_EQ(core.runningCount(), 0u);
    EXPECT_EQ(core.completedCount() + core.cancelledCount(),
              submitted.size());

    // Fairness accounting closes.
    std::uint64_t perTenant = 0;
    for (std::uint64_t t = 0; t < 4; ++t)
        perTenant += core.tenantDispatches(t);
    EXPECT_EQ(perTenant, core.totalDispatches());

    // Terminal results are well-formed.
    for (const std::uint64_t id : submitted) {
        const auto info = core.find(id);
        EXPECT_TRUE(info.has_value());
        if (!info)
            continue;
        if (info->state == ServeJobState::Completed) {
            EXPECT_EQ(info->trajectoryDigest,
                      "digest-" + std::to_string(id));
            EXPECT_GE(info->legsDispatched, 1u);
        }
        else {
            EXPECT_EQ(info->state, ServeJobState::Cancelled);
        }
    }
    return trace;
}

TEST(ServeCoreProperty, RandomizedSequencesHoldInvariants)
{
    // 1200 randomized cases; each runs twice and the event traces must
    // match bit for bit — "deterministic dispatch order under a fixed
    // seed" as a replay property, not a hand-picked example.
    for (std::uint64_t seed = 1; seed <= 1200; ++seed) {
        const std::string first = runCase(seed);
        const std::string second = runCase(seed);
        ASSERT_EQ(first, second) << "case " << seed;
        ASSERT_FALSE(HasFailure()) << "case " << seed;
    }
}

TEST(ServeCoreProperty, StrideFairShareBoundHoldsAtEveryPrefix)
{
    // Three continuously-backlogged tenants with weights 1:2:4 on one
    // backend: after T dispatches each tenant's count stays within a
    // constant of its weighted share T*w/W — the stride bound, checked
    // at every prefix rather than just the end.
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    const double weights[3] = {1.0, 2.0, 4.0};
    const double total = 7.0;
    for (std::uint64_t t = 0; t < 3; ++t) {
        core.setTenantWeight(t, weights[t]);
        for (int j = 0; j < 70; ++j) {
            ServeJobSpec s;
            s.tenantId = t;
            s.totalJobs = 2;
            core.submit(s);
        }
    }
    for (int step = 1; step <= 3 * 70; ++step) {
        const auto d = core.nextDispatch();
        ASSERT_TRUE(d.has_value());
        core.onRunFinished(*d, "d", 0.0, 2);
        // The stride bound is a statement about *backlogged* tenants;
        // once the heaviest tenant drains its 70 jobs the remaining
        // dispatches go to the others by construction.
        bool allBacklogged = true;
        for (std::uint64_t t = 0; t < 3; ++t)
            allBacklogged &= core.tenantDispatches(t) < 70;
        if (!allBacklogged)
            break;
        for (std::uint64_t t = 0; t < 3; ++t) {
            const double share = step * weights[t] / total;
            const double got =
                static_cast<double>(core.tenantDispatches(t));
            ASSERT_NEAR(got, share, 3.0)
                << "tenant " << t << " after " << step << " dispatches";
        }
    }
}

TEST(ServeCoreProperty, NoStarvationUnderAdversarialFlood)
{
    // Tenant 0 floods 200 jobs; tenant 1 submits one. The single job
    // must dispatch within a handful of legs, not after the flood.
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    for (int i = 0; i < 200; ++i) {
        ServeJobSpec s;
        s.tenantId = 0;
        s.totalJobs = 2;
        core.submit(s);
    }
    ServeJobSpec one;
    one.tenantId = 1;
    one.totalJobs = 2;
    const std::uint64_t lone = core.submit(one);

    std::uint64_t dispatchesUntilLone = 0;
    for (;;) {
        const auto d = core.nextDispatch();
        ASSERT_TRUE(d.has_value());
        ++dispatchesUntilLone;
        core.onRunFinished(*d, "d", 0.0, 2);
        if (d->jobId == lone)
            break;
        ASSERT_LT(dispatchesUntilLone, 5u)
            << "late tenant starved behind the flood";
    }
}

TEST(ServeCoreProperty, HigherPriorityNeverWaitsBehindLower)
{
    Rng rng(99);
    BackendPool pool({"guadalupe"}, 1);
    ServeCore core(pool);
    for (int i = 0; i < 50; ++i) {
        ServeJobSpec s = randomSpec(rng);
        s.crashPlan.clear();
        core.submit(s);
    }
    int lastPriority = 1000;
    std::set<int> exhausted;
    while (core.pendingCount() > 0) {
        const auto d = core.nextDispatch();
        ASSERT_TRUE(d.has_value());
        // Priorities drain strictly downward when all jobs are present
        // from the start.
        ASSERT_LE(d->spec.priority, lastPriority);
        lastPriority = d->spec.priority;
        core.onRunFinished(*d, "d", 0.0, 2);
    }
}

} // namespace
} // namespace qismet
