/** @file Tests for the SPSA optimizer family on synthetic objectives. */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "optim/spsa_variants.hpp"

namespace qismet {
namespace {

/** Drive an optimizer against a closed-form objective. */
std::vector<double>
optimize(StochasticOptimizer &opt,
         const std::function<double(const std::vector<double> &)> &f,
         std::vector<double> theta, int iterations, std::uint64_t seed)
{
    Rng rng(seed);
    for (int k = 0; k < iterations; ++k) {
        const auto points = opt.plan(theta, k, rng);
        std::vector<double> energies;
        energies.reserve(points.size());
        for (const auto &p : points)
            energies.push_back(f(p));
        theta = opt.propose(theta, k, energies);
    }
    return theta;
}

double
quadratic(const std::vector<double> &x)
{
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        s += (1.0 + static_cast<double>(i)) * x[i] * x[i];
    return s;
}

TEST(SpsaGains, SchedulesDecay)
{
    SpsaGains g;
    EXPECT_GT(g.stepSize(0), g.stepSize(100));
    EXPECT_GT(g.perturbation(0), g.perturbation(100));
    EXPECT_GT(g.stepSize(1000), 0.0);
}

TEST(SpsaGains, ForHorizonInitialStep)
{
    const auto g = SpsaGains::forHorizon(2000, 0.05);
    // First step size equals the requested initial step.
    EXPECT_NEAR(g.a / std::pow(1.0 + g.bigA, g.alpha), 0.05, 1e-12);
    EXPECT_NEAR(g.bigA, 200.0, 1e-12);
}

TEST(Spsa, RejectsBadGains)
{
    SpsaGains g;
    g.a = 0.0;
    EXPECT_THROW(Spsa{g}, std::invalid_argument);
}

TEST(Spsa, PlanReturnsSymmetricPair)
{
    Spsa opt;
    Rng rng(1);
    const std::vector<double> theta = {1.0, -2.0, 0.5};
    const auto pts = opt.plan(theta, 0, rng);
    ASSERT_EQ(pts.size(), 2u);
    for (std::size_t i = 0; i < theta.size(); ++i)
        EXPECT_NEAR(pts[0][i] + pts[1][i], 2.0 * theta[i], 1e-12);
}

TEST(Spsa, ProposeRequiresPlan)
{
    Spsa opt;
    EXPECT_THROW(opt.propose({1.0}, 0, {0.0, 0.0}), std::logic_error);
}

TEST(Spsa, ProposeChecksEnergyCount)
{
    Spsa opt;
    Rng rng(1);
    opt.plan({1.0}, 0, rng);
    EXPECT_THROW(opt.propose({1.0}, 0, {1.0}), std::invalid_argument);
}

TEST(Spsa, ConvergesOnQuadratic)
{
    Spsa opt(SpsaGains::forHorizon(600, 0.1));
    const auto theta = optimize(opt, quadratic, {2.0, -1.5, 1.0}, 600, 5);
    EXPECT_LT(quadratic(theta), 0.05);
}

TEST(Spsa, DescendsEvenWithNoise)
{
    Rng noise(3);
    auto noisy = [&](const std::vector<double> &x) {
        return quadratic(x) + noise.normal(0.0, 0.05);
    };
    Spsa opt(SpsaGains::forHorizon(800, 0.1));
    const auto theta = optimize(opt, noisy, {2.0, -1.5}, 800, 7);
    EXPECT_LT(quadratic(theta), 0.3);
}

TEST(ResamplingSpsa, PlanHasTwiceThePoints)
{
    ResamplingSpsa opt;
    Rng rng(1);
    const auto pts = opt.plan({1.0, 2.0}, 0, rng);
    EXPECT_EQ(pts.size(), 4u);
    EXPECT_DOUBLE_EQ(opt.evaluationCostFactor(), 2.0);
}

TEST(ResamplingSpsa, ConvergesOnQuadratic)
{
    ResamplingSpsa opt(SpsaGains::forHorizon(400, 0.1));
    const auto theta = optimize(opt, quadratic, {2.0, -1.5}, 400, 11);
    EXPECT_LT(quadratic(theta), 0.05);
}

TEST(ResamplingSpsa, Validation)
{
    EXPECT_THROW(ResamplingSpsa(SpsaGains{}, 0), std::invalid_argument);
}

TEST(SecondOrderSpsa, PlanHasFourPoints)
{
    SecondOrderSpsa opt;
    Rng rng(1);
    const auto pts = opt.plan({1.0, 2.0, 3.0}, 0, rng);
    EXPECT_EQ(pts.size(), 4u);
    EXPECT_DOUBLE_EQ(opt.evaluationCostFactor(), 2.0);
}

TEST(SecondOrderSpsa, ConvergesOnIllConditionedQuadratic)
{
    // Strong anisotropy is where Hessian preconditioning should help.
    auto aniso = [](const std::vector<double> &x) {
        return 25.0 * x[0] * x[0] + 0.5 * x[1] * x[1];
    };
    SecondOrderSpsa opt(SpsaGains::forHorizon(800, 0.05));
    const auto theta = optimize(opt, aniso, {1.0, 2.0}, 800, 13);
    EXPECT_LT(aniso(theta), 0.4);
}

TEST(SecondOrderSpsa, Validation)
{
    EXPECT_THROW(SecondOrderSpsa(SpsaGains{}, 0.0), std::invalid_argument);
}

TEST(Spsa, MeanGradientEstimateIsUnbiasedOnLinearFunction)
{
    // For f(x) = c . x the SPSA gradient estimate is unbiased: averaged
    // over Rademacher perturbations the proposed step approaches
    // -a_0 * c.
    const std::vector<double> c = {3.0, -2.0};
    auto linear = [&](const std::vector<double> &x) {
        return c[0] * x[0] + c[1] * x[1];
    };
    Spsa opt(SpsaGains::forHorizon(1, 0.1));
    Rng rng(17);
    const std::vector<double> theta = {0.0, 0.0};
    const double a0 = opt.gains().stepSize(0);

    std::vector<double> mean_step(2, 0.0);
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        const auto pts = opt.plan(theta, 0, rng);
        const auto next =
            opt.propose(theta, 0, {linear(pts[0]), linear(pts[1])});
        for (int i = 0; i < 2; ++i)
            mean_step[i] += next[i] / trials;
    }
    EXPECT_NEAR(mean_step[0], -a0 * c[0], 0.05 * a0 * std::abs(c[0]) + 1e-4);
    EXPECT_NEAR(mean_step[1], -a0 * c[1], 0.05 * a0 * std::abs(c[1]) + 1e-4);
}

} // namespace
} // namespace qismet
