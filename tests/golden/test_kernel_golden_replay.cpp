/**
 * @file
 * Golden-trace replay through the SIMD + intra-state-parallel kernel
 * configurations: the three pinned end-to-end trajectories from
 * test_golden_traces.cpp are re-run with (a) SIMD forced off at 2
 * worker threads and (b) SIMD on at 8 worker threads. Every
 * configuration must reproduce the committed digests bit-for-bit —
 * this is the proof that vectorization and intra-state parallelism
 * changed the speed of the simulator and not one bit of its output.
 *
 * The parallel threshold stays at its default: the golden states are
 * small enough to take the serial-reduction path, and *that* is the
 * contract that keeps their digests byte-stable (lowering the
 * threshold regroups reduction sums by design — see
 * common/block_partition.hpp).
 *
 * The digest/final-energy constants are the same values pinned in
 * test_golden_traces.cpp; if an intentional change regenerates them
 * there (QISMET_UPDATE_GOLDEN=1), update this file in the same commit.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "apps/applications.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "core/qismet_vqe.hpp"
#include "hamiltonian/h2_molecule.hpp"
#include "noise/machine_model.hpp"
#include "qaoa/maxcut.hpp"
#include "qaoa/qaoa_ansatz.hpp"
#include "vqe/run_digest.hpp"

namespace qismet {
namespace {

class GlobalThreadsGuard
{
  public:
    GlobalThreadsGuard() : saved_(ParallelExecutor::global().threads()) {}
    ~GlobalThreadsGuard() { ParallelExecutor::setGlobalThreads(saved_); }

  private:
    std::size_t saved_;
};

class SimdGuard
{
  public:
    SimdGuard() : saved_(simdEnabled()) {}
    ~SimdGuard() { setSimdEnabled(saved_); }

  private:
    bool saved_;
};

struct Trace
{
    std::string digest;
    double finalEstimate = 0.0;
};

template <typename RunFn>
void
replayGolden(const char *name, RunFn make_run, const char *golden_digest,
             double golden_final)
{
    if (std::getenv("QISMET_UPDATE_GOLDEN") != nullptr)
        GTEST_SKIP() << "golden update mode: regenerate via test_golden, "
                     << "then mirror the constants here";

    GlobalThreadsGuard threadsGuard;
    SimdGuard simdGuard;

    // Scalar kernels, 2 threads (a thread count the primary golden
    // test never uses).
    setSimdEnabled(false);
    ParallelExecutor::setGlobalThreads(2);
    const Trace scalar = make_run();
    EXPECT_EQ(scalar.digest, golden_digest)
        << name << ": scalar-kernel replay diverged from the golden";
    EXPECT_DOUBLE_EQ(scalar.finalEstimate, golden_final);

    // SIMD on (where the host supports it), 8 threads.
    setSimdEnabled(true);
    ParallelExecutor::setGlobalThreads(8);
    const Trace simd = make_run();
    EXPECT_EQ(simd.digest, golden_digest)
        << name << ": SIMD/8-thread replay diverged";
    EXPECT_DOUBLE_EQ(simd.finalEstimate, golden_final);
}

TEST(KernelGoldenReplay, H2Vqe)
{
    const H2Problem prob = h2Problem(0.735);
    const QismetVqe runner(prob.hamiltonian,
                           makeAnsatz("SU2", 4, 3)->build(),
                           machineModel("guadalupe"), prob.fciEnergy);
    replayGolden(
        "h2-vqe",
        [&] {
            QismetVqeConfig cfg;
            cfg.totalJobs = 200;
            cfg.seed = 11;
            cfg.scheme = Scheme::Qismet;
            const QismetVqeResult res = runner.run(cfg);
            return Trace{trajectoryDigest(res.run),
                         res.run.finalEstimate};
        },
        "c2c0acaf7d968c0e", -0.37032714293828062);
}

TEST(KernelGoldenReplay, TfimVqeWithFaults)
{
    const Application app = application(1);
    const QismetVqe runner = app.makeRunner();
    replayGolden(
        "tfim-vqe-faults",
        [&] {
            QismetVqeConfig cfg;
            cfg.totalJobs = 200;
            cfg.seed = 23;
            cfg.scheme = Scheme::Qismet;
            cfg.faults.timeoutRate = 0.02;
            cfg.faults.errorRate = 0.01;
            cfg.faults.partialRate = 0.02;
            cfg.faults.referenceLossRate = 0.01;
            cfg.faults.burstCoupling = 1.0;
            const QismetVqeResult res = runner.run(cfg);
            return Trace{trajectoryDigest(res.run),
                         res.run.finalEstimate};
        },
        "52dbf1dc85157f0e", -2.2793949905318844);
}

TEST(KernelGoldenReplay, QaoaMaxCut)
{
    const MaxCutProblem problem = MaxCutProblem::ring(6);
    const QaoaAnsatz ansatz(problem, 3);
    const QismetVqe runner(problem.costHamiltonian(), ansatz.build(),
                           machineModel("guadalupe"),
                           -problem.maxCutValue());
    replayGolden(
        "qaoa-maxcut",
        [&] {
            QismetVqeConfig cfg;
            cfg.totalJobs = 200;
            cfg.seed = 37;
            cfg.scheme = Scheme::Qismet;
            cfg.initialTheta = {1.2, 2.2, 2.0, 0.5, 1.2, 2.0};
            cfg.spsaInitialStep = 0.10;
            cfg.spsaPerturbation = 0.05;
            const QismetVqeResult res = runner.run(cfg);
            return Trace{trajectoryDigest(res.run),
                         res.run.finalEstimate};
        },
        "b2296b1a912f1e94", -3.7907668020003014);
}

} // namespace
} // namespace qismet
