/**
 * @file
 * Golden-trace regression tests: seeded end-to-end QISMET trajectories
 * for H2-VQE, TFIM-VQE and a QAOA MaxCut instance, pinned by final
 * energy and a per-iteration CSV checksum. Every trace is produced at
 * 1 and 4 worker threads and must be byte-identical in both — this is
 * the repo's determinism contract exercised through the full stack
 * (estimator, executor, fault injector, controller, optimizer).
 *
 * When an intentional change shifts a trajectory, regenerate the
 * constants with
 *
 *     QISMET_UPDATE_GOLDEN=1 ./tests/test_golden
 *
 * and paste the printed block below. These tests carry the ctest label
 * `golden` (not tier1): they pin exact floating-point trajectories, so
 * they are a change-detector, not a correctness gate.
 *
 * Regeneration history: the constants were refreshed exactly once when
 * the compiled-circuit engine landed (DESIGN.md section 11) — fusion
 * reorders floating-point products, shifting the h2-vqe and
 * tfim-vqe-faults digests; qaoa-maxcut was bit-identical before and
 * after.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/applications.hpp"
#include "core/qismet_vqe.hpp"
#include "common/thread_pool.hpp"
#include "hamiltonian/h2_molecule.hpp"
#include "noise/machine_model.hpp"
#include "qaoa/maxcut.hpp"
#include "qaoa/qaoa_ansatz.hpp"
#include "vqe/run_digest.hpp"

namespace qismet {
namespace {

class GlobalThreadsGuard
{
  public:
    GlobalThreadsGuard() : saved_(ParallelExecutor::global().threads()) {}
    ~GlobalThreadsGuard() { ParallelExecutor::setGlobalThreads(saved_); }

  private:
    std::size_t saved_;
};

// The CSV rendering and FNV-1a digest live in vqe/run_digest.hpp
// (trajectoryDigest); the serve layer's solo-equivalence tests compare
// against the same function, so "golden" means one thing repo-wide.

struct Trace
{
    std::string digest;
    double finalEstimate = 0.0;
};

template <typename RunFn>
void
checkGolden(const char *name, RunFn make_run,
            const char *golden_digest, double golden_final)
{
    GlobalThreadsGuard guard;
    ParallelExecutor::setGlobalThreads(1);
    const Trace serial = make_run();
    ParallelExecutor::setGlobalThreads(4);
    const Trace parallel = make_run();

    EXPECT_EQ(serial.digest, parallel.digest)
        << name << ": trajectory differs between 1 and 4 threads";
    EXPECT_DOUBLE_EQ(serial.finalEstimate, parallel.finalEstimate);

    if (std::getenv("QISMET_UPDATE_GOLDEN") != nullptr) {
        std::printf("GOLDEN %s digest=%s final=%.17g\n", name,
                    serial.digest.c_str(), serial.finalEstimate);
        GTEST_SKIP() << "golden update mode: printed, not asserted";
    }
    EXPECT_EQ(serial.digest, golden_digest)
        << name << ": trajectory changed — if intentional, regenerate "
        << "with QISMET_UPDATE_GOLDEN=1";
    EXPECT_DOUBLE_EQ(serial.finalEstimate, golden_final);
}

TEST(GoldenTraces, H2Vqe)
{
    const H2Problem prob = h2Problem(0.735);
    const QismetVqe runner(prob.hamiltonian,
                           makeAnsatz("SU2", 4, 3)->build(),
                           machineModel("guadalupe"), prob.fciEnergy);
    checkGolden(
        "h2-vqe",
        [&] {
            QismetVqeConfig cfg;
            cfg.totalJobs = 200;
            cfg.seed = 11;
            cfg.scheme = Scheme::Qismet;
            const QismetVqeResult res = runner.run(cfg);
            return Trace{trajectoryDigest(res.run),
                         res.run.finalEstimate};
        },
        "c2c0acaf7d968c0e", -0.37032714293828062);
}

TEST(GoldenTraces, TfimVqeWithFaults)
{
    // Application 1 with a mixed 6% fault load: the golden trace pins
    // the fault-recovery path (retries, partials, reference loss) end
    // to end, not just the clean trajectory.
    const Application app = application(1);
    const QismetVqe runner = app.makeRunner();
    checkGolden(
        "tfim-vqe-faults",
        [&] {
            QismetVqeConfig cfg;
            cfg.totalJobs = 200;
            cfg.seed = 23;
            cfg.scheme = Scheme::Qismet;
            cfg.faults.timeoutRate = 0.02;
            cfg.faults.errorRate = 0.01;
            cfg.faults.partialRate = 0.02;
            cfg.faults.referenceLossRate = 0.01;
            cfg.faults.burstCoupling = 1.0;
            const QismetVqeResult res = runner.run(cfg);
            return Trace{trajectoryDigest(res.run),
                         res.run.finalEstimate};
        },
        "52dbf1dc85157f0e", -2.2793949905318844);
}

TEST(GoldenTraces, QaoaMaxCut)
{
    const MaxCutProblem problem = MaxCutProblem::ring(6);
    const QaoaAnsatz ansatz(problem, 3);
    const QismetVqe runner(problem.costHamiltonian(), ansatz.build(),
                           machineModel("guadalupe"),
                           -problem.maxCutValue());
    checkGolden(
        "qaoa-maxcut",
        [&] {
            QismetVqeConfig cfg;
            cfg.totalJobs = 200;
            cfg.seed = 37;
            cfg.scheme = Scheme::Qismet;
            cfg.initialTheta = {1.2, 2.2, 2.0, 0.5, 1.2, 2.0};
            cfg.spsaInitialStep = 0.10;
            cfg.spsaPerturbation = 0.05;
            const QismetVqeResult res = runner.run(cfg);
            return Trace{trajectoryDigest(res.run),
                         res.run.finalEstimate};
        },
        "b2296b1a912f1e94", -3.7907668020003014);
}

} // namespace
} // namespace qismet
