/** @file Tests for PauliSum Hamiltonians. */

#include <gtest/gtest.h>

#include "common/eigen.hpp"
#include "pauli/pauli_sum.hpp"

namespace qismet {
namespace {

TEST(PauliSum, AddAndQuery)
{
    PauliSum h(2);
    h.add(1.5, "ZZ");
    h.add(-0.5, "XI");
    EXPECT_EQ(h.numTerms(), 2u);
    EXPECT_DOUBLE_EQ(h.l1Norm(), 2.0);
}

TEST(PauliSum, WidthMismatchThrows)
{
    PauliSum h(2);
    EXPECT_THROW(h.add(1.0, "XXX"), std::invalid_argument);
}

TEST(PauliSum, SimplifyMergesDuplicates)
{
    PauliSum h(2);
    h.add(1.0, "ZZ");
    h.add(2.0, "ZZ");
    h.add(0.5, "XI");
    h.simplify();
    EXPECT_EQ(h.numTerms(), 2u);
    EXPECT_DOUBLE_EQ(h.l1Norm(), 3.5);
}

TEST(PauliSum, SimplifyDropsZeroTerms)
{
    PauliSum h(2);
    h.add(1.0, "ZZ");
    h.add(-1.0, "ZZ");
    h.simplify();
    EXPECT_EQ(h.numTerms(), 0u);
}

TEST(PauliSum, IdentityCoefficient)
{
    PauliSum h(2);
    h.add(0.7, "II");
    h.add(1.0, "ZZ");
    h.add(0.3, "II");
    EXPECT_DOUBLE_EQ(h.identityCoefficient(), 1.0);
}

TEST(PauliSum, ToMatrixIsHermitian)
{
    PauliSum h(2);
    h.add(0.5, "XY");
    h.add(-1.2, "ZZ");
    h.add(0.3, "YI");
    EXPECT_TRUE(h.toMatrix().isHermitian(1e-12));
}

TEST(PauliSum, ToMatrixKnownSpectrum)
{
    // H = Z0: eigenvalues ±1 each twice on 2 qubits.
    PauliSum h(2);
    h.add(1.0, "IZ");
    const auto eig = eigHermitian(h.toMatrix());
    EXPECT_NEAR(eig.values[0], -1.0, 1e-10);
    EXPECT_NEAR(eig.values[1], -1.0, 1e-10);
    EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
    EXPECT_NEAR(eig.values[3], 1.0, 1e-10);
}

TEST(PauliSum, AdditionAndScaling)
{
    PauliSum a(2);
    a.add(1.0, "ZZ");
    PauliSum b(2);
    b.add(2.0, "ZZ");
    b.add(1.0, "XI");

    const PauliSum sum = a + b;
    EXPECT_EQ(sum.numTerms(), 2u);
    EXPECT_DOUBLE_EQ(sum.l1Norm(), 4.0);

    const PauliSum scaled = sum * (-0.5);
    EXPECT_DOUBLE_EQ(scaled.l1Norm(), 2.0);
}

TEST(PauliSum, ToStringListsTerms)
{
    PauliSum h(2);
    h.add(-1.0, "ZZ");
    const std::string s = h.toString();
    EXPECT_NE(s.find("ZZ"), std::string::npos);
    EXPECT_NE(s.find("-1"), std::string::npos);
    EXPECT_EQ(PauliSum(2).toString(), "0");
}

} // namespace
} // namespace qismet
