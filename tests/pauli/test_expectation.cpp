/** @file Cross-validation of Pauli expectations across representations. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "pauli/expectation.hpp"

namespace qismet {
namespace {

Statevector
randomState(int num_qubits, Rng &rng)
{
    std::vector<Complex> amps(std::size_t{1} << num_qubits);
    for (auto &a : amps)
        a = Complex(rng.normal(), rng.normal());
    Statevector st(std::move(amps));
    st.normalize();
    return st;
}

class ExpectationCrossCheckTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ExpectationCrossCheckTest, FastPathMatchesDenseMatrix)
{
    const auto pauli = PauliString::fromLabel(GetParam());
    Rng rng(911);
    for (int rep = 0; rep < 5; ++rep) {
        const Statevector st = randomState(pauli.numQubits(), rng);

        // Reference: <psi| P |psi> via the dense matrix.
        const auto p_mat = pauli.toMatrix();
        const auto pv = p_mat.apply(st.amplitudes());
        Complex ref(0, 0);
        for (std::size_t i = 0; i < pv.size(); ++i)
            ref += std::conj(st.amplitudes()[i]) * pv[i];

        EXPECT_NEAR(expectation(st, pauli), ref.real(), 1e-10)
            << "label " << GetParam();

        // Density-matrix path must agree too.
        DensityMatrix rho(st);
        EXPECT_NEAR(expectation(rho, pauli), ref.real(), 1e-10);
    }
}

INSTANTIATE_TEST_SUITE_P(Labels, ExpectationCrossCheckTest,
                         ::testing::Values("Z", "X", "Y", "ZZ", "XY", "YX",
                                           "YY", "XZY", "YIZ", "XXYZ",
                                           "IYIY"));

TEST(Expectation, SumLinearity)
{
    Rng rng(13);
    const Statevector st = randomState(3, rng);
    PauliSum h(3);
    h.add(0.5, "ZZI");
    h.add(-1.5, "IXX");
    h.add(2.0, "III");

    double expect = 2.0;
    expect += 0.5 * expectation(st, PauliString::fromLabel("ZZI"));
    expect += -1.5 * expectation(st, PauliString::fromLabel("IXX"));
    EXPECT_NEAR(expectation(st, h), expect, 1e-12);
}

TEST(Expectation, GroundStateOfZ)
{
    Statevector st(1); // |0>
    EXPECT_DOUBLE_EQ(expectation(st, PauliString::fromLabel("Z")), 1.0);
    EXPECT_DOUBLE_EQ(expectation(st, PauliString::fromLabel("X")), 0.0);
}

TEST(Expectation, PlusStateOfX)
{
    Statevector st(1);
    Circuit c(1);
    c.h(0);
    st.run(c);
    EXPECT_NEAR(expectation(st, PauliString::fromLabel("X")), 1.0, 1e-12);
    EXPECT_NEAR(expectation(st, PauliString::fromLabel("Z")), 0.0, 1e-12);
}

TEST(Expectation, YEigenstate)
{
    Statevector st(1);
    Circuit c(1);
    c.h(0).s(0); // |+i>
    st.run(c);
    EXPECT_NEAR(expectation(st, PauliString::fromLabel("Y")), 1.0, 1e-12);
}

TEST(Expectation, WidthMismatchThrows)
{
    Statevector st(2);
    EXPECT_THROW(expectation(st, PauliString::fromLabel("Z")),
                 std::invalid_argument);
}

TEST(ExpectationFromCounts, IdentityIsOne)
{
    Counts counts = {{0, 5}};
    EXPECT_DOUBLE_EQ(
        expectationFromCounts(counts, PauliString::fromLabel("II")), 1.0);
}

TEST(ExpectationFromCounts, ParityOverSupport)
{
    // After basis change, a term's value is the parity average over its
    // support bits.
    Counts counts = {{0b00, 40}, {0b01, 60}};
    const auto zi = PauliString::fromLabel("IZ"); // qubit 0
    EXPECT_NEAR(expectationFromCounts(counts, zi), -0.2, 1e-12);
}

TEST(Expectation, BellStateCorrelations)
{
    Statevector st(2);
    Circuit c(2);
    c.h(0).cx(0, 1);
    st.run(c);
    EXPECT_NEAR(expectation(st, PauliString::fromLabel("ZZ")), 1.0, 1e-12);
    EXPECT_NEAR(expectation(st, PauliString::fromLabel("XX")), 1.0, 1e-12);
    EXPECT_NEAR(expectation(st, PauliString::fromLabel("YY")), -1.0, 1e-12);
    EXPECT_NEAR(expectation(st, PauliString::fromLabel("ZI")), 0.0, 1e-12);
}

} // namespace
} // namespace qismet
