/**
 * @file
 * expectationFromCounts coverage: property tests against exact
 * statevector expectations on random small states (counts sampled
 * noiselessly in the string's measurement basis), plus the
 * empty-counts, identity-string, and single-shot edge cases.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "pauli/expectation.hpp"
#include "pauli/grouping.hpp"
#include "sim/shot_sampler.hpp"

namespace qismet {
namespace {

Statevector
randomState(int num_qubits, Rng &rng)
{
    std::vector<Complex> amps(std::size_t{1} << num_qubits);
    for (auto &a : amps)
        a = Complex(rng.normal(), rng.normal());
    Statevector st(std::move(amps));
    st.normalize();
    return st;
}

/** Exact parity average of `pauli`'s support over `counts`, recomputed
    independently of the implementation under test. */
double
referenceParityAverage(const Counts &counts, const PauliString &pauli)
{
    const std::uint64_t mask = pauli.supportMask();
    double total = 0.0;
    double sum = 0.0;
    for (const auto &[bitstring, n] : counts) {
        const double w = static_cast<double>(n);
        total += w;
        sum += (std::popcount(bitstring & mask) & 1 ? -1.0 : 1.0) * w;
    }
    return total == 0.0 ? 0.0 : sum / total;
}

TEST(ExpectationFromCounts, MatchesManualParityAverageOnRandomCounts)
{
    Rng rng(60601);
    for (int rep = 0; rep < 20; ++rep) {
        const int n = 1 + static_cast<int>(rng.uniformInt(6));
        const char ops[] = {'I', 'X', 'Y', 'Z'};
        std::string label;
        for (int q = 0; q < n; ++q)
            label += ops[rng.uniformInt(4)];
        const auto pauli = PauliString::fromLabel(label);
        if (pauli.isIdentity())
            continue;

        Counts counts;
        const std::size_t dim = std::size_t{1} << n;
        for (std::uint64_t b = 0; b < dim; ++b)
            if (rng.uniform() < 0.7)
                counts[b] = rng.uniformInt(100);

        EXPECT_DOUBLE_EQ(expectationFromCounts(counts, pauli),
                         referenceParityAverage(counts, pauli))
            << "label " << label;
    }
}

TEST(ExpectationFromCounts, ConvergesToExactExpectationUnderSampling)
{
    // Rotate the state into the string's measurement basis, sample
    // noiselessly, and compare the counts estimate to the exact
    // <psi|P|psi>. With 200k shots the standard error is
    // sqrt((1-<P>²)/shots) <= ~2.3e-3; a 5-sigma band keeps the test
    // deterministic-in-practice while still falsifiable.
    Rng rng(7777);
    const ShotSampler sampler; // no readout error
    const char *labels[] = {"Z", "X", "Y", "ZZ", "XY", "ZIZ", "XXZ",
                            "YZY"};
    for (const char *label : labels) {
        const auto pauli = PauliString::fromLabel(label);
        const int n = pauli.numQubits();
        const Statevector st = randomState(n, rng);
        const double exact = expectation(st, pauli);

        // Reuse the grouping helper to build the basis rotation for
        // this single string.
        MeasurementGroup group;
        group.basis.assign(static_cast<std::size_t>(n), PauliOp::I);
        for (int q = 0; q < n; ++q)
            group.basis[static_cast<std::size_t>(q)] = pauli.op(q);
        group.termIndices = {0};
        Statevector rotated = st;
        rotated.run(basisChangeCircuit(group, n));

        const std::size_t shots = 200000;
        const Counts counts = sampler.sample(rotated, shots, rng);
        ASSERT_EQ(totalShots(counts), shots);

        const double estimate = expectationFromCounts(counts, pauli);
        const double sigma =
            std::sqrt((1.0 - exact * exact) / static_cast<double>(shots));
        EXPECT_NEAR(estimate, exact, 5.0 * sigma + 1e-12)
            << "label " << label;
    }
}

TEST(ExpectationFromCounts, EmptyCountsReturnsZero)
{
    const Counts empty;
    EXPECT_EQ(expectationFromCounts(empty, PauliString::fromLabel("ZZ")),
              0.0);
    EXPECT_EQ(expectationFromCounts(empty, PauliString::fromLabel("XY")),
              0.0);
}

TEST(ExpectationFromCounts, IdentityStringIsAlwaysOne)
{
    // Identity needs no measurement: <I> = 1 even with no counts.
    const Counts empty;
    EXPECT_EQ(expectationFromCounts(empty, PauliString::fromLabel("II")),
              1.0);
    Counts counts;
    counts[0b01] = 3;
    counts[0b10] = 5;
    EXPECT_EQ(
        expectationFromCounts(counts, PauliString::fromLabel("II")), 1.0);
}

TEST(ExpectationFromCounts, SingleShotIsExactlyPlusOrMinusOne)
{
    const auto pauli = PauliString::fromLabel("ZIZ");
    const std::uint64_t mask = pauli.supportMask();
    for (std::uint64_t b = 0; b < 8; ++b) {
        Counts one;
        one[b] = 1;
        const double expected =
            (std::popcount(b & mask) & 1) ? -1.0 : 1.0;
        EXPECT_EQ(expectationFromCounts(one, pauli), expected)
            << "outcome " << b;
    }
}

TEST(ExpectationFromCounts, SupportIgnoresIdentityQubits)
{
    // ZIZ and ZZZ differ on the middle qubit only; counts that flip
    // the middle bit must change ZZZ's value but never ZIZ's.
    const auto ziz = PauliString::fromLabel("ZIZ");
    const auto zzz = PauliString::fromLabel("ZZZ");
    Counts a;
    a[0b000] = 10;
    Counts b;
    b[0b010] = 10;
    EXPECT_EQ(expectationFromCounts(a, ziz),
              expectationFromCounts(b, ziz));
    EXPECT_NE(expectationFromCounts(a, zzz),
              expectationFromCounts(b, zzz));
}

} // namespace
} // namespace qismet
