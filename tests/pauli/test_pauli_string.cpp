/** @file Tests for Pauli strings: labels, masks, commutation, matrices. */

#include <gtest/gtest.h>

#include "pauli/pauli_string.hpp"

namespace qismet {
namespace {

TEST(PauliString, LabelRoundTrip)
{
    for (const std::string label : {"X", "IZ", "XYZI", "IIIIII", "ZZXXYY"}) {
        EXPECT_EQ(PauliString::fromLabel(label).label(), label);
    }
}

TEST(PauliString, LabelConvention)
{
    // Leftmost character is the highest-index qubit.
    const auto p = PauliString::fromLabel("XI");
    EXPECT_EQ(p.op(1), PauliOp::X);
    EXPECT_EQ(p.op(0), PauliOp::I);
}

TEST(PauliString, BadLabelThrows)
{
    EXPECT_THROW(PauliString::fromLabel(""), std::invalid_argument);
    EXPECT_THROW(PauliString::fromLabel("XQ"), std::invalid_argument);
}

TEST(PauliString, WeightAndIdentity)
{
    EXPECT_EQ(PauliString::fromLabel("IIII").weight(), 0);
    EXPECT_TRUE(PauliString::fromLabel("II").isIdentity());
    EXPECT_EQ(PauliString::fromLabel("XIZY").weight(), 3);
}

TEST(PauliString, Masks)
{
    const auto p = PauliString::fromLabel("ZYXI"); // q3=Z q2=Y q1=X q0=I
    EXPECT_EQ(p.xMask(), 0b0110u); // X,Y flip
    EXPECT_EQ(p.zMask(), 0b1100u); // Z,Y phase
    EXPECT_EQ(p.supportMask(), 0b1110u);
    EXPECT_EQ(p.countY(), 1);
}

TEST(PauliString, SetOpAndBounds)
{
    PauliString p(3);
    p.setOp(1, PauliOp::Y);
    EXPECT_EQ(p.op(1), PauliOp::Y);
    EXPECT_THROW(p.setOp(3, PauliOp::X), std::out_of_range);
    EXPECT_THROW(p.op(-1), std::out_of_range);
}

TEST(PauliString, QubitWiseCommutation)
{
    const auto a = PauliString::fromLabel("XI");
    const auto b = PauliString::fromLabel("XZ");
    const auto c = PauliString::fromLabel("ZI");
    EXPECT_TRUE(a.qubitWiseCommutes(b));
    EXPECT_FALSE(a.qubitWiseCommutes(c));
}

TEST(PauliString, FullCommutation)
{
    // XX and ZZ commute globally (two anticommuting sites) but not
    // qubit-wise.
    const auto xx = PauliString::fromLabel("XX");
    const auto zz = PauliString::fromLabel("ZZ");
    EXPECT_TRUE(xx.commutes(zz));
    EXPECT_FALSE(xx.qubitWiseCommutes(zz));

    const auto xi = PauliString::fromLabel("XI");
    const auto zi = PauliString::fromLabel("ZI");
    EXPECT_FALSE(xi.commutes(zi));
}

TEST(PauliString, CommutesWidthMismatchThrows)
{
    EXPECT_THROW(PauliString::fromLabel("X").commutes(
                     PauliString::fromLabel("XX")),
                 std::invalid_argument);
}

TEST(PauliString, MatrixOfSingleOps)
{
    EXPECT_NEAR(PauliString::fromLabel("I").toMatrix().maxAbsDiff(
                    Matrix::identity(2)),
                0.0, 1e-14);
    const auto z = PauliString::fromLabel("Z").toMatrix();
    EXPECT_DOUBLE_EQ(z(0, 0).real(), 1.0);
    EXPECT_DOUBLE_EQ(z(1, 1).real(), -1.0);
}

TEST(PauliString, MatrixOrderingMatchesBitConvention)
{
    // "XI" acts X on qubit 1 (bit 1). Basis |01> (index 1) should map
    // to |11> (index 3).
    const auto m = PauliString::fromLabel("XI").toMatrix();
    EXPECT_DOUBLE_EQ(m(3, 1).real(), 1.0);
    EXPECT_DOUBLE_EQ(m(2, 0).real(), 1.0);
    EXPECT_DOUBLE_EQ(m(0, 0).real(), 0.0);
}

class PauliMatrixHermitianTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PauliMatrixHermitianTest, HermitianAndUnitary)
{
    const auto m = PauliString::fromLabel(GetParam()).toMatrix();
    EXPECT_TRUE(m.isHermitian(1e-12));
    EXPECT_TRUE(m.isUnitary(1e-12));
    // Pauli matrices square to identity.
    EXPECT_NEAR((m * m).maxAbsDiff(Matrix::identity(m.rows())), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Labels, PauliMatrixHermitianTest,
                         ::testing::Values("X", "Y", "Z", "XY", "YZ", "ZZ",
                                           "XYZ", "YYX", "IZY"));

TEST(PauliString, Ordering)
{
    const auto a = PauliString::fromLabel("IX");
    const auto b = PauliString::fromLabel("XI");
    EXPECT_TRUE(a == a);
    EXPECT_TRUE(a < b || b < a);
    EXPECT_FALSE(a == b);
}

} // namespace
} // namespace qismet
