/**
 * @file
 * Structural tests of ExpectationPlan compilation: xmask grouping,
 * pre-folded phase constants, fingerprints, and the cross-iteration
 * plan cache (hits, misses, tenant isolation, clear).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>

#include "common/rng.hpp"
#include "pauli/expectation.hpp"
#include "pauli/expectation_plan.hpp"

namespace qismet {
namespace {

/** The i^nY phase as the legacy pauliPhase computed it. */
Complex
referencePhase(int n_y, bool minus)
{
    Complex phase = minus ? Complex(-1.0, 0.0) : Complex(1.0, 0.0);
    switch (n_y & 3) {
      case 0:
        break;
      case 1:
        phase *= Complex(0.0, 1.0);
        break;
      case 2:
        phase *= Complex(-1.0, 0.0);
        break;
      case 3:
        phase *= Complex(0.0, -1.0);
        break;
    }
    return phase;
}

bool
bitEqual(Complex a, Complex b)
{
    return std::bit_cast<std::uint64_t>(a.real()) ==
               std::bit_cast<std::uint64_t>(b.real()) &&
           std::bit_cast<std::uint64_t>(a.imag()) ==
               std::bit_cast<std::uint64_t>(b.imag());
}

PauliSum
sharedXmaskSum()
{
    // ZZ-type terms (xmask 0), an XX/YY pair on (0,1) (same xmask),
    // and a lone X — 7 terms, 3 distinct xmasks.
    PauliSum h(3);
    h.add(0.5, "IZZ");
    h.add(-0.25, "ZZI");
    h.add(0.125, "ZIZ");
    h.add(0.75, "IXX");
    h.add(-0.5, "IYY");
    h.add(0.3, "XII");
    h.add(1.5, "III");
    return h;
}

TEST(ExpectationPlan, GroupsTermsBySharedXmask)
{
    const PauliSum h = sharedXmaskSum();
    const ExpectationPlan plan(h);

    EXPECT_EQ(plan.numTerms(), 7u);
    // xmask 0 holds IZZ/ZZI/ZIZ/III, the IXX/IYY pair shares one mask,
    // XII is alone.
    EXPECT_EQ(plan.numGroups(), 3u);

    std::set<std::uint64_t> xmasks;
    std::set<std::size_t> covered;
    std::size_t total = 0;
    for (const auto &g : plan.groups()) {
        EXPECT_TRUE(xmasks.insert(g.xmask).second)
            << "duplicate group xmask " << g.xmask;
        EXPECT_EQ(g.specs.size(), g.termIndices.size());
        total += g.specs.size();
        for (std::size_t ti : g.termIndices) {
            EXPECT_TRUE(covered.insert(ti).second)
                << "term " << ti << " in two groups";
            EXPECT_EQ(h.terms()[ti].pauli.xMask(), g.xmask);
        }
    }
    EXPECT_EQ(total, plan.numTerms());
    EXPECT_EQ(covered.size(), plan.numTerms());
}

TEST(ExpectationPlan, PhaseConstantsMatchLegacySequenceBitwise)
{
    Rng rng(2024);
    const char ops[] = {'I', 'X', 'Y', 'Z'};
    PauliSum h(5);
    for (int t = 0; t < 40; ++t) {
        std::string label;
        for (int q = 0; q < 5; ++q)
            label += ops[rng.uniformInt(4)];
        h.add(rng.normal(), label);
    }
    const ExpectationPlan plan(h);
    for (const auto &g : plan.groups()) {
        for (std::size_t k = 0; k < g.specs.size(); ++k) {
            const auto &term = h.terms()[g.termIndices[k]];
            const int n_y = term.pauli.countY();
            EXPECT_EQ(g.specs[k].zmask, term.pauli.zMask());
            // Signed zeros matter (−0.0 in a product flips downstream
            // bits), hence the bit-level comparison.
            EXPECT_TRUE(bitEqual(g.specs[k].phasePlus,
                                 referencePhase(n_y, false)))
                << "plus phase, nY=" << n_y;
            EXPECT_TRUE(bitEqual(g.specs[k].phaseMinus,
                                 referencePhase(n_y, true)))
                << "minus phase, nY=" << n_y;
        }
    }
}

TEST(ExpectationPlan, CoefficientsKeepOriginalTermOrder)
{
    const PauliSum h = sharedXmaskSum();
    const ExpectationPlan plan(h);
    ASSERT_EQ(plan.coefficients().size(), h.numTerms());
    for (std::size_t k = 0; k < h.numTerms(); ++k)
        EXPECT_EQ(plan.coefficients()[k], h.terms()[k].coefficient);
}

TEST(ExpectationPlan, IdentityTermJoinsXmaskZeroGroup)
{
    PauliSum h(2);
    h.add(2.0, "II");
    h.add(0.5, "ZZ");
    const ExpectationPlan plan(h);
    ASSERT_EQ(plan.numGroups(), 1u);
    EXPECT_EQ(plan.groups()[0].xmask, 0u);
    EXPECT_EQ(plan.groups()[0].specs.size(), 2u);
    // Identity: zmask 0, phase +1 — its sweep is the norm² walk.
    EXPECT_EQ(plan.groups()[0].specs[0].zmask, 0u);
    EXPECT_TRUE(
        bitEqual(plan.groups()[0].specs[0].phasePlus, Complex(1.0, 0.0)));
}

TEST(ExpectationPlan, SamplingLayoutMatchesMeasurementGroups)
{
    const PauliSum h = sharedXmaskSum();
    const ExpectationPlan plan(h);
    const auto &groups = plan.measurementGroups();
    const auto reference = groupQubitWise(h);
    ASSERT_EQ(groups.size(), reference.size());
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const auto &masks = plan.samplingMasks(gi);
        const auto &coeffs = plan.samplingCoefficients(gi);
        ASSERT_EQ(masks.size(), groups[gi].termIndices.size());
        ASSERT_EQ(coeffs.size(), groups[gi].termIndices.size());
        for (std::size_t k = 0; k < masks.size(); ++k) {
            const auto &term = h.terms()[groups[gi].termIndices[k]];
            EXPECT_EQ(masks[k], term.pauli.supportMask());
            EXPECT_EQ(coeffs[k], term.coefficient);
        }
    }
}

TEST(ExpectationPlan, FingerprintSeparatesDistinctSums)
{
    PauliSum a(3);
    a.add(0.5, "ZZI");
    PauliSum b(3);
    b.add(0.5, "ZIZ");
    PauliSum c(3);
    c.add(0.25, "ZZI");
    PauliSum a2(3);
    a2.add(0.5, "ZZI");

    EXPECT_EQ(a.fingerprint(), a2.fingerprint());
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    EXPECT_NE(a.fingerprint(), c.fingerprint());
    EXPECT_EQ(ExpectationPlan(a).fingerprint(), a.fingerprint());
}

TEST(ExpectationPlanCache, HitsAndMisses)
{
    ExpectationPlanCache cache;
    const PauliSum h = sharedXmaskSum();

    const auto p1 = cache.acquire(h);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.size(), 1u);

    const auto p2 = cache.acquire(h);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(p1.get(), p2.get()) << "hit must return the same plan";

    PauliSum other(3);
    other.add(1.0, "XYZ");
    const auto p3 = cache.acquire(other);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_NE(p1.get(), p3.get());
}

TEST(ExpectationPlanCache, TenantsNeverShareEntries)
{
    ExpectationPlanCache cache;
    const PauliSum h = sharedXmaskSum();

    const auto a = cache.acquire(h, /*tenant_id=*/1);
    const auto b = cache.acquire(h, /*tenant_id=*/2);
    EXPECT_NE(a.get(), b.get())
        << "same Hamiltonian, different tenants: entries must be "
           "distinct";
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.size(), 2u);

    // Re-acquire per tenant: each hits its own entry.
    EXPECT_EQ(cache.acquire(h, 1).get(), a.get());
    EXPECT_EQ(cache.acquire(h, 2).get(), b.get());
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(ExpectationPlanCache, ClearDropsEverythingButKeepsLeasedPlans)
{
    ExpectationPlanCache cache;
    const PauliSum h = sharedXmaskSum();
    const auto held = cache.acquire(h);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    // The shared_ptr keeps an already-leased plan alive and usable.
    Rng rng(7);
    std::vector<Complex> amps(8);
    for (auto &x : amps)
        x = Complex(rng.normal(), rng.normal());
    Statevector st(std::move(amps));
    st.normalize();
    EXPECT_NO_THROW(held->evaluate(st));
    // And the next acquire recompiles.
    const auto fresh = cache.acquire(h);
    EXPECT_NE(fresh.get(), held.get());
    EXPECT_EQ(cache.misses(), 2u);
}

} // namespace
} // namespace qismet
