/** @file Tests for measurement-basis grouping and basis-change circuits. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "hamiltonian/tfim.hpp"
#include "pauli/expectation.hpp"
#include "pauli/grouping.hpp"

namespace qismet {
namespace {

TEST(Grouping, TfimFormsTwoGroups)
{
    TfimParams params;
    params.numQubits = 4;
    const PauliSum h = tfimHamiltonian(params);
    const auto groups = groupQubitWise(h);
    // ZZ chain terms share one group; X terms share another.
    ASSERT_EQ(groups.size(), 2u);
}

TEST(Grouping, EveryNonIdentityTermCoveredOnce)
{
    PauliSum h(3);
    h.add(1.0, "ZZI");
    h.add(1.0, "IZZ");
    h.add(1.0, "XII");
    h.add(1.0, "IIX");
    h.add(0.5, "III"); // identity excluded from groups
    const auto groups = groupQubitWise(h);

    std::vector<int> covered(h.numTerms(), 0);
    for (const auto &g : groups)
        for (auto idx : g.termIndices)
            ++covered[idx];
    for (std::size_t i = 0; i < h.numTerms(); ++i) {
        const bool identity = h.terms()[i].pauli.isIdentity();
        EXPECT_EQ(covered[i], identity ? 0 : 1);
    }
}

TEST(Grouping, GroupMembersQubitWiseCommute)
{
    // Property: all pairs inside a group are qubit-wise commuting.
    Rng rng(17);
    PauliSum h(4);
    const PauliOp ops[] = {PauliOp::I, PauliOp::X, PauliOp::Y, PauliOp::Z};
    for (int t = 0; t < 25; ++t) {
        PauliString p(4);
        for (int q = 0; q < 4; ++q)
            p.setOp(q, ops[rng.uniformInt(4)]);
        h.add(rng.normal(), p);
    }
    h.simplify();

    const auto groups = groupQubitWise(h);
    for (const auto &g : groups) {
        for (std::size_t i = 0; i < g.termIndices.size(); ++i) {
            for (std::size_t j = i + 1; j < g.termIndices.size(); ++j) {
                EXPECT_TRUE(h.terms()[g.termIndices[i]].pauli
                                .qubitWiseCommutes(
                                    h.terms()[g.termIndices[j]].pauli));
            }
        }
        // Basis must cover every member's non-identity factors.
        for (auto idx : g.termIndices) {
            const auto &p = h.terms()[idx].pauli;
            for (int q = 0; q < 4; ++q) {
                if (p.op(q) != PauliOp::I) {
                    EXPECT_EQ(g.basis[static_cast<std::size_t>(q)],
                              p.op(q));
                }
            }
        }
    }
}

TEST(BasisChange, RotatesXAndYOntoZ)
{
    // Measuring in the rotated basis must reproduce the direct
    // expectation for every term of the group.
    PauliSum h(2);
    h.add(1.0, "XY");
    h.add(1.0, "XI");
    h.add(1.0, "IY");
    const auto groups = groupQubitWise(h);
    ASSERT_EQ(groups.size(), 1u);

    Rng rng(3);
    Circuit prep(2);
    prep.ry(0, 0.7).rx(1, -1.1).cx(0, 1).rz(0, 0.4);
    Statevector st(2);
    st.run(prep);

    Statevector rotated = st;
    rotated.run(basisChangeCircuit(groups[0], 2));

    for (auto idx : groups[0].termIndices) {
        const auto &term = h.terms()[idx].pauli;
        const double direct = expectation(st, term);
        const double via_parity =
            rotated.expectationZMask(term.supportMask());
        EXPECT_NEAR(direct, via_parity, 1e-10) << term.label();
    }
}

TEST(BasisChange, ZBasisNeedsNoGates)
{
    MeasurementGroup g;
    g.basis = {PauliOp::Z, PauliOp::I};
    const Circuit c = basisChangeCircuit(g, 2);
    EXPECT_EQ(c.size(), 0u);
}

TEST(BasisChange, WidthMismatchThrows)
{
    MeasurementGroup g;
    g.basis = {PauliOp::Z};
    EXPECT_THROW(basisChangeCircuit(g, 2), std::invalid_argument);
}

} // namespace
} // namespace qismet
