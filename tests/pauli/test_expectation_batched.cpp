/**
 * @file
 * Differential battery for the batched single-sweep expectation
 * engine: batched vs legacy term-by-term must agree **bit for bit**
 * (DESIGN.md §16) — on random states and sums with forced xmask
 * collisions, with SIMD on and off, serial and blocked, at 1/2/4/8
 * threads, for Statevector and DensityMatrix, through the
 * EnergyEstimator paths, and on cache hits vs misses.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "ansatz/real_amplitudes.hpp"
#include "common/block_partition.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"
#include "hamiltonian/tfim.hpp"
#include "noise/machine_model.hpp"
#include "pauli/expectation.hpp"
#include "pauli/expectation_plan.hpp"
#include "vqe/energy_estimator.hpp"

namespace qismet {
namespace {

/** Restore the batched-engine switch on scope exit. */
class BatchedGuard
{
  public:
    BatchedGuard() : saved_(batchedExpectationEnabled()) {}
    ~BatchedGuard() { setBatchedExpectationEnabled(saved_); }

  private:
    bool saved_;
};

/** Restore the effective SIMD switch on scope exit. */
class SimdGuard
{
  public:
    SimdGuard() : saved_(simdEnabled()) {}
    ~SimdGuard() { setSimdEnabled(saved_); }

  private:
    bool saved_;
};

/** Restore the default parallel threshold on scope exit. */
class ThresholdGuard
{
  public:
    ~ThresholdGuard() { setIntraStateParallelThreshold(0); }
};

/** Restore the global executor's thread count on scope exit. */
class GlobalThreadsGuard
{
  public:
    GlobalThreadsGuard() : saved_(ParallelExecutor::global().threads()) {}
    ~GlobalThreadsGuard() { ParallelExecutor::global().setThreads(saved_); }

  private:
    std::size_t saved_;
};

std::uint64_t
bits(double x)
{
    return std::bit_cast<std::uint64_t>(x);
}

Statevector
randomState(int num_qubits, Rng &rng)
{
    std::vector<Complex> amps(std::size_t{1} << num_qubits);
    for (auto &a : amps)
        a = Complex(rng.normal(), rng.normal());
    Statevector st(std::move(amps));
    st.normalize();
    return st;
}

/**
 * Random sum biased toward xmask collisions: Z-type terms (all share
 * xmask 0), XX/YY pairs on the same qubit pair, fully random strings,
 * and an identity term.
 */
PauliSum
collidingSum(int num_qubits, int num_terms, Rng &rng)
{
    const char ops[] = {'I', 'X', 'Y', 'Z'};
    const auto n = static_cast<std::size_t>(num_qubits);
    PauliSum h(num_qubits);
    h.add(rng.normal(), std::string(n, 'I'));
    for (int t = 1; t < num_terms; ++t) {
        std::string label(n, 'I');
        switch (rng.uniformInt(4)) {
          case 0: // Z-type: xmask 0
            for (auto &c : label)
                if (rng.uniform() < 0.5)
                    c = 'Z';
            break;
          case 1: { // XX on a random pair
            const std::size_t q = rng.uniformInt(n - 1);
            label[q] = label[q + 1] = 'X';
            break;
          }
          case 2: { // YY on a random pair (same xmask as the XX case)
            const std::size_t q = rng.uniformInt(n - 1);
            label[q] = label[q + 1] = 'Y';
            break;
          }
          default:
            for (auto &c : label)
                c = ops[rng.uniformInt(4)];
            break;
        }
        h.add(rng.normal(), label);
    }
    return h;
}

double
legacyEval(const Statevector &st, const PauliSum &h)
{
    setBatchedExpectationEnabled(false);
    return expectation(st, h);
}

double
batchedEval(const Statevector &st, const PauliSum &h)
{
    setBatchedExpectationEnabled(true);
    return expectation(st, h);
}

TEST(BatchedExpectation, BitIdenticalAcrossSimdAndPartitioning)
{
    BatchedGuard batched_guard;
    SimdGuard simd_guard;
    ThresholdGuard threshold_guard;
    Rng rng(31337);

    for (int n = 2; n <= 10; ++n) {
        const Statevector st = randomState(n, rng);
        const PauliSum h = collidingSum(n, 24, rng);
        // Threshold 1 forces the 16-block partition even on tiny
        // states; 0 restores the default serial-below-1024 behavior.
        for (std::size_t threshold : {std::size_t{0}, std::size_t{1}}) {
            setIntraStateParallelThreshold(threshold);
            for (bool simd : {false, true}) {
                setSimdEnabled(simd);
                const double legacy = legacyEval(st, h);
                const double fast = batchedEval(st, h);
                EXPECT_EQ(bits(legacy), bits(fast))
                    << "n=" << n << " threshold=" << threshold
                    << " simd=" << simd << " legacy=" << legacy
                    << " batched=" << fast;
            }
        }
    }
}

TEST(BatchedExpectation, BitIdenticalAcrossThreadCounts)
{
    BatchedGuard batched_guard;
    SimdGuard simd_guard;
    ThresholdGuard threshold_guard;
    GlobalThreadsGuard threads_guard;
    Rng rng(90210);

    const Statevector st = randomState(9, rng);
    const PauliSum h = collidingSum(9, 30, rng);
    setIntraStateParallelThreshold(1); // force the blocked partition
    setBatchedExpectationEnabled(true);

    for (bool simd : {false, true}) {
        setSimdEnabled(simd);
        ParallelExecutor::global().setThreads(1);
        const double reference = expectation(st, h);
        for (std::size_t threads : {2u, 4u, 8u}) {
            ParallelExecutor::global().setThreads(threads);
            const double value = expectation(st, h);
            EXPECT_EQ(bits(reference), bits(value))
                << "simd=" << simd << " threads=" << threads;
        }
    }
}

TEST(BatchedExpectation, DensityMatrixBitIdentical)
{
    BatchedGuard batched_guard;
    Rng rng(555);
    for (int n = 2; n <= 6; ++n) {
        const Statevector psi = randomState(n, rng);
        const DensityMatrix rho(psi);
        const PauliSum h = collidingSum(n, 20, rng);
        setBatchedExpectationEnabled(false);
        const double legacy = expectation(rho, h);
        setBatchedExpectationEnabled(true);
        const double fast = expectation(rho, h);
        EXPECT_EQ(bits(legacy), bits(fast)) << "n=" << n;
    }
}

TEST(BatchedExpectation, PlanTermExpectationsMatchPerStringLegacy)
{
    BatchedGuard batched_guard;
    SimdGuard simd_guard;
    ThresholdGuard threshold_guard;
    Rng rng(4711);

    const Statevector st = randomState(8, rng);
    const PauliSum h = collidingSum(8, 25, rng);
    const ExpectationPlan plan(h);

    for (std::size_t threshold : {std::size_t{0}, std::size_t{1}}) {
        setIntraStateParallelThreshold(threshold);
        for (bool simd : {false, true}) {
            setSimdEnabled(simd);
            std::vector<double> sums(h.numTerms(), 0.0);
            plan.termExpectations(st, sums.data());
            for (std::size_t k = 0; k < h.numTerms(); ++k) {
                const double legacy =
                    expectation(st, h.terms()[k].pauli);
                EXPECT_EQ(bits(legacy), bits(sums[k]))
                    << "term " << k << " threshold=" << threshold
                    << " simd=" << simd;
            }
        }
    }
}

TEST(BatchedExpectation, CacheHitBitIdenticalToMiss)
{
    BatchedGuard batched_guard;
    Rng rng(808);
    const Statevector st = randomState(7, rng);
    const PauliSum h = collidingSum(7, 22, rng);

    ExpectationPlanCache cache;
    const auto miss = cache.acquire(h);
    const double from_miss = miss->evaluate(st);
    const auto hit = cache.acquire(h);
    const double from_hit = hit->evaluate(st);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(bits(from_miss), bits(from_hit));
    // A freshly compiled plan agrees too (plans are pure functions).
    EXPECT_EQ(bits(from_miss), bits(ExpectationPlan(h).evaluate(st)));
}

TEST(BatchedExpectation, WidthMismatchStillThrows)
{
    BatchedGuard batched_guard;
    setBatchedExpectationEnabled(true);
    PauliSum h(3);
    h.add(1.0, "ZZZ");
    Statevector st(2);
    EXPECT_THROW(expectation(st, h), std::invalid_argument);
    const ExpectationPlan plan(h);
    EXPECT_THROW(plan.evaluate(st), std::invalid_argument);
}

struct EstimatorFixture
{
    EstimatorFixture()
        : hamiltonian(tfimHamiltonian({.numQubits = 5})),
          ansatz(RealAmplitudes(5, 2).build()),
          noise(machineModel("guadalupe").staticModel())
    {
    }

    PauliSum hamiltonian;
    Circuit ansatz;
    StaticNoiseModel noise;

    std::vector<double> theta() const
    {
        std::vector<double> t(
            static_cast<std::size_t>(ansatz.numParams()));
        Rng rng(99);
        for (auto &x : t)
            x = rng.uniform(-1.0, 1.0);
        return t;
    }
};

TEST(BatchedExpectation, EstimatorIdealAndAnalyticBitIdentical)
{
    BatchedGuard batched_guard;
    EstimatorFixture f;
    EstimatorConfig cfg;
    cfg.mode = EstimatorMode::Analytic;
    const EnergyEstimator est(f.hamiltonian, f.ansatz, f.noise, cfg);
    const auto theta = f.theta();

    setBatchedExpectationEnabled(false);
    const double ideal_legacy = est.idealEnergy(theta);
    Rng rng_a(42);
    const double analytic_legacy = est.estimate(theta, 0.3, rng_a);

    setBatchedExpectationEnabled(true);
    const double ideal_fast = est.idealEnergy(theta);
    Rng rng_b(42);
    const double analytic_fast = est.estimate(theta, 0.3, rng_b);

    EXPECT_EQ(bits(ideal_legacy), bits(ideal_fast));
    EXPECT_EQ(bits(analytic_legacy), bits(analytic_fast));
}

TEST(BatchedExpectation, EstimatorSamplingBitIdentical)
{
    BatchedGuard batched_guard;
    EstimatorFixture f;
    EstimatorConfig cfg;
    cfg.mode = EstimatorMode::Sampling;
    cfg.shots = 256;
    const EnergyEstimator est(f.hamiltonian, f.ansatz, f.noise, cfg);
    const auto theta = f.theta();

    setBatchedExpectationEnabled(false);
    Rng rng_a(7);
    const double legacy = est.estimate(theta, 0.2, rng_a);
    setBatchedExpectationEnabled(true);
    Rng rng_b(7);
    const double fast = est.estimate(theta, 0.2, rng_b);
    EXPECT_EQ(bits(legacy), bits(fast));
}

TEST(BatchedExpectation, EstimatorsSharingACacheShareThePlan)
{
    EstimatorFixture f;
    ExpectationPlanCache cache;
    EstimatorConfig cfg;
    cfg.mode = EstimatorMode::Analytic;
    cfg.planCache = &cache;
    cfg.planCacheTenant = 11;

    const EnergyEstimator a(f.hamiltonian, f.ansatz, f.noise, cfg);
    const EnergyEstimator b(f.hamiltonian, f.ansatz, f.noise, cfg);
    EXPECT_EQ(a.plan().get(), b.plan().get());
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);

    // A different tenant on the same cache compiles its own plan.
    cfg.planCacheTenant = 12;
    const EnergyEstimator c(f.hamiltonian, f.ansatz, f.noise, cfg);
    EXPECT_NE(a.plan().get(), c.plan().get());
    EXPECT_EQ(cache.misses(), 2u);
}

} // namespace
} // namespace qismet
