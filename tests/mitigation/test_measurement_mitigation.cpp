/** @file Tests for tensored measurement-error mitigation. */

#include <gtest/gtest.h>

#include <cmath>

#include "mitigation/measurement_mitigation.hpp"

namespace qismet {
namespace {

TEST(Mitigation, IdentityMitigatorIsNoOp)
{
    MeasurementMitigator m(2);
    const std::vector<double> p = {0.1, 0.2, 0.3, 0.4};
    const auto out = m.mitigateProbabilities(p);
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_NEAR(out[i], p[i], 1e-12);
}

TEST(Mitigation, ConfusionMatrixFromReadout)
{
    MeasurementMitigator m(1, {ReadoutError{0.1, 0.2}});
    const auto &a = m.confusion(0);
    EXPECT_DOUBLE_EQ(a[0][0], 0.9);  // P(read 0 | true 0)
    EXPECT_DOUBLE_EQ(a[1][0], 0.1);  // P(read 1 | true 0)
    EXPECT_DOUBLE_EQ(a[0][1], 0.2);  // P(read 0 | true 1)
    EXPECT_DOUBLE_EQ(a[1][1], 0.8);
}

TEST(Mitigation, InvertsExactlyDistortedDistribution)
{
    // Apply the confusion matrix analytically, then mitigate: must
    // recover the original distribution exactly.
    const std::vector<ReadoutError> ro = {ReadoutError{0.08, 0.15},
                                          ReadoutError{0.03, 0.25}};
    MeasurementMitigator m(2, ro);

    const std::vector<double> truth = {0.5, 0.1, 0.15, 0.25};
    // Distort: for each qubit axis apply [[1-p10, p01],[p10, 1-p01]].
    std::vector<double> measured = truth;
    for (int q = 0; q < 2; ++q) {
        const std::size_t stride = std::size_t{1} << q;
        std::vector<double> next = measured;
        for (std::size_t base = 0; base < 4; base += 2 * stride)
            for (std::size_t off = 0; off < stride; ++off) {
                const std::size_t i0 = base + off;
                const std::size_t i1 = i0 + stride;
                next[i0] = (1 - ro[q].p10) * measured[i0] +
                           ro[q].p01 * measured[i1];
                next[i1] = ro[q].p10 * measured[i0] +
                           (1 - ro[q].p01) * measured[i1];
            }
        measured = next;
    }

    const auto recovered = m.mitigateProbabilities(measured);
    for (std::size_t i = 0; i < truth.size(); ++i)
        EXPECT_NEAR(recovered[i], truth[i], 1e-12);
}

TEST(Mitigation, StatisticalRecoveryThroughSampler)
{
    const std::vector<ReadoutError> ro = {ReadoutError{0.05, 0.12},
                                          ReadoutError{0.04, 0.10}};
    ShotSampler sampler(ro);
    MeasurementMitigator m(2, ro);

    const std::vector<double> truth = {0.6, 0.0, 0.1, 0.3};
    Rng rng(13);
    const Counts counts = sampler.sample(truth, 2, 200000, rng);

    const auto mitigated = m.mitigateCounts(counts);
    for (std::size_t i = 0; i < truth.size(); ++i)
        EXPECT_NEAR(mitigated[i], truth[i], 0.01);
}

TEST(Mitigation, CalibrationRecoversRates)
{
    const std::vector<ReadoutError> ro = {ReadoutError{0.07, 0.20},
                                          ReadoutError{0.02, 0.09}};
    ShotSampler sampler(ro);
    Rng rng(17);
    const auto m = MeasurementMitigator::calibrate(2, sampler, 100000, rng);
    EXPECT_NEAR(m.confusion(0)[1][0], 0.07, 0.01);
    EXPECT_NEAR(m.confusion(0)[0][1], 0.20, 0.01);
    EXPECT_NEAR(m.confusion(1)[1][0], 0.02, 0.01);
    EXPECT_NEAR(m.confusion(1)[0][1], 0.09, 0.01);
}

TEST(Mitigation, ClipToPhysicalNormalizes)
{
    const auto out =
        MeasurementMitigator::clipToPhysical({0.5, -0.1, 0.7, -0.1});
    double sum = 0.0;
    for (double x : out) {
        EXPECT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(Mitigation, ClipRejectsAllZero)
{
    EXPECT_THROW(MeasurementMitigator::clipToPhysical({-1.0, -2.0}),
                 std::runtime_error);
}

TEST(Mitigation, Validation)
{
    EXPECT_THROW(MeasurementMitigator(0), std::invalid_argument);
    EXPECT_THROW(MeasurementMitigator(2, {ReadoutError{}}),
                 std::invalid_argument);
    MeasurementMitigator m(2);
    EXPECT_THROW(m.mitigateProbabilities({0.5, 0.5}),
                 std::invalid_argument);
    EXPECT_THROW(m.confusion(2), std::out_of_range);

    ShotSampler sampler;
    Rng rng(1);
    EXPECT_THROW(MeasurementMitigator::calibrate(1, sampler, 0, rng),
                 std::invalid_argument);
}

TEST(Mitigation, SingularConfusionRejected)
{
    // p10 = p01 = 0.5 makes the confusion matrix singular.
    EXPECT_THROW(MeasurementMitigator(1, {ReadoutError{0.5, 0.5}}),
                 std::runtime_error);
}

} // namespace
} // namespace qismet
