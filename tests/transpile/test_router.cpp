/** @file Tests for SWAP routing, including unitary-equivalence checks. */

#include <gtest/gtest.h>

#include <cmath>

#include "ansatz/real_amplitudes.hpp"
#include "circuit/metrics.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"
#include "transpile/router.hpp"

namespace qismet {
namespace {

Circuit
randomCircuit(int num_qubits, int num_gates, Rng &rng)
{
    Circuit c(num_qubits);
    for (int i = 0; i < num_gates; ++i) {
        const int q = static_cast<int>(rng.uniformInt(num_qubits));
        switch (rng.uniformInt(4)) {
          case 0: c.h(q); break;
          case 1: c.ry(q, rng.uniform(-3.0, 3.0)); break;
          case 2: c.rz(q, rng.uniform(-3.0, 3.0)); break;
          default: {
            int q2 = static_cast<int>(rng.uniformInt(num_qubits));
            if (q2 == q)
                q2 = (q + 1) % num_qubits;
            c.cx(q, q2);
          }
        }
    }
    return c;
}

/**
 * Check that the routed circuit implements the original one up to the
 * reported output permutation: simulate both and compare probability
 * distributions after un-permuting the physical outcome bits.
 */
void
expectEquivalent(const Circuit &original, const RoutingResult &routed,
                 const std::vector<double> &params = {})
{
    Statevector logical(original.numQubits());
    logical.run(original, params);

    Statevector physical(routed.circuit.numQubits());
    physical.run(routed.circuit, params);

    const auto p_logical = logical.probabilities();
    const auto p_physical = physical.probabilities();

    std::vector<double> p_unrouted(p_logical.size(), 0.0);
    for (std::size_t i = 0; i < p_physical.size(); ++i) {
        if (p_physical[i] < 1e-15)
            continue;
        const std::uint64_t l = routed.toLogical(i);
        ASSERT_LT(l, p_unrouted.size());
        p_unrouted[l] += p_physical[i];
    }
    for (std::size_t i = 0; i < p_logical.size(); ++i)
        EXPECT_NEAR(p_unrouted[i], p_logical[i], 1e-10);
}

TEST(Router, ConnectedGatesPassThrough)
{
    Circuit c(3);
    c.h(0).cx(0, 1).cx(1, 2);
    const auto routed = routeCircuit(c, CouplingMap::linear(3));
    EXPECT_EQ(routed.swapsInserted, 0);
    EXPECT_EQ(routed.circuit.size(), c.size());
    EXPECT_EQ(routed.finalLayout, (std::vector<int>{0, 1, 2}));
}

TEST(Router, InsertsSwapForDistantPair)
{
    Circuit c(3);
    c.cx(0, 2); // distance 2 on a line
    const auto routed = routeCircuit(c, CouplingMap::linear(3));
    EXPECT_EQ(routed.swapsInserted, 1);
    expectEquivalent(c, routed);
}

TEST(Router, Validation)
{
    Circuit c(4);
    EXPECT_THROW(routeCircuit(c, CouplingMap::linear(3)),
                 std::invalid_argument);
    const CouplingMap disconnected(4, {{0, 1}, {2, 3}});
    EXPECT_THROW(routeCircuit(c, disconnected), std::invalid_argument);
}

class RouterEquivalenceTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RouterEquivalenceTest, RandomCircuitsOnLinearMap)
{
    Rng rng(GetParam());
    const Circuit c = randomCircuit(4, 25, rng);
    const auto routed = routeCircuit(c, CouplingMap::linear(4));
    expectEquivalent(c, routed);
}

TEST_P(RouterEquivalenceTest, RandomCircuitsOnIbm7qH)
{
    Rng rng(GetParam() * 31 + 7);
    const Circuit c = randomCircuit(6, 25, rng);
    const auto routed = routeCircuit(c, CouplingMap::ibm7qH());
    EXPECT_EQ(routed.circuit.numQubits(), 7);
    expectEquivalent(c, routed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Router, PreservesParameters)
{
    const RealAmplitudes ansatz(6, 2);
    const Circuit c = ansatz.build();
    const auto routed = routeCircuit(c, CouplingMap::ibm7qH());
    EXPECT_EQ(routed.circuit.numParams(), c.numParams());

    Rng rng(3);
    const auto theta = ansatz.randomInitialPoint(rng);
    expectEquivalent(c, routed, theta);
}

TEST(Router, HLatticeCostsMoreThanLine)
{
    // The linear-entanglement ansatz is native on a line but needs
    // SWAPs on the 7q H lattice — the concrete reason the small
    // machines run deeper circuits (Section 3.2).
    const RealAmplitudes ansatz(6, 4);
    const Circuit c = ansatz.build();

    const auto on_line = routeCircuit(c, CouplingMap::linear(6));
    const auto on_h = routeCircuit(c, CouplingMap::ibm7qH());
    EXPECT_EQ(on_line.swapsInserted, 0);
    EXPECT_GT(on_h.swapsInserted, 0);
    EXPECT_GT(computeMetrics(on_h.circuit).twoQubitGates,
              computeMetrics(on_line.circuit).twoQubitGates);
}

TEST(RoutingResult, ToLogicalPermutesBits)
{
    RoutingResult r;
    r.finalLayout = {2, 0, 1}; // logical0->phys2, logical1->phys0, ...
    // physical outcome 0b100 means phys2 = 1 -> logical 0 = 1.
    EXPECT_EQ(r.toLogical(0b100), 0b001u);
    EXPECT_EQ(r.toLogical(0b001), 0b010u);
    EXPECT_EQ(r.toLogical(0b010), 0b100u);
}

} // namespace
} // namespace qismet
