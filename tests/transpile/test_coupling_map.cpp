/** @file Tests for device coupling maps. */

#include <gtest/gtest.h>

#include "transpile/coupling_map.hpp"

namespace qismet {
namespace {

TEST(CouplingMap, Validation)
{
    EXPECT_THROW(CouplingMap(0, {}), std::invalid_argument);
    EXPECT_THROW(CouplingMap(3, {{0, 3}}), std::invalid_argument);
    EXPECT_THROW(CouplingMap(3, {{1, 1}}), std::invalid_argument);
}

TEST(CouplingMap, DeduplicatesEdges)
{
    const CouplingMap m(3, {{0, 1}, {1, 0}, {0, 1}});
    EXPECT_EQ(m.edges().size(), 1u);
}

TEST(CouplingMap, LinearChain)
{
    const CouplingMap m = CouplingMap::linear(5);
    EXPECT_TRUE(m.connected(0, 1));
    EXPECT_TRUE(m.connected(3, 4));
    EXPECT_FALSE(m.connected(0, 2));
    EXPECT_EQ(m.distance(0, 4), 4);
    EXPECT_TRUE(m.isConnected());
}

TEST(CouplingMap, RingWrapsAround)
{
    const CouplingMap m = CouplingMap::ring(6);
    EXPECT_TRUE(m.connected(5, 0));
    EXPECT_EQ(m.distance(0, 3), 3);
    EXPECT_EQ(m.distance(0, 5), 1);
}

TEST(CouplingMap, Ibm7qHStructure)
{
    const CouplingMap m = CouplingMap::ibm7qH();
    EXPECT_EQ(m.numQubits(), 7);
    EXPECT_EQ(m.edges().size(), 6u);
    EXPECT_TRUE(m.connected(1, 3));
    EXPECT_FALSE(m.connected(2, 3));
    EXPECT_EQ(m.distance(0, 6), 4); // 0-1-3-5-6
    EXPECT_TRUE(m.isConnected());
}

TEST(CouplingMap, ShortestPathEndpoints)
{
    const CouplingMap m = CouplingMap::ibm7qH();
    const auto path = m.shortestPath(2, 4);
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), 2);
    EXPECT_EQ(path.back(), 4);
    // Consecutive hops must be coupled.
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_TRUE(m.connected(path[i], path[i + 1]));
}

TEST(CouplingMap, PathToSelf)
{
    const CouplingMap m = CouplingMap::linear(4);
    EXPECT_EQ(m.shortestPath(2, 2), std::vector<int>{2});
    EXPECT_EQ(m.distance(2, 2), 0);
}

TEST(CouplingMap, DisconnectedGraphDetected)
{
    const CouplingMap m(4, {{0, 1}, {2, 3}});
    EXPECT_FALSE(m.isConnected());
    EXPECT_EQ(m.distance(0, 3), -1);
    EXPECT_TRUE(m.shortestPath(0, 3).empty());
}

TEST(CouplingMap, MachineFactory)
{
    EXPECT_EQ(CouplingMap::forMachine("jakarta", 7).edges().size(), 6u);
    EXPECT_EQ(CouplingMap::forMachine("Casablanca", 7).numQubits(), 7);
    // Falcons come back as linear chains of the requested size.
    const CouplingMap toronto = CouplingMap::forMachine("toronto", 27);
    EXPECT_EQ(toronto.numQubits(), 27);
    EXPECT_EQ(toronto.edges().size(), 26u);
}

} // namespace
} // namespace qismet
