/**
 * @file
 * Corruption-handling tests for the durability layer: the journal
 * scanner, the snapshot loader and CheckpointManager recovery must fail
 * closed on every malformed input — bit-flipped frames, truncated
 * tails, bad version headers, zero-length files — with a diagnostic,
 * never a crash and never a silent misparse.
 *
 * The fuzz cases are seeded and deterministic. Their invariant: a scan
 * of a tampered journal either throws JournalError, or returns frames
 * that are an exact prefix of the original frame sequence (torn-tail
 * recovery). Returning altered or reordered content is the one
 * forbidden outcome — a 64-bit FNV-1a collision is the only way past
 * it.
 */

#include "persist/checkpoint.hpp"
#include "persist/journal.hpp"
#include "persist/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/atomic_file.hpp"
#include "common/rng.hpp"
#include "fault/crash_point.hpp"

#include "common/scratch_dir.hpp"

namespace qismet {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // The pid suffix keeps the per-test ctest entry and the
        // whole-binary <label>.suite entry (which run the same test
        // concurrently under `ctest --preset all -j`) off each
        // other's directories.
        dir_ = test::scratchDirForCurrentTest("qismet_journal");
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    fs::path dir_;
};

constexpr std::uint64_t kDigest = 0x1122334455667788ull;

JournalJobRecord sampleJob(std::uint64_t i)
{
    JournalJobRecord rec;
    rec.jobIndex = i;
    rec.evalIndex = static_cast<std::int64_t>(i / 2);
    rec.retryIndex = static_cast<std::int64_t>(i % 3);
    rec.transientIntensity = 0.25 * static_cast<double>(i);
    rec.eMeasured = -1.1 - static_cast<double>(i);
    rec.accepted = (i % 2) == 0;
    rec.status = static_cast<std::uint8_t>(i % 4);
    rec.carriedForward = (i % 5) == 0;
    rec.shotFraction = 1.0 - 0.01 * static_cast<double>(i);
    rec.transientEstimate = 0.5 / (1.0 + static_cast<double>(i));
    rec.hasReference = (i % 3) == 0;
    rec.eReference = -0.9 * static_cast<double>(i);
    rec.point = {0.1 * static_cast<double>(i), -2.0,
                 static_cast<double>(i)};
    return rec;
}

/** Write a small journal and return the original bytes. */
std::string writeSampleJournal(const std::string &path,
                               std::size_t jobs = 6)
{
    JournalWriter writer(path, kDigest, DurableFile::Mode::Truncate);
    for (std::size_t i = 0; i < jobs; ++i) {
        writer.appendJob(sampleJob(i));
        if (i % 2 == 1) {
            JournalIterationRecord it;
            it.iteration = i / 2;
            it.eReported = -1.5 - static_cast<double>(i);
            it.moveAccepted = i % 4 == 1;
            writer.appendIteration(it);
        }
    }
    return readFile(path);
}

// ---- round trip ----------------------------------------------------------

TEST_F(JournalTest, RoundTripsJobAndIterationFrames)
{
    const std::string p = path("journal.qjnl");
    writeSampleJournal(p);

    const JournalScanResult scan = scanJournal(p);
    EXPECT_EQ(scan.configDigest, kDigest);
    EXPECT_FALSE(scan.tornTail);
    ASSERT_EQ(scan.frames.size(), 9u); // 6 jobs + 3 iterations

    Decoder dec(scan.frames[0].payload);
    const JournalJobRecord job = JournalJobRecord::decode(dec);
    const JournalJobRecord want = sampleJob(0);
    EXPECT_EQ(job.jobIndex, want.jobIndex);
    EXPECT_EQ(job.evalIndex, want.evalIndex);
    EXPECT_EQ(job.status, want.status);
    EXPECT_EQ(job.point, want.point);
    EXPECT_DOUBLE_EQ(job.eMeasured, want.eMeasured);

    ASSERT_EQ(scan.frames[2].type, JournalFrameType::Iteration);
    Decoder itDec(scan.frames[2].payload);
    const JournalIterationRecord it =
        JournalIterationRecord::decode(itDec);
    EXPECT_EQ(it.iteration, 0u);
    EXPECT_TRUE(scan.cleanOffset == scan.frames.back().endOffset);
}

TEST_F(JournalTest, AppendModeResumesAtRecoveredOffset)
{
    const std::string p = path("journal.qjnl");
    writeSampleJournal(p, 4);
    const JournalScanResult before = scanJournal(p);

    // Resume after frame 2, dropping everything later, and append one
    // fresh frame.
    JournalWriter writer(p, kDigest, DurableFile::Mode::Append,
                         before.frames[1].endOffset, 2);
    EXPECT_EQ(writer.frames(), 2u);
    writer.appendJob(sampleJob(99));

    const JournalScanResult after = scanJournal(p);
    ASSERT_EQ(after.frames.size(), 3u);
    EXPECT_EQ(after.frames[0].payload, before.frames[0].payload);
    EXPECT_EQ(after.frames[1].payload, before.frames[1].payload);
    Decoder dec(after.frames[2].payload);
    EXPECT_EQ(JournalJobRecord::decode(dec).jobIndex, 99u);
}

// ---- structural corruption: fail closed ----------------------------------

TEST_F(JournalTest, ZeroLengthFileIsAnError)
{
    const std::string p = path("journal.qjnl");
    atomicWriteFile(p, "");
    EXPECT_THROW((void)scanJournal(p), JournalError);
}

TEST_F(JournalTest, MissingFileIsAnError)
{
    EXPECT_THROW((void)scanJournal(path("absent.qjnl")), FileError);
}

TEST_F(JournalTest, ShortHeaderIsAnError)
{
    const std::string p = path("journal.qjnl");
    const std::string full = encodeJournalHeader(kDigest);
    for (std::size_t cut = 1; cut < full.size(); ++cut) {
        atomicWriteFile(p, std::string_view(full).substr(0, cut));
        EXPECT_THROW((void)scanJournal(p), JournalError) << "cut=" << cut;
    }
}

TEST_F(JournalTest, BadMagicIsAnError)
{
    const std::string p = path("journal.qjnl");
    std::string bytes = writeSampleJournal(p);
    bytes[0] = 'X';
    atomicWriteFile(p, bytes);
    EXPECT_THROW((void)scanJournal(p), JournalError);
}

TEST_F(JournalTest, UnsupportedVersionIsAnError)
{
    const std::string p = path("journal.qjnl");
    std::string bytes = writeSampleJournal(p);
    bytes[4] = static_cast<char>(kJournalVersion + 1);
    // Recompute nothing: even with a valid checksum over the altered
    // header the version gate must reject first, so patch the stored
    // checksum to match the tampered prefix.
    const std::uint64_t sum =
        fnv1a64(std::string_view(bytes).substr(0, 16));
    for (std::size_t i = 0; i < 8; ++i)
        bytes[16 + i] = static_cast<char>((sum >> (8 * i)) & 0xFF);
    atomicWriteFile(p, bytes);
    EXPECT_THROW((void)scanJournal(p), JournalError);
}

TEST_F(JournalTest, InvalidFrameTypeIsAnError)
{
    const std::string p = path("journal.qjnl");
    std::string bytes = writeSampleJournal(p);
    bytes[kJournalHeaderSize] = '\x7e'; // neither Job nor Iteration
    atomicWriteFile(p, bytes);
    EXPECT_THROW((void)scanJournal(p), JournalError);
}

TEST_F(JournalTest, ImplausibleFrameLengthIsAnError)
{
    const std::string p = path("journal.qjnl");
    std::string bytes = writeSampleJournal(p);
    // Frame length field: 4 bytes starting after the type byte.
    for (std::size_t i = 1; i <= 4; ++i)
        bytes[kJournalHeaderSize + i] = '\xff';
    atomicWriteFile(p, bytes);
    EXPECT_THROW((void)scanJournal(p), JournalError);
}

TEST_F(JournalTest, ChecksumBadFrameWithDataAfterIsAnError)
{
    const std::string p = path("journal.qjnl");
    std::string bytes = writeSampleJournal(p);
    const JournalScanResult scan = scanJournal(p);
    // Flip a payload byte of the FIRST frame: valid frames follow, so
    // this cannot be a torn append and must be rejected outright.
    bytes[kJournalHeaderSize + 6] =
        static_cast<char>(bytes[kJournalHeaderSize + 6] ^ 0x01);
    atomicWriteFile(p, bytes);
    ASSERT_GT(scan.frames.size(), 1u);
    EXPECT_THROW((void)scanJournal(p), JournalError);
}

// ---- torn tails: recover the durable prefix ------------------------------

TEST_F(JournalTest, EveryTruncationYieldsCleanPrefixOrHeaderError)
{
    const std::string p = path("journal.qjnl");
    const std::string bytes = writeSampleJournal(p, 4);
    const JournalScanResult original = scanJournal(p);

    for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
        atomicWriteFile(p, std::string_view(bytes).substr(0, cut));
        if (cut < kJournalHeaderSize) {
            EXPECT_THROW((void)scanJournal(p), JournalError)
                << "cut=" << cut;
            continue;
        }
        JournalScanResult scan;
        ASSERT_NO_THROW(scan = scanJournal(p)) << "cut=" << cut;
        // The recovered frames must be the exact durable prefix.
        std::size_t whole = 0;
        while (whole < original.frames.size() &&
               original.frames[whole].endOffset <= cut)
            ++whole;
        EXPECT_EQ(scan.frames.size(), whole) << "cut=" << cut;
        for (std::size_t i = 0; i < whole; ++i)
            EXPECT_EQ(scan.frames[i].payload,
                      original.frames[i].payload);
        const bool atBoundary =
            cut == kJournalHeaderSize ||
            (whole > 0 && original.frames[whole - 1].endOffset == cut);
        EXPECT_EQ(scan.tornTail, !atBoundary) << "cut=" << cut;
        if (scan.tornTail) {
            EXPECT_FALSE(scan.diagnostic.empty());
            EXPECT_GT(scan.droppedBytes, 0u);
        }
        EXPECT_EQ(scan.cleanOffset,
                  whole == 0 ? kJournalHeaderSize
                             : original.frames[whole - 1].endOffset);
    }
}

TEST_F(JournalTest, TornWriteCrashPointLeavesRecoverableJournal)
{
    const std::string p = path("journal.qjnl");
    bool crashed = false;
    try {
        JournalWriter writer(p, kDigest, DurableFile::Mode::Truncate);
        CrashPointGuard guard(kCrashJournalTornWrite, 3);
        for (std::uint64_t i = 0; i < 10; ++i)
            writer.appendJob(sampleJob(i));
    }
    catch (const SimulatedCrash &crash) {
        crashed = true;
        EXPECT_EQ(crash.point(), kCrashJournalTornWrite);
    }
    ASSERT_TRUE(crashed);

    const JournalScanResult scan = scanJournal(p);
    EXPECT_TRUE(scan.tornTail);
    EXPECT_FALSE(scan.diagnostic.empty());
    ASSERT_EQ(scan.frames.size(), 2u); // two durable, third torn mid-write
    for (std::size_t i = 0; i < scan.frames.size(); ++i) {
        Decoder dec(scan.frames[i].payload);
        EXPECT_EQ(JournalJobRecord::decode(dec).jobIndex, i);
    }
}

// ---- seeded fuzz ---------------------------------------------------------

TEST_F(JournalTest, BitFlipFuzzNeverMisparses)
{
    const std::string p = path("journal.qjnl");
    const std::string bytes = writeSampleJournal(p);
    const JournalScanResult original = scanJournal(p);

    Rng rng(20260807);
    for (int trial = 0; trial < 400; ++trial) {
        std::string mutated = bytes;
        const std::uint64_t flips = 1 + rng.uniformInt(4);
        for (std::uint64_t f = 0; f < flips; ++f) {
            const std::uint64_t at = rng.uniformInt(mutated.size());
            mutated[at] = static_cast<char>(
                mutated[at] ^ (1u << rng.uniformInt(8)));
        }
        if (mutated == bytes)
            continue;
        atomicWriteFile(p, mutated);
        try {
            const JournalScanResult scan = scanJournal(p);
            // Accepted: then it must be a prefix of the true content.
            ASSERT_LE(scan.frames.size(), original.frames.size())
                << "trial " << trial;
            for (std::size_t i = 0; i < scan.frames.size(); ++i) {
                ASSERT_EQ(scan.frames[i].type, original.frames[i].type)
                    << "trial " << trial << " frame " << i;
                ASSERT_EQ(scan.frames[i].payload,
                          original.frames[i].payload)
                    << "trial " << trial << " frame " << i;
            }
            // Losing frames without noticing is forbidden: a shorter
            // parse must be flagged as torn.
            if (scan.frames.size() < original.frames.size()) {
                EXPECT_TRUE(scan.tornTail) << "trial " << trial;
            }
        }
        catch (const JournalError &) {
            // Fail closed: always acceptable.
        }
    }
}

TEST_F(JournalTest, TruncateAndFlipFuzzNeverMisparses)
{
    const std::string p = path("journal.qjnl");
    const std::string bytes = writeSampleJournal(p);
    const JournalScanResult original = scanJournal(p);

    Rng rng(777);
    for (int trial = 0; trial < 200; ++trial) {
        const std::uint64_t cut =
            kJournalHeaderSize +
            rng.uniformInt(bytes.size() - kJournalHeaderSize);
        std::string mutated = bytes.substr(0, cut);
        if (!mutated.empty() && rng.bernoulli(0.5)) {
            const std::uint64_t at = rng.uniformInt(mutated.size());
            mutated[at] = static_cast<char>(
                mutated[at] ^ (1u << rng.uniformInt(8)));
        }
        atomicWriteFile(p, mutated);
        try {
            const JournalScanResult scan = scanJournal(p);
            ASSERT_LE(scan.frames.size(), original.frames.size());
            for (std::size_t i = 0; i < scan.frames.size(); ++i)
                ASSERT_EQ(scan.frames[i].payload,
                          original.frames[i].payload)
                    << "trial " << trial << " frame " << i;
        }
        catch (const JournalError &) {
        }
    }
}

// ---- snapshot files ------------------------------------------------------

RunSnapshot sampleSnapshot()
{
    RunSnapshot snap;
    snap.configDigest = kDigest;
    snap.journalFrames = 9;
    snap.journalOffset = 4321;
    snap.iteration = 17;
    snap.evalIndex = 35;
    snap.theta = {0.25, -1.5, 3.75};
    snap.prevPoint = {0.2, -1.4, 3.8};
    snap.havePrev = true;
    snap.ePrev = -1.0625;
    snap.haveIterPrev = true;
    snap.eIterPrev = -1.03125;
    snap.jobsUsed = 40;
    snap.retriesUsed = 5;
    snap.rejections = 2;
    snap.faultsSeen = 3;
    snap.faultRetries = 1;
    snap.evalsCarriedForward = 1;
    snap.simTimeSeconds = 41.5;
    snap.backoffSeconds = 1.5;
    Rng rng(5);
    (void)rng.normal(); // populate the spare-normal cache
    snap.optimizerRng = rng.saveState();
    snap.executorJobs = 40;
    snap.executorCircuits = 1234;
    snap.policyState = std::string("policy\x01\x02", 8);
    snap.optimizerState = std::string("optim\x00\x03", 7);
    return snap;
}

TEST_F(JournalTest, SnapshotRoundTripsBitExactly)
{
    const std::string p = path("snapshot.qsnp");
    const RunSnapshot snap = sampleSnapshot();
    saveSnapshotFile(p, snap);
    const RunSnapshot back = loadSnapshotFile(p);

    EXPECT_EQ(back.configDigest, snap.configDigest);
    EXPECT_EQ(back.journalFrames, snap.journalFrames);
    EXPECT_EQ(back.journalOffset, snap.journalOffset);
    EXPECT_EQ(back.iteration, snap.iteration);
    EXPECT_EQ(back.evalIndex, snap.evalIndex);
    EXPECT_EQ(back.theta, snap.theta);
    EXPECT_EQ(back.prevPoint, snap.prevPoint);
    EXPECT_EQ(back.havePrev, snap.havePrev);
    EXPECT_DOUBLE_EQ(back.ePrev, snap.ePrev);
    EXPECT_EQ(back.jobsUsed, snap.jobsUsed);
    EXPECT_EQ(back.evalsCarriedForward, snap.evalsCarriedForward);
    EXPECT_EQ(back.optimizerRng.engine, snap.optimizerRng.engine);
    EXPECT_EQ(back.optimizerRng.hasSpareNormal,
              snap.optimizerRng.hasSpareNormal);
    EXPECT_DOUBLE_EQ(back.optimizerRng.spareNormal,
                     snap.optimizerRng.spareNormal);
    EXPECT_EQ(back.executorJobs, snap.executorJobs);
    EXPECT_EQ(back.executorCircuits, snap.executorCircuits);
    EXPECT_EQ(back.policyState, snap.policyState);
    EXPECT_EQ(back.optimizerState, snap.optimizerState);

    // The restored RNG must continue the stream identically.
    Rng a(5);
    (void)a.normal();
    Rng b(1);
    b.restoreState(back.optimizerRng);
    for (int i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(a.normal(), b.normal());
}

TEST_F(JournalTest, SnapshotEveryBitFlipFailsClosed)
{
    const std::string p = path("snapshot.qsnp");
    saveSnapshotFile(p, sampleSnapshot());
    const std::string bytes = readFile(p);

    // Every byte of the file is covered by a structural check or the
    // payload checksum, so every single-bit flip must be rejected.
    for (std::size_t at = 0; at < bytes.size(); ++at) {
        std::string mutated = bytes;
        mutated[at] = static_cast<char>(mutated[at] ^ 0x10);
        atomicWriteFile(p, mutated);
        EXPECT_THROW((void)loadSnapshotFile(p), SnapshotError)
            << "byte " << at;
    }
}

TEST_F(JournalTest, SnapshotTruncationsFailClosed)
{
    const std::string p = path("snapshot.qsnp");
    saveSnapshotFile(p, sampleSnapshot());
    const std::string bytes = readFile(p);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        atomicWriteFile(p, std::string_view(bytes).substr(0, cut));
        EXPECT_THROW((void)loadSnapshotFile(p), SnapshotError)
            << "cut=" << cut;
    }
    EXPECT_THROW((void)loadSnapshotFile(path("absent.qsnp")),
                 SnapshotError);
}

// ---- CheckpointManager recovery ------------------------------------------

TEST_F(JournalTest, CheckpointRejectsEmptyDirectory)
{
    EXPECT_THROW(CheckpointManager({}, kDigest), CheckpointError);
}

TEST_F(JournalTest, FreshAndVirginDirectoriesRecoverToNothing)
{
    CheckpointConfig cfg;
    cfg.dir = path("ckpt");
    cfg.resume = false;
    CheckpointManager fresh(cfg, kDigest);
    EXPECT_FALSE(fresh.recover().has_value());

    cfg.resume = true;
    CheckpointManager virgin(cfg, kDigest);
    EXPECT_FALSE(virgin.recover().has_value());
}

TEST_F(JournalTest, JournalWithoutSnapshotRestartsWithDiagnostic)
{
    CheckpointConfig cfg;
    cfg.dir = path("ckpt");
    cfg.resume = true;
    CheckpointManager mgr(cfg, kDigest);
    writeSampleJournal(mgr.journalPath(), 2);
    EXPECT_FALSE(mgr.recover().has_value());
    EXPECT_NE(mgr.diagnostics().find("no snapshot"), std::string::npos);
}

TEST_F(JournalTest, SnapshotWithoutJournalRefusesToResume)
{
    CheckpointConfig cfg;
    cfg.dir = path("ckpt");
    cfg.resume = true;
    CheckpointManager mgr(cfg, kDigest);
    saveSnapshotFile(mgr.snapshotPath(), sampleSnapshot());
    EXPECT_THROW((void)mgr.recover(), CheckpointError);
}

TEST_F(JournalTest, DigestMismatchRefusesToResume)
{
    CheckpointConfig cfg;
    cfg.dir = path("ckpt");
    cfg.resume = false;
    {
        CheckpointManager writer(cfg, kDigest);
        writer.beginFresh();
        writer.appendJob(sampleJob(0));
        RunSnapshot snap = sampleSnapshot();
        writer.writeSnapshot(snap);
    }
    cfg.resume = true;
    CheckpointManager other(cfg, kDigest + 1);
    EXPECT_THROW((void)other.recover(), CheckpointError);
}

TEST_F(JournalTest, JournalShorterThanSnapshotClaimsIsAnError)
{
    CheckpointConfig cfg;
    cfg.dir = path("ckpt");
    cfg.resume = true;
    CheckpointManager mgr(cfg, kDigest);
    writeSampleJournal(mgr.journalPath(), 1); // 1 frame on disk
    RunSnapshot snap = sampleSnapshot();      // claims 9 frames
    saveSnapshotFile(mgr.snapshotPath(), snap);
    EXPECT_THROW((void)mgr.recover(), CheckpointError);
}

TEST_F(JournalTest, RecoveryReplaysPrefixAndTruncatesTail)
{
    CheckpointConfig cfg;
    cfg.dir = path("ckpt");
    cfg.resume = false;
    std::uint64_t snapFrames = 0;
    {
        CheckpointManager writer(cfg, kDigest);
        writer.beginFresh();
        for (std::uint64_t i = 0; i < 3; ++i)
            writer.appendJob(sampleJob(i));
        RunSnapshot snap;
        snap.iteration = 1;
        snap.theta = {1.0, 2.0};
        writer.writeSnapshot(snap);
        snapFrames = writer.journalFrames();
        // Two more frames past the snapshot: discarded on recovery.
        writer.appendJob(sampleJob(3));
        writer.appendJob(sampleJob(4));
    }

    cfg.resume = true;
    CheckpointManager resumer(cfg, kDigest);
    const auto recovered = resumer.recover();
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->snapshot.iteration, 1u);
    EXPECT_EQ(recovered->snapshot.theta,
              (std::vector<double>{1.0, 2.0}));
    EXPECT_EQ(recovered->snapshot.journalFrames, snapFrames);
    EXPECT_EQ(recovered->frames.size(), snapFrames);
    EXPECT_NE(resumer.diagnostics().find("discarding 2"),
              std::string::npos);

    resumer.beginResumed(*recovered);
    resumer.appendJob(sampleJob(77));

    // The truncated journal now holds exactly the snapshot prefix plus
    // the new frame.
    const JournalScanResult scan = scanJournal(resumer.journalPath());
    ASSERT_EQ(scan.frames.size(), snapFrames + 1);
    EXPECT_FALSE(scan.tornTail);
    Decoder dec(scan.frames.back().payload);
    EXPECT_EQ(JournalJobRecord::decode(dec).jobIndex, 77u);
}

TEST_F(JournalTest, RecoveryDropsTornTailPastSnapshot)
{
    CheckpointConfig cfg;
    cfg.dir = path("ckpt");
    cfg.resume = false;
    {
        CheckpointManager writer(cfg, kDigest);
        writer.beginFresh();
        writer.appendJob(sampleJob(0));
        writer.writeSnapshot(RunSnapshot{});
        writer.appendJob(sampleJob(1));
    }
    // Tear the final frame by hand.
    const std::string jpath = path("ckpt") + "/journal.qjnl";
    const std::string bytes = readFile(jpath);
    atomicWriteFile(jpath,
                    std::string_view(bytes).substr(0, bytes.size() - 3));

    cfg.resume = true;
    CheckpointManager resumer(cfg, kDigest);
    const auto recovered = resumer.recover();
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->frames.size(), 1u);
    EXPECT_NE(resumer.diagnostics().find("torn tail"),
              std::string::npos);
}

} // namespace
} // namespace qismet
