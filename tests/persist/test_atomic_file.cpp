/**
 * @file
 * Unit tests for the atomic-file layer: FNV-1a vectors, whole-file
 * atomic replacement, and the append-only DurableFile used by the run
 * journal.
 */

#include "common/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include <unistd.h>

#include "common/scratch_dir.hpp"

namespace qismet {
namespace {

namespace fs = std::filesystem;

/** Fresh scratch directory per test, cleaned up on fixture teardown. */
class AtomicFileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = test::scratchDirForCurrentTest("qismet_atomic_file");
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    fs::path dir_;
};

TEST(Fnv1a, MatchesReferenceVectors)
{
    // Standard 64-bit FNV-1a test vectors.
    EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8Cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171F73967E8ull);
}

TEST(Fnv1a, SeedChainsAcrossCalls)
{
    // Hashing in two chunks with seed chaining equals one-shot hashing.
    const std::string text = "write-ahead journal";
    const std::uint64_t once = fnv1a64(text);
    const std::uint64_t chained =
        fnv1a64(text.substr(5), fnv1a64(text.substr(0, 5)));
    EXPECT_EQ(chained, once);
}

TEST_F(AtomicFileTest, WriteReadRoundTrip)
{
    const std::string p = path("blob.bin");
    std::string payload("binary\0payload", 14);
    payload += '\x7f';
    atomicWriteFile(p, payload);
    EXPECT_TRUE(fileExists(p));
    EXPECT_EQ(readFile(p), payload);
}

TEST_F(AtomicFileTest, ReplacesExistingFileCompletely)
{
    const std::string p = path("replace.bin");
    atomicWriteFile(p, std::string(4096, 'A'));
    atomicWriteFile(p, "short");
    EXPECT_EQ(readFile(p), "short");
}

TEST_F(AtomicFileTest, LeavesNoTempFileBehind)
{
    const std::string p = path("clean.bin");
    atomicWriteFile(p, "data");
    EXPECT_FALSE(fileExists(p + ".tmp"));
    std::size_t entries = 0;
    for (const auto &entry : fs::directory_iterator(dir_)) {
        (void)entry;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
}

TEST_F(AtomicFileTest, ReadFileThrowsOnMissingPath)
{
    EXPECT_THROW((void)readFile(path("nope.bin")), FileError);
    EXPECT_FALSE(fileExists(path("nope.bin")));
}

TEST_F(AtomicFileTest, AtomicWriteThrowsOnBadDirectory)
{
    EXPECT_THROW(atomicWriteFile(path("no/such/dir/x.bin"), "data"),
                 FileError);
}

TEST_F(AtomicFileTest, DurableFileAppendsAndTracksOffset)
{
    const std::string p = path("journal.bin");
    {
        DurableFile file(p, DurableFile::Mode::Truncate);
        EXPECT_EQ(file.offset(), 0u);
        file.append("alpha");
        file.append("beta");
        file.sync();
        EXPECT_EQ(file.offset(), 9u);
    }
    EXPECT_EQ(readFile(p), "alphabeta");
}

TEST_F(AtomicFileTest, DurableFileAppendModeContinuesAtEnd)
{
    const std::string p = path("journal.bin");
    {
        DurableFile file(p, DurableFile::Mode::Truncate);
        file.append("prefix|");
    }
    {
        DurableFile file(p, DurableFile::Mode::Append);
        EXPECT_EQ(file.offset(), 7u);
        file.append("suffix");
    }
    EXPECT_EQ(readFile(p), "prefix|suffix");
}

TEST_F(AtomicFileTest, DurableFileTruncateToDropsTail)
{
    const std::string p = path("journal.bin");
    DurableFile file(p, DurableFile::Mode::Truncate);
    file.append("keep-this-torn-tail");
    file.truncateTo(9);
    EXPECT_EQ(file.offset(), 9u);
    file.append("!");
    file.sync();
    EXPECT_EQ(readFile(p), "keep-this!");
}

TEST_F(AtomicFileTest, DurableFileTruncateModeEmptiesExistingFile)
{
    const std::string p = path("journal.bin");
    atomicWriteFile(p, "old contents");
    DurableFile file(p, DurableFile::Mode::Truncate);
    EXPECT_EQ(file.offset(), 0u);
    file.append("new");
    file.sync();
    EXPECT_EQ(readFile(p), "new");
}

} // namespace
} // namespace qismet
