/**
 * @file
 * Unit tests for the checkpoint serializer: bit-exact round trips and
 * fail-closed decoding of truncated or hostile buffers.
 */

#include "common/serial.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace qismet {
namespace {

std::uint64_t doubleBits(double v)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

TEST(Serial, RoundTripsEveryFieldType)
{
    const std::string blob("opaque\0blob", 11); // embedded NUL survives
    Encoder enc;
    enc.writeU8(0xAB);
    enc.writeU32(0xDEADBEEFu);
    enc.writeU64(0x0123456789ABCDEFull);
    enc.writeI64(-42);
    enc.writeF64(-0.1);
    enc.writeBool(true);
    enc.writeBool(false);
    enc.writeVecF64({1.5, -2.25, 0.0});
    enc.writeString(blob);

    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.readU8(), 0xAB);
    EXPECT_EQ(dec.readU32(), 0xDEADBEEFu);
    EXPECT_EQ(dec.readU64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(dec.readI64(), -42);
    EXPECT_EQ(doubleBits(dec.readF64()), doubleBits(-0.1));
    EXPECT_TRUE(dec.readBool());
    EXPECT_FALSE(dec.readBool());
    EXPECT_EQ(dec.readVecF64(), (std::vector<double>{1.5, -2.25, 0.0}));
    EXPECT_EQ(dec.readString(), blob);
    EXPECT_TRUE(dec.atEnd());
}

TEST(Serial, DoublesRoundTripBitExactly)
{
    // The crash-resume contract is bit identity, so the serializer must
    // preserve every IEEE-754 payload including signed zero, denormals,
    // infinities and NaN bit patterns.
    const double cases[] = {
        0.0,
        -0.0,
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
        0.1,
        -1.0 / 3.0,
        1e308,
        -2.2793949905318796,
    };
    for (double v : cases) {
        Encoder enc;
        enc.writeF64(v);
        Decoder dec(enc.bytes());
        EXPECT_EQ(doubleBits(dec.readF64()), doubleBits(v));
    }
}

TEST(Serial, IntegersAreLittleEndianFixedWidth)
{
    Encoder enc;
    enc.writeU32(0x01020304u);
    const std::string &b = enc.bytes();
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(static_cast<unsigned char>(b[0]), 0x04);
    EXPECT_EQ(static_cast<unsigned char>(b[1]), 0x03);
    EXPECT_EQ(static_cast<unsigned char>(b[2]), 0x02);
    EXPECT_EQ(static_cast<unsigned char>(b[3]), 0x01);
}

TEST(Serial, ThrowsOnTruncatedReads)
{
    Encoder enc;
    enc.writeU64(7);
    const std::string &bytes = enc.bytes();
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        Decoder dec(std::string_view(bytes).substr(0, cut));
        EXPECT_THROW((void)dec.readU64(), SerialError) << "cut=" << cut;
    }
}

TEST(Serial, ThrowsOnHostileVectorCount)
{
    // A corrupt count prefix must not trigger a huge allocation or an
    // overflowing size computation.
    Encoder enc;
    enc.writeU64(std::numeric_limits<std::uint64_t>::max());
    enc.writeF64(1.0);
    Decoder dec(enc.bytes());
    EXPECT_THROW((void)dec.readVecF64(), SerialError);

    Encoder enc2;
    enc2.writeU64((std::numeric_limits<std::uint64_t>::max() / 8) + 1);
    Decoder dec2(enc2.bytes());
    EXPECT_THROW((void)dec2.readVecF64(), SerialError);
}

TEST(Serial, ThrowsOnHostileStringLength)
{
    Encoder enc;
    enc.writeU64(1u << 20);
    enc.writeU8('x');
    Decoder dec(enc.bytes());
    EXPECT_THROW((void)dec.readString(), SerialError);
}

TEST(Serial, RemainingAndAtEndTrackPosition)
{
    Encoder enc;
    enc.writeU32(1);
    enc.writeU32(2);
    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.remaining(), 8u);
    EXPECT_FALSE(dec.atEnd());
    (void)dec.readU32();
    EXPECT_EQ(dec.remaining(), 4u);
    (void)dec.readU32();
    EXPECT_TRUE(dec.atEnd());
}

} // namespace
} // namespace qismet
