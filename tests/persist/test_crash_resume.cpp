/**
 * @file
 * Crash-resume recovery suite (ctest label `recovery`): kills the VQE
 * driver at randomized iteration boundaries, mid-journal-write and just
 * before snapshot publication, resumes from the checkpoint directory,
 * and requires the recovered trajectory to be *bit-identical* to an
 * uninterrupted straight-through run — per-job records, per-iteration
 * energies, final estimate and every resilience counter — at 1, 2, 4
 * and 8 worker threads.
 *
 * Crashes are simulated through the fault layer's crash points
 * (CrashPointGuard + SimulatedCrash), which die after the journal's
 * write-ahead fsync semantics have done whatever a real SIGKILL would
 * have allowed them to do — including a deliberately torn half-frame
 * for the mid-write case.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "apps/applications.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/qismet_vqe.hpp"
#include "fault/crash_point.hpp"
#include "hamiltonian/h2_molecule.hpp"
#include "noise/machine_model.hpp"
#include "persist/checkpoint.hpp"

#include "common/scratch_dir.hpp"

namespace qismet {
namespace {

namespace fs = std::filesystem;

class GlobalThreadsGuard
{
  public:
    GlobalThreadsGuard() : saved_(ParallelExecutor::global().threads()) {}
    ~GlobalThreadsGuard() { ParallelExecutor::setGlobalThreads(saved_); }

  private:
    std::size_t saved_;
};

/** Bit-exact hex image of a double, for checksum-stable CSV cells. */
std::string bits(double value)
{
    std::uint64_t u = 0;
    std::memcpy(&u, &value, sizeof(u));
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(u));
    return std::string(buf);
}

/**
 * Render a run as CSV (golden-trace layout plus every resilience
 * counter — the counters are what the carry-forward regression pins)
 * and return its FNV-1a digest.
 */
std::string trajectoryDigest(const VqeRunResult &run)
{
    std::string csv =
        "job,eval,retry,status,accepted,carried,e_measured,tau\n";
    for (const VqeJobRecord &rec : run.history) {
        csv += std::to_string(rec.jobIndex) + ',' +
               std::to_string(rec.evalIndex) + ',' +
               std::to_string(rec.retryIndex) + ',' +
               jobStatusName(rec.status) + ',' +
               (rec.accepted ? '1' : '0') + ',' +
               (rec.carriedForward ? '1' : '0') + ',' +
               bits(rec.eMeasured) + ',' + bits(rec.transientIntensity) +
               '\n';
    }
    csv += "iteration,e_reported\n";
    for (std::size_t i = 0; i < run.iterationEnergies.size(); ++i)
        csv += std::to_string(i) + ',' + bits(run.iterationEnergies[i]) +
               '\n';
    csv += "theta";
    for (const double t : run.finalTheta)
        csv += ',' + bits(t);
    csv += "\ncounters," + std::to_string(run.jobsUsed) + ',' +
           std::to_string(run.retriesUsed) + ',' +
           std::to_string(run.rejections) + ',' +
           std::to_string(run.faultsSeen) + ',' +
           std::to_string(run.faultRetries) + ',' +
           std::to_string(run.evalsCarriedForward) + ',' +
           bits(run.simTimeSeconds) + ',' + bits(run.backoffSeconds) +
           '\n';
    csv += "final," + bits(run.finalEstimate) + '\n';

    std::uint64_t hash = 0xCBF29CE484222325ull;
    for (const char c : csv) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001B3ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return std::string(buf);
}

/** H2 VQE at the golden operating point (shortened job budget). */
struct H2Scenario
{
    H2Problem problem = h2Problem(0.735);
    QismetVqe runner{problem.hamiltonian,
                     makeAnsatz("SU2", 4, 3)->build(),
                     machineModel("guadalupe"), problem.fciEnergy};

    QismetVqeConfig config() const
    {
        QismetVqeConfig cfg;
        cfg.totalJobs = 120;
        cfg.seed = 11;
        cfg.scheme = Scheme::Qismet;
        return cfg;
    }
};

/** TFIM application 1 under a mixed fault load (recovery paths live). */
struct TfimScenario
{
    Application app = application(1);
    QismetVqe runner = app.makeRunner();

    QismetVqeConfig config() const
    {
        QismetVqeConfig cfg;
        cfg.totalJobs = 120;
        cfg.seed = 23;
        cfg.scheme = Scheme::Qismet;
        cfg.faults.timeoutRate = 0.02;
        cfg.faults.errorRate = 0.01;
        cfg.faults.partialRate = 0.02;
        cfg.faults.referenceLossRate = 0.01;
        cfg.faults.burstCoupling = 1.0;
        return cfg;
    }
};

std::string freshDir(const std::string &name)
{
    return test::scratchDir("qismet_resume_" + name, false).string();
}

/** One planned simulated crash. */
struct CrashPlan
{
    const char *point;
    int countdown;
};

/**
 * Run with checkpointing, crashing per `plan`; returns true when the
 * run died at the armed point (false = it finished first).
 */
template <typename Runner>
bool runUntilCrash(const Runner &runner, QismetVqeConfig cfg,
                   const CrashPlan &plan)
{
    CrashPointGuard guard(plan.point, plan.countdown);
    try {
        (void)runner.run(cfg);
    }
    catch (const SimulatedCrash &crash) {
        EXPECT_EQ(crash.point(), plan.point);
        return true;
    }
    return false;
}

/**
 * Kill-and-resume: execute the crash plans in order against one
 * checkpoint directory, then finish the run cleanly and return it.
 */
template <typename Runner>
QismetVqeResult killAndResume(const Runner &runner, QismetVqeConfig cfg,
                              const std::string &dir,
                              const std::vector<CrashPlan> &plans,
                              int *crashes_fired = nullptr)
{
    cfg.checkpointDir = dir;
    cfg.resume = true;
    int fired = 0;
    for (const CrashPlan &plan : plans)
        fired += runUntilCrash(runner, cfg, plan) ? 1 : 0;
    if (crashes_fired != nullptr)
        *crashes_fired = fired;
    return runner.run(cfg);
}

template <typename Scenario>
void expectBitIdenticalAcrossKills(const char *name,
                                   const std::vector<CrashPlan> &plans)
{
    GlobalThreadsGuard threadsGuard;
    const Scenario scenario;

    ParallelExecutor::setGlobalThreads(1);
    const QismetVqeResult straight =
        scenario.runner.run(scenario.config());
    const std::string want = trajectoryDigest(straight.run);

    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        ParallelExecutor::setGlobalThreads(threads);
        const std::string dir = freshDir(
            std::string(name) + "_t" + std::to_string(threads));
        int fired = 0;
        const QismetVqeResult resumed = killAndResume(
            scenario.runner, scenario.config(), dir, plans, &fired);
        EXPECT_GT(fired, 0)
            << name << ": no crash fired — plans never exercised resume";
        EXPECT_EQ(trajectoryDigest(resumed.run), want)
            << name << " at " << threads
            << " threads: resumed trajectory diverged from the "
               "straight-through run";
        EXPECT_DOUBLE_EQ(resumed.run.finalEstimate,
                         straight.run.finalEstimate);
        fs::remove_all(dir);
    }
}

TEST(CrashResume, H2KillsAtRandomIterationBoundaries)
{
    // Randomized (seeded) boundary kills, three crash-resume cycles
    // before the final clean leg.
    Rng rng(101);
    std::vector<CrashPlan> plans;
    for (int i = 0; i < 3; ++i)
        plans.push_back({kCrashIterationBoundary,
                         2 + static_cast<int>(rng.uniformInt(8))});
    expectBitIdenticalAcrossKills<H2Scenario>("h2_boundary", plans);
}

TEST(CrashResume, TfimWithFaultsKillsAtRandomIterationBoundaries)
{
    Rng rng(202);
    std::vector<CrashPlan> plans;
    for (int i = 0; i < 3; ++i)
        plans.push_back({kCrashIterationBoundary,
                         2 + static_cast<int>(rng.uniformInt(8))});
    expectBitIdenticalAcrossKills<TfimScenario>("tfim_boundary", plans);
}

TEST(CrashResume, TornJournalWriteRecoversBitIdentically)
{
    // Die halfway through a journal append (a torn frame lands on
    // disk), then again right before a snapshot replace.
    const std::vector<CrashPlan> plans = {
        {kCrashJournalTornWrite, 25},
        {kCrashBeforeSnapshot, 6},
    };
    expectBitIdenticalAcrossKills<TfimScenario>("tfim_torn", plans);
}

TEST(CrashResume, H2TornWriteAndSnapshotCrash)
{
    const std::vector<CrashPlan> plans = {
        {kCrashJournalTornWrite, 40},
        {kCrashBeforeSnapshot, 3},
    };
    expectBitIdenticalAcrossKills<H2Scenario>("h2_torn", plans);
}

TEST(CrashResume, SparseSnapshotCadenceStillBitIdentical)
{
    // Snapshots every 3 iterations: a boundary kill loses up to two
    // journaled iterations past the snapshot, which recovery discards
    // and re-executes deterministically.
    GlobalThreadsGuard threadsGuard;
    const TfimScenario scenario;

    ParallelExecutor::setGlobalThreads(1);
    QismetVqeConfig cfg = scenario.config();
    cfg.snapshotEveryIters = 3;
    const QismetVqeResult straight = scenario.runner.run(cfg);
    const std::string want = trajectoryDigest(straight.run);

    for (const std::size_t threads : {1u, 4u}) {
        ParallelExecutor::setGlobalThreads(threads);
        const std::string dir =
            freshDir("cadence_t" + std::to_string(threads));
        const QismetVqeResult resumed = killAndResume(
            scenario.runner, cfg, dir,
            {{kCrashIterationBoundary, 5},
             {kCrashIterationBoundary, 4}});
        EXPECT_EQ(trajectoryDigest(resumed.run), want)
            << "cadence-3 resume diverged at " << threads << " threads";
        fs::remove_all(dir);
    }
}

TEST(CrashResume, SurvivesAKillAtEveryIterationBoundary)
{
    // Walk the whole run one iteration at a time: crash on the second
    // boundary hit after every resume until the run outlives the
    // countdown, then finish cleanly. This drags the recovery path
    // across every iteration boundary the run has, including ones
    // immediately after carried-forward (past-budget) evaluations.
    GlobalThreadsGuard threadsGuard;
    ParallelExecutor::setGlobalThreads(4);

    const TfimScenario scenario;
    QismetVqeConfig cfg = scenario.config();
    // Harsher fleet: frequent faults and a tiny retry budget make
    // carried-forward evaluations common instead of rare.
    cfg.faults.timeoutRate = 0.25;
    cfg.faults.errorRate = 0.12;
    cfg.retryBudget = 1;
    cfg.totalJobs = 90;

    const QismetVqeResult straight = scenario.runner.run(cfg);
    EXPECT_GT(straight.run.evalsCarriedForward, 0u)
        << "fault load too mild: carry-forward path not exercised";

    cfg.checkpointDir = freshDir("every_boundary");
    cfg.resume = true;
    int resumes = 0;
    QismetVqeResult final_result;
    for (;; ++resumes) {
        ASSERT_LT(resumes, 300) << "crash-resume loop did not converge";
        if (!runUntilCrash(scenario.runner, cfg,
                           {kCrashIterationBoundary, 2})) {
            final_result = scenario.runner.run(cfg);
            break;
        }
    }
    EXPECT_GT(resumes, 3);

    // Satellite contract: counters — including skipped/carried-forward
    // bookkeeping and retry-budget state — match the straight run
    // exactly, not just the energies.
    EXPECT_EQ(trajectoryDigest(final_result.run),
              trajectoryDigest(straight.run));
    EXPECT_EQ(final_result.run.evalsCarriedForward,
              straight.run.evalsCarriedForward);
    EXPECT_EQ(final_result.run.faultRetries, straight.run.faultRetries);
    EXPECT_EQ(final_result.run.retriesUsed, straight.run.retriesUsed);
    EXPECT_EQ(final_result.run.jobsUsed, straight.run.jobsUsed);
    EXPECT_EQ(final_result.run.faultsSeen, straight.run.faultsSeen);
    EXPECT_DOUBLE_EQ(final_result.run.backoffSeconds,
                     straight.run.backoffSeconds);
    fs::remove_all(cfg.checkpointDir);
}

TEST(CrashResume, ResumingACompletedRunReplaysItExactly)
{
    GlobalThreadsGuard threadsGuard;
    ParallelExecutor::setGlobalThreads(2);

    const H2Scenario scenario;
    QismetVqeConfig cfg = scenario.config();
    const QismetVqeResult straight = scenario.runner.run(cfg);

    cfg.checkpointDir = freshDir("completed");
    cfg.resume = true;
    const QismetVqeResult first = scenario.runner.run(cfg);
    const QismetVqeResult replay = scenario.runner.run(cfg);

    EXPECT_EQ(trajectoryDigest(first.run),
              trajectoryDigest(straight.run));
    EXPECT_EQ(trajectoryDigest(replay.run),
              trajectoryDigest(straight.run));
    fs::remove_all(cfg.checkpointDir);
}

TEST(CrashResume, ResumeUnderDifferentConfigIsRejected)
{
    GlobalThreadsGuard threadsGuard;
    ParallelExecutor::setGlobalThreads(1);

    const H2Scenario scenario;
    QismetVqeConfig cfg = scenario.config();
    cfg.checkpointDir = freshDir("config_gate");
    cfg.resume = true;
    EXPECT_TRUE(runUntilCrash(scenario.runner, cfg,
                              {kCrashIterationBoundary, 4}));

    QismetVqeConfig other = cfg;
    other.seed = 12; // different trajectory: digest must not match
    EXPECT_THROW((void)scenario.runner.run(other), CheckpointError);
    fs::remove_all(cfg.checkpointDir);
}

} // namespace
} // namespace qismet
