/**
 * @file
 * Regression tests for the stream-allocation convention
 * (src/common/rng.hpp, StreamDomain): tenant job IDs and intra-run
 * streams derived via deriveStreamSeed / Rng::splitStream must never
 * collide under adversarial ID patterns — the patterns that DO alias
 * hand-rolled packings like `splitAt(tenant * 1000 + run)` or affine
 * `seed * K + C` offsets.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace qismet {
namespace {

/** First few raw draws of a stream, as a comparable fingerprint. */
std::vector<std::uint64_t>
fingerprint(Rng rng, int draws = 4)
{
    std::vector<std::uint64_t> out;
    out.reserve(static_cast<std::size_t>(draws));
    for (int i = 0; i < draws; ++i)
        out.push_back(rng.engine()());
    return out;
}

/**
 * The motivating failure: packing (tenant, run) into one splitAt index
 * with a hand-rolled stride aliases distinct ID pairs exactly.
 */
TEST(RngStreams, HandRolledPackingCollides)
{
    const Rng root(12345);
    // tenant 1 / run 0 vs tenant 0 / run 1000 under a *1000 packing.
    const Rng a = root.splitAt(1 * 1000 + 0);
    const Rng b = root.splitAt(0 * 1000 + 1000);
    EXPECT_EQ(fingerprint(a), fingerprint(b))
        << "if this stops colliding the packing below needs a new "
           "adversarial example";
}

/** Affine offsets in two components can be aliased by solving x*A+B=y*C+D. */
TEST(RngStreams, AffineSeedOffsetsCollide)
{
    // seed * 3 + 5 (component A) vs seed * 7 + 12 (component B):
    // seeds 9 and (9*3+5-12)/7 = 20/7... pick a constructed pair instead:
    // A(seed=13) = 44; B(seed=4) = 40; A(seed=16)=53... use A(x)=B(y)
    // with x=9 -> 32, y=(32-12)/7 not integral; x=12 -> 41, y=...
    // x=47 -> 146, y=(146-12)/7 ... choose multiplers that alias easily:
    // A(x) = x*4+8, B(y) = y*2+2 -> A(10)=48, B(23)=48.
    const std::uint64_t a = 10 * 4 + 8;
    const std::uint64_t b = 23 * 2 + 2;
    ASSERT_EQ(a, b);
    EXPECT_EQ(fingerprint(Rng(a)), fingerprint(Rng(b)))
        << "distinct (component, id) pairs produced the same stream";
}

/**
 * deriveStreamSeed over an adversarial ID grid: linear packings,
 * golden-ratio multiples, powers of two, and dense small IDs — every
 * (domain, index) pair must get a unique seed and a unique stream.
 */
TEST(RngStreams, NoCollisionAcrossAdversarialIdPatterns)
{
    const std::uint64_t root = 0xDEADBEEFCAFEBABEull;
    std::vector<std::uint64_t> ids;
    for (std::uint64_t i = 0; i < 64; ++i)
        ids.push_back(i); // dense small IDs
    for (std::uint64_t i = 0; i < 32; ++i) {
        ids.push_back(i * 1000);                     // stride packings
        ids.push_back(i * 0x9E3779B97F4A7C15ull);    // splitAt's own step
        ids.push_back(1ull << i);                    // powers of two
        ids.push_back((1ull << i) - 1);              // all-ones prefixes
    }
    const std::vector<std::uint64_t> domains = {
        StreamDomain::kServeRun, StreamDomain::kBackend,
        StreamDomain::kBackendLease, StreamDomain::kSoakSpec,
        StreamDomain::kSoakCrashPlan};

    std::set<std::uint64_t> seen;
    std::size_t total = 0;
    for (std::uint64_t domain : domains) {
        for (std::uint64_t id : ids) {
            seen.insert(deriveStreamSeed(root, domain, id));
            ++total;
        }
    }
    // `ids` holds a few duplicate values (0 appears in several
    // patterns); count unique inputs, not raw list length.
    std::set<std::uint64_t> uniqueIds(ids.begin(), ids.end());
    EXPECT_EQ(seen.size(), uniqueIds.size() * domains.size());
    EXPECT_LE(seen.size(), total);
}

/** Same (root, domain, index) must always yield the same stream. */
TEST(RngStreams, DerivationIsDeterministic)
{
    const Rng root(7);
    const Rng a = root.splitStream(StreamDomain::kServeRun, 42);
    const Rng b = root.splitStream(StreamDomain::kServeRun, 42);
    EXPECT_EQ(fingerprint(a), fingerprint(b));
    EXPECT_EQ(deriveStreamSeed(7, 2, 3), deriveStreamSeed(7, 2, 3));
}

/** Different domains separate streams even at equal indices. */
TEST(RngStreams, DomainsSeparateStreams)
{
    const Rng root(7);
    for (std::uint64_t idx : {0ull, 1ull, 1000ull}) {
        const Rng runs = root.splitStream(StreamDomain::kServeRun, idx);
        const Rng backs = root.splitStream(StreamDomain::kBackend, idx);
        EXPECT_NE(fingerprint(runs), fingerprint(backs)) << idx;
    }
}

/** splitStream must not advance the parent (counter-based contract). */
TEST(RngStreams, SplitStreamDoesNotAdvanceParent)
{
    Rng root(99);
    const RngState before = root.saveState();
    (void)root.splitStream(StreamDomain::kServeRun, 5);
    const RngState after = root.saveState();
    EXPECT_EQ(before.engine, after.engine);
}

/**
 * Derived run seeds must not alias the affine intra-run derivations the
 * pipeline applies on top of them (executor seed = s*K+1, injector seed
 * = s*M+C): check pairwise distinctness of the whole derived family
 * over a dense serve-job grid.
 */
TEST(RngStreams, RunSeedsAndIntraRunStreamsStayDisjoint)
{
    const std::uint64_t master = 2024;
    std::set<std::uint64_t> family;
    std::size_t inserted = 0;
    for (std::uint64_t job = 0; job < 512; ++job) {
        const std::uint64_t run =
            deriveStreamSeed(master, StreamDomain::kServeRun, job);
        // The two affine intra-run offsets from core/qismet_vqe.cpp.
        const std::uint64_t executor = run * 0x5851F42Dull + 1;
        const std::uint64_t injector =
            run * 0xD1342543DE82EF95ull + 0xFA17ull;
        family.insert(run);
        family.insert(executor);
        family.insert(injector);
        inserted += 3;
    }
    EXPECT_EQ(family.size(), inserted);
}

} // namespace
} // namespace qismet
