/** @file Tests for table / sparkline rendering and CSV output. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv_writer.hpp"
#include "common/table_printer.hpp"

namespace qismet {
namespace {

TEST(TablePrinter, RendersHeaderAndRows)
{
    TablePrinter t("Caption");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1.0"});
    t.addRow("beta", {2.5}, 1);

    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Caption"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("2.5"), std::string::npos);
}

TEST(TablePrinter, RejectsWidthMismatch)
{
    TablePrinter t("x");
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Sparkline, EmptyAndConstant)
{
    EXPECT_EQ(sparkline({}), "");
    const std::string s = sparkline({1.0, 1.0, 1.0});
    EXPECT_FALSE(s.empty());
}

TEST(Sparkline, DownsamplesToWidth)
{
    std::vector<double> xs(1000);
    for (std::size_t i = 0; i < xs.size(); ++i)
        xs[i] = static_cast<double>(i);
    const std::string s = sparkline(xs, 20);
    // Each sparkline glyph is a 3-byte UTF-8 sequence.
    EXPECT_EQ(s.size(), 20u * 3u);
}

TEST(FormatDouble, Precision)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(-1.0, 0), "-1");
}

TEST(CsvWriter, WritesRows)
{
    const std::string path = "/tmp/qismet_test_csv.csv";
    {
        CsvWriter w(path, {"a", "b"});
        w.writeRow(std::vector<double>{1.5, 2.5});
        w.writeRow(std::vector<std::string>{"x", "y"});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1.5,2.5");
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWidthMismatch)
{
    const std::string path = "/tmp/qismet_test_csv2.csv";
    CsvWriter w(path, {"a", "b"});
    EXPECT_THROW(w.writeRow(std::vector<double>{1.0}),
                 std::invalid_argument);
    std::remove(path.c_str());
}

} // namespace
} // namespace qismet
