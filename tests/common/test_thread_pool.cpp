/**
 * @file
 * Tests for the fixed-size ThreadPool and the deterministic
 * ParallelExecutor fan-out layer. The stress cases double as TSan
 * targets under QISMET_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace qismet {
namespace {

/** Restores the global executor's thread count on scope exit. */
class GlobalThreadsGuard
{
  public:
    GlobalThreadsGuard() : saved_(ParallelExecutor::global().threads()) {}
    ~GlobalThreadsGuard() { ParallelExecutor::setGlobalThreads(saved_); }

  private:
    std::size_t saved_;
};

TEST(ThreadPool, RejectsZeroThreads)
{
    EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 200; ++i)
            pool.submit([&counter] {
                counter.fetch_add(1, std::memory_order_relaxed);
            });
        // Destructor drains the queue before joining.
    }
    EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, RejectsEmptyTask)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.submit({}), std::invalid_argument);
}

TEST(ThreadPool, ReportsWorkerThreadMembership)
{
    ThreadPool pool(2);
    EXPECT_FALSE(pool.onWorkerThread());
    std::atomic<bool> seen_on_worker{false};
    std::atomic<bool> done{false};
    pool.submit([&] {
        seen_on_worker.store(pool.onWorkerThread());
        done.store(true, std::memory_order_release);
    });
    while (!done.load(std::memory_order_acquire))
        std::this_thread::yield();
    EXPECT_TRUE(seen_on_worker.load());
}

TEST(ThreadPool, HardwareThreadsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ParallelExecutor, CoversEveryIndexExactlyOnce)
{
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ParallelExecutor exec(threads);
        std::vector<std::atomic<int>> hits(257);
        for (auto &h : hits)
            h.store(0);
        exec.parallelFor(hits.size(), [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelExecutor, EmptyRangeIsANoop)
{
    ParallelExecutor exec(4);
    bool touched = false;
    exec.parallelFor(0, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ParallelExecutor, ZeroThreadsMeansHardwareConcurrency)
{
    ParallelExecutor exec(0);
    EXPECT_EQ(exec.threads(), ThreadPool::hardwareThreads());
}

TEST(ParallelExecutor, MapPreservesIndexOrder)
{
    ParallelExecutor exec(8);
    const auto squares = exec.map<double>(100, [](std::size_t i) {
        return static_cast<double>(i * i);
    });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_DOUBLE_EQ(squares[i], static_cast<double>(i * i));
}

TEST(ParallelExecutor, ExceptionsPropagateToCaller)
{
    ParallelExecutor exec(4);
    EXPECT_THROW(exec.parallelFor(64,
                                  [](std::size_t i) {
                                      if (i == 13)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
}

TEST(ParallelExecutor, NestedRegionsRunInlineWithoutDeadlock)
{
    ParallelExecutor exec(2);
    std::vector<std::atomic<int>> hits(16 * 16);
    for (auto &h : hits)
        h.store(0);
    exec.parallelFor(16, [&](std::size_t outer) {
        exec.parallelFor(16, [&](std::size_t inner) {
            hits[outer * 16 + inner].fetch_add(1,
                                               std::memory_order_relaxed);
        });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelExecutor, ReusableAcrossManyRegions)
{
    // Stress for the region join logic (and a TSan workout): many small
    // regions reusing one pool.
    ParallelExecutor exec(4);
    std::atomic<long> total{0};
    for (int round = 0; round < 100; ++round)
        exec.parallelFor(17, [&](std::size_t i) {
            total.fetch_add(static_cast<long>(i),
                            std::memory_order_relaxed);
        });
    EXPECT_EQ(total.load(), 100l * (16 * 17 / 2));
}

/**
 * The determinism contract in one picture: a stochastic workload whose
 * per-task randomness comes from counter-based sub-streams produces
 * bit-identical results for every thread count.
 */
TEST(ParallelExecutor, SplitStreamsMakeStochasticWorkDeterministic)
{
    const Rng seedRng(1234);
    auto run = [&](std::size_t threads) {
        ParallelExecutor exec(threads);
        return exec.map<double>(64, [&](std::size_t i) {
            // splitAt is const and keyed only on the task index, so this
            // in-body derivation is still a pure function of (seed, i) —
            // the very property this test demonstrates.
            Rng task = seedRng.splitAt(i); // qismet-lint: allow(split-in-task)
            double acc = 0.0;
            for (int d = 0; d < 100; ++d)
                acc += task.normal();
            return acc;
        });
    };
    const auto serial = run(1);
    const auto two = run(2);
    const auto eight = run(8);
    ASSERT_EQ(serial.size(), two.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_DOUBLE_EQ(serial[i], two[i]);
        EXPECT_DOUBLE_EQ(serial[i], eight[i]);
    }
}

TEST(ParallelExecutor, GlobalIsReconfigurable)
{
    GlobalThreadsGuard guard;
    ParallelExecutor::setGlobalThreads(3);
    EXPECT_EQ(ParallelExecutor::global().threads(), 3u);
    ParallelExecutor::setGlobalThreads(1);
    EXPECT_EQ(ParallelExecutor::global().threads(), 1u);
}

} // namespace
} // namespace qismet
