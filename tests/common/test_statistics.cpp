/** @file Tests for streaming and batch statistics. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace qismet {
namespace {

TEST(RunningStats, EmptyState)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation)
{
    const std::vector<double> xs = {1.5, -2.0, 3.25, 0.0, 7.75, -1.25};
    RunningStats s;
    for (double x : xs)
        s.add(x);

    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), -2.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.75);
}

TEST(RunningStats, SingleValueHasZeroVariance)
{
    RunningStats s;
    s.add(4.2);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 4.2);
}

TEST(RunningStats, MergeEqualsCombinedStream)
{
    Rng rng(7);
    RunningStats all, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(2.0, 3.0);
        all.add(x);
        (i % 2 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Quantile, EndpointsAndMedian)
{
    std::vector<double> xs = {3.0, 1.0, 2.0, 5.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantile, LinearInterpolation)
{
    std::vector<double> xs = {0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(Quantile, Errors)
{
    EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
    EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
    EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

class QuantileMonotoneTest : public ::testing::TestWithParam<double>
{
};

TEST_P(QuantileMonotoneTest, MonotoneInP)
{
    Rng rng(13);
    std::vector<double> xs;
    for (int i = 0; i < 500; ++i)
        xs.push_back(rng.normal());
    const double p = GetParam();
    EXPECT_LE(quantile(xs, p), quantile(xs, std::min(1.0, p + 0.1)));
}

INSTANTIATE_TEST_SUITE_P(Ps, QuantileMonotoneTest,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 0.9));

TEST(MedianAbsDeviation, RobustToOutlier)
{
    std::vector<double> xs = {1.0, 1.1, 0.9, 1.05, 0.95, 100.0};
    EXPECT_LT(medianAbsDeviation(xs), 0.2);
}

TEST(MovingAverage, WindowOneIsIdentity)
{
    const std::vector<double> xs = {1.0, 4.0, -2.0};
    EXPECT_EQ(movingAverage(xs, 1), xs);
}

TEST(MovingAverage, SmoothsStep)
{
    std::vector<double> xs(10, 0.0);
    for (int i = 5; i < 10; ++i)
        xs[i] = 1.0;
    const auto ma = movingAverage(xs, 4);
    EXPECT_DOUBLE_EQ(ma[4], 0.0);
    EXPECT_DOUBLE_EQ(ma[5], 0.25);
    EXPECT_DOUBLE_EQ(ma[9], 1.0);
}

TEST(MovingAverage, RejectsZeroWindow)
{
    EXPECT_THROW(movingAverage({1.0}, 0), std::invalid_argument);
}

TEST(Pearson, PerfectCorrelation)
{
    std::vector<double> a = {1, 2, 3, 4};
    std::vector<double> b = {2, 4, 6, 8};
    EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
    std::vector<double> c = {-1, -2, -3, -4};
    EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Pearson, LengthMismatchThrows)
{
    EXPECT_THROW(pearson({1.0}, {1.0, 2.0}), std::invalid_argument);
}

} // namespace
} // namespace qismet
