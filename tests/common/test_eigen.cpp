/** @file Tests for the Jacobi eigensolver (real symmetric + Hermitian). */

#include <gtest/gtest.h>

#include <cmath>

#include "common/eigen.hpp"
#include "common/rng.hpp"

namespace qismet {
namespace {

TEST(EigRealSymmetric, DiagonalMatrix)
{
    const auto res = eigRealSymmetric({{3, 0, 0}, {0, 1, 0}, {0, 0, 2}});
    ASSERT_EQ(res.values.size(), 3u);
    EXPECT_NEAR(res.values[0], 1.0, 1e-12);
    EXPECT_NEAR(res.values[1], 2.0, 1e-12);
    EXPECT_NEAR(res.values[2], 3.0, 1e-12);
}

TEST(EigRealSymmetric, Known2x2)
{
    // [[2,1],[1,2]] -> eigenvalues 1 and 3.
    const auto res = eigRealSymmetric({{2, 1}, {1, 2}});
    EXPECT_NEAR(res.values[0], 1.0, 1e-10);
    EXPECT_NEAR(res.values[1], 3.0, 1e-10);
}

TEST(EigRealSymmetric, RejectsNonSquare)
{
    EXPECT_THROW(eigRealSymmetric({{1, 2, 3}, {4, 5, 6}}),
                 std::invalid_argument);
}

class EigRandomSymmetricTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EigRandomSymmetricTest, ResidualAndOrthogonality)
{
    const int n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) * 31 + 1);
    std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
    for (int r = 0; r < n; ++r)
        for (int c = r; c < n; ++c)
            a[r][c] = a[c][r] = rng.normal();

    const auto res = eigRealSymmetric(a);

    // Eigenvalues sorted.
    for (int i = 0; i + 1 < n; ++i)
        EXPECT_LE(res.values[i], res.values[i + 1]);

    // A v = lambda v for each column.
    for (int k = 0; k < n; ++k) {
        for (int r = 0; r < n; ++r) {
            double av = 0.0;
            for (int c = 0; c < n; ++c)
                av += a[r][c] * res.vectors(c, k).real();
            EXPECT_NEAR(av, res.values[k] * res.vectors(r, k).real(), 1e-8);
        }
    }

    // Columns orthonormal.
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) {
            double dot = 0.0;
            for (int r = 0; r < n; ++r)
                dot += res.vectors(r, i).real() * res.vectors(r, j).real();
            EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
        }

    // Trace = sum of eigenvalues.
    double tr = 0.0, sum = 0.0;
    for (int i = 0; i < n; ++i) {
        tr += a[i][i];
        sum += res.values[i];
    }
    EXPECT_NEAR(tr, sum, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigRandomSymmetricTest,
                         ::testing::Values(2, 3, 5, 8, 16, 32));

TEST(EigHermitian, PauliY)
{
    Matrix y = Matrix::fromRows(
        {{Complex(0, 0), Complex(0, -1)}, {Complex(0, 1), Complex(0, 0)}});
    const auto res = eigHermitian(y);
    EXPECT_NEAR(res.values[0], -1.0, 1e-10);
    EXPECT_NEAR(res.values[1], 1.0, 1e-10);
}

TEST(EigHermitian, RejectsNonHermitian)
{
    Matrix m = Matrix::fromRows({{0, 1}, {0, 0}});
    EXPECT_THROW(eigHermitian(m), std::invalid_argument);
}

class EigHermitianRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EigHermitianRandomTest, Residual)
{
    const int n = GetParam();
    Rng rng(static_cast<std::uint64_t>(n) * 101 + 3);
    Matrix h(n, n);
    for (int r = 0; r < n; ++r) {
        h(r, r) = Complex(rng.normal(), 0.0);
        for (int c = r + 1; c < n; ++c) {
            h(r, c) = Complex(rng.normal(), rng.normal());
            h(c, r) = std::conj(h(r, c));
        }
    }

    const auto res = eigHermitian(h);
    ASSERT_EQ(res.values.size(), static_cast<std::size_t>(n));

    for (int k = 0; k < n; ++k) {
        // ||H v - lambda v|| small and v normalized.
        double vnorm = 0.0;
        for (int r = 0; r < n; ++r)
            vnorm += std::norm(res.vectors(r, k));
        EXPECT_NEAR(vnorm, 1.0, 1e-9);

        for (int r = 0; r < n; ++r) {
            Complex hv(0, 0);
            for (int c = 0; c < n; ++c)
                hv += h(r, c) * res.vectors(c, k);
            EXPECT_NEAR(std::abs(hv - res.values[k] * res.vectors(r, k)),
                        0.0, 1e-7);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigHermitianRandomTest,
                         ::testing::Values(2, 4, 8, 16));

TEST(GroundState, MinimalEigenpair)
{
    Matrix h = Matrix::fromRows({{Complex(2, 0), Complex(0, -1)},
                                 {Complex(0, 1), Complex(2, 0)}});
    // Eigenvalues 1 and 3.
    EXPECT_NEAR(groundStateEnergy(h), 1.0, 1e-10);
    const auto v = groundStateVector(h);
    Complex hv0 = h(0, 0) * v[0] + h(0, 1) * v[1];
    EXPECT_NEAR(std::abs(hv0 - v[0]), 0.0, 1e-9);
}

TEST(EigHermitian, DegenerateSpectrum)
{
    // 2*I has a fully degenerate spectrum; vectors must stay orthonormal.
    Matrix h = Matrix::identity(4) * Complex(2.0, 0.0);
    const auto res = eigHermitian(h);
    for (double v : res.values)
        EXPECT_NEAR(v, 2.0, 1e-10);
    for (int i = 0; i < 4; ++i) {
        double norm = 0.0;
        for (int r = 0; r < 4; ++r)
            norm += std::norm(res.vectors(r, i));
        EXPECT_NEAR(norm, 1.0, 1e-9);
    }
}

} // namespace
} // namespace qismet
