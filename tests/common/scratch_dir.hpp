/**
 * @file
 * Shared per-test scratch directories. Every durability test used to
 * hand-roll the same TempDir + pid-suffix + remove_all dance; this is
 * the one copy.
 */

#ifndef QISMET_TESTS_COMMON_SCRATCH_DIR_HPP
#define QISMET_TESTS_COMMON_SCRATCH_DIR_HPP

#include <filesystem>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

namespace qismet::test {

/**
 * A fresh scratch directory under the gtest temp root, pid-suffixed so
 * a test binary and its whole-suite duplicate (<subsystem>.suite,
 * which runs the same tests concurrently under `ctest --preset all
 * -j`) cannot stomp each other's state. Any stale directory from a
 * crashed earlier run is removed first; `create` controls whether the
 * fresh directory is made (fixtures want it, schedulers make their
 * own).
 */
inline std::filesystem::path
scratchDir(const std::string &prefix, bool create = true)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) /
        (prefix + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    if (create)
        std::filesystem::create_directories(dir);
    return dir;
}

/** scratchDir() additionally keyed by the running test's own name, for
 * fixtures whose TEST_F instances must not share state. */
inline std::filesystem::path
scratchDirForCurrentTest(const std::string &prefix, bool create = true)
{
    return scratchDir(prefix + "_" +
                          std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()),
                      create);
}

} // namespace qismet::test

#endif // QISMET_TESTS_COMMON_SCRATCH_DIR_HPP
