/** @file Tests for the dense complex matrix type and linear solver. */

#include <gtest/gtest.h>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace qismet {
namespace {

Matrix
randomMatrix(std::size_t n, Rng &rng)
{
    Matrix m(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            m(r, c) = Complex(rng.normal(), rng.normal());
    return m;
}

TEST(Matrix, IdentityProperties)
{
    const Matrix id = Matrix::identity(4);
    EXPECT_TRUE(id.isHermitian());
    EXPECT_TRUE(id.isUnitary());
    EXPECT_DOUBLE_EQ(id.trace().real(), 4.0);
}

TEST(Matrix, FromRowsRejectsRagged)
{
    EXPECT_THROW(Matrix::fromRows({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, AdditionSubtraction)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    const Matrix sum = a + b;
    EXPECT_DOUBLE_EQ(sum(0, 0).real(), 6.0);
    EXPECT_DOUBLE_EQ(sum(1, 1).real(), 12.0);
    const Matrix diff = sum - b;
    EXPECT_NEAR(diff.maxAbsDiff(a), 0.0, 1e-14);
}

TEST(Matrix, MultiplyAgainstKnown)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix b = Matrix::fromRows({{0, 1}, {1, 0}});
    const Matrix p = a * b;
    EXPECT_DOUBLE_EQ(p(0, 0).real(), 2.0);
    EXPECT_DOUBLE_EQ(p(0, 1).real(), 1.0);
    EXPECT_DOUBLE_EQ(p(1, 0).real(), 4.0);
    EXPECT_DOUBLE_EQ(p(1, 1).real(), 3.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows)
{
    Matrix a(2, 3), b(2, 2);
    EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, AdjointInvolution)
{
    Rng rng(3);
    const Matrix m = randomMatrix(5, rng);
    EXPECT_NEAR(m.adjoint().adjoint().maxAbsDiff(m), 0.0, 1e-14);
}

TEST(Matrix, AdjointOfProduct)
{
    Rng rng(5);
    const Matrix a = randomMatrix(4, rng);
    const Matrix b = randomMatrix(4, rng);
    // (AB)† = B†A†
    EXPECT_NEAR((a * b).adjoint().maxAbsDiff(b.adjoint() * a.adjoint()),
                0.0, 1e-12);
}

TEST(Matrix, KronDimensionsAndValues)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix b = Matrix::identity(2);
    const Matrix k = a.kron(b);
    EXPECT_EQ(k.rows(), 4u);
    EXPECT_EQ(k.cols(), 4u);
    EXPECT_DOUBLE_EQ(k(0, 0).real(), 1.0);
    EXPECT_DOUBLE_EQ(k(1, 1).real(), 1.0);
    EXPECT_DOUBLE_EQ(k(2, 2).real(), 4.0);
    EXPECT_DOUBLE_EQ(k(0, 2).real(), 2.0);
    EXPECT_DOUBLE_EQ(k(0, 1).real(), 0.0);
}

TEST(Matrix, KronMixedProduct)
{
    // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
    Rng rng(7);
    const Matrix a = randomMatrix(2, rng);
    const Matrix b = randomMatrix(2, rng);
    const Matrix c = randomMatrix(2, rng);
    const Matrix d = randomMatrix(2, rng);
    EXPECT_NEAR((a.kron(b) * c.kron(d)).maxAbsDiff((a * c).kron(b * d)),
                0.0, 1e-10);
}

TEST(Matrix, TraceRequiresSquare)
{
    Matrix m(2, 3);
    EXPECT_THROW(m.trace(), std::invalid_argument);
}

TEST(Matrix, TraceCyclic)
{
    Rng rng(11);
    const Matrix a = randomMatrix(4, rng);
    const Matrix b = randomMatrix(4, rng);
    const Complex t1 = (a * b).trace();
    const Complex t2 = (b * a).trace();
    EXPECT_NEAR(std::abs(t1 - t2), 0.0, 1e-10);
}

TEST(Matrix, FrobeniusNorm)
{
    Matrix m = Matrix::fromRows({{3, 0}, {0, 4}});
    EXPECT_DOUBLE_EQ(m.frobeniusNorm(), 5.0);
}

TEST(Matrix, HermitianDetection)
{
    Matrix h = Matrix::fromRows(
        {{Complex(1, 0), Complex(2, 1)}, {Complex(2, -1), Complex(3, 0)}});
    EXPECT_TRUE(h.isHermitian());
    h(0, 1) = Complex(2, 2);
    EXPECT_FALSE(h.isHermitian());
}

TEST(Matrix, ApplyMatchesMultiplication)
{
    Rng rng(13);
    const Matrix m = randomMatrix(6, rng);
    std::vector<Complex> v(6);
    for (auto &x : v)
        x = Complex(rng.normal(), rng.normal());
    const auto out = m.apply(v);
    for (std::size_t r = 0; r < 6; ++r) {
        Complex expect(0, 0);
        for (std::size_t c = 0; c < 6; ++c)
            expect += m(r, c) * v[c];
        EXPECT_NEAR(std::abs(out[r] - expect), 0.0, 1e-12);
    }
}

TEST(SolveLinear, KnownSystem)
{
    // x + y = 3, x - y = 1 -> x = 2, y = 1
    const auto x = solveLinear({{1, 1}, {1, -1}}, {3, 1});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinear, RandomRoundTrip)
{
    Rng rng(17);
    const std::size_t n = 8;
    std::vector<std::vector<double>> a(n, std::vector<double>(n));
    std::vector<double> x_true(n);
    for (auto &row : a)
        for (auto &v : row)
            v = rng.normal();
    for (auto &v : x_true)
        v = rng.normal();
    std::vector<double> b(n, 0.0);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            b[r] += a[r][c] * x_true[c];
    const auto x = solveLinear(a, b);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(SolveLinear, SingularThrows)
{
    EXPECT_THROW(solveLinear({{1, 2}, {2, 4}}, {1, 1}), std::runtime_error);
}

TEST(SolveLinear, NeedsPivoting)
{
    // Zero on the initial pivot position requires row exchange.
    const auto x = solveLinear({{0, 1}, {1, 0}}, {5, 7});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 5.0, 1e-12);
}

} // namespace
} // namespace qismet
