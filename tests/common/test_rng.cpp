/** @file Unit and statistical tests for the RNG substrate. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/statistics.hpp"

namespace qismet {
namespace {

TEST(Xoshiro256, DeterministicForSameSeed)
{
    Xoshiro256 a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiffer)
{
    Xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b())
            ++same;
    EXPECT_LE(same, 1);
}

TEST(Xoshiro256, ZeroSeedIsWellMixed)
{
    Xoshiro256 g(0);
    // SplitMix64 expansion means even seed 0 gives nonzero output.
    EXPECT_NE(g(), 0u);
    EXPECT_NE(g(), g());
}

TEST(Xoshiro256, JumpProducesDisjointStream)
{
    Xoshiro256 a(7);
    Xoshiro256 b(7);
    b.jump();
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(a());
    int collisions = 0;
    for (int i = 0; i < 1000; ++i)
        if (seen.count(b()))
            ++collisions;
    EXPECT_EQ(collisions, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanAndVariance)
{
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.uniform());
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
    EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 7.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 7.0);
    }
}

TEST(Rng, UniformIntUnbiasedCoverage)
{
    Rng rng(17);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(10)];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
}

TEST(Rng, UniformIntRejectsZero)
{
    Rng rng(1);
    EXPECT_THROW(rng.uniformInt(0), std::invalid_argument);
}

TEST(Rng, NormalMoments)
{
    Rng rng(19);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.normal());
    EXPECT_NEAR(stats.mean(), 0.0, 0.01);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
}

TEST(Rng, NormalShiftScale)
{
    Rng rng(23);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(rng.normal(3.0, 0.5));
    EXPECT_NEAR(stats.mean(), 3.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 0.5, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(29);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(rng.exponential(2.0));
    EXPECT_NEAR(stats.mean(), 0.5, 0.02);
    EXPECT_GT(stats.min(), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveRate)
{
    Rng rng(1);
    EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
    EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

class PoissonMeanTest : public ::testing::TestWithParam<double>
{
};

TEST_P(PoissonMeanTest, MeanMatches)
{
    const double mean = GetParam();
    Rng rng(31);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(static_cast<double>(rng.poisson(mean)));
    EXPECT_NEAR(stats.mean(), mean, 0.05 * std::max(1.0, mean));
    // Poisson: variance == mean.
    EXPECT_NEAR(stats.variance(), mean, 0.10 * std::max(1.0, mean));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.05, 0.5, 2.0, 10.0, 80.0));

TEST(Rng, PoissonZeroMean)
{
    Rng rng(3);
    EXPECT_EQ(rng.poisson(0.0), 0u);
    EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(37);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng rng(41);
    std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.discrete(weights)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
    EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, DiscreteRejectsBadWeights)
{
    Rng rng(1);
    EXPECT_THROW(rng.discrete({0.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(rng.discrete({1.0, -0.5}), std::invalid_argument);
}

TEST(Rng, SignIsBalanced)
{
    Rng rng(43);
    int sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.sign();
    EXPECT_NEAR(sum / static_cast<double>(n), 0.0, 0.02);
}

TEST(Rng, SplitProducesIndependentStreams)
{
    Rng parent(47);
    Rng child1 = parent.split();
    Rng child2 = parent.split();
    // Children must differ from each other.
    std::vector<double> a, b;
    for (int i = 0; i < 1000; ++i) {
        a.push_back(child1.uniform());
        b.push_back(child2.uniform());
    }
    EXPECT_LT(std::abs(pearson(a, b)), 0.1);
}

TEST(Rng, SameSeedSameSequence)
{
    Rng a(99), b(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SplitAtIsPureAndDeterministic)
{
    // splitAt must not advance the parent, and the same index from the
    // same parent state must yield the same child stream.
    const Rng parent(53);
    Rng childA = parent.splitAt(6);
    Rng childB = parent.splitAt(6);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(childA.uniform(), childB.uniform());

    Rng advanced(53);
    Rng untouched(53);
    (void)advanced.splitAt(3);
    (void)advanced.splitAt(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(advanced.uniform(), untouched.uniform());
}

TEST(Rng, SplitAtDistinctIndicesGiveDistinctStreams)
{
    const Rng parent(59);
    std::set<std::uint64_t> first_draws;
    for (std::uint64_t i = 0; i < 64; ++i) {
        Rng child = parent.splitAt(i);
        first_draws.insert(child.engine()());
    }
    EXPECT_EQ(first_draws.size(), 64u);
}

/** Pearson correlation of a against b delayed by `lag` samples. */
double
laggedPearson(const std::vector<double> &a, const std::vector<double> &b,
              std::size_t lag)
{
    const std::size_t m = a.size() - lag;
    std::vector<double> head(a.begin(), a.begin() + static_cast<long>(m));
    std::vector<double> tail(b.begin() + static_cast<long>(lag), b.end());
    return pearson(head, tail);
}

/**
 * Pairwise lagged-correlation bound shared by the split() and splitAt()
 * sub-stream tests. For independent uniform streams of length M the
 * sample correlation is ~Normal(0, 1/sqrt(M - lag)); 4.75 sigma leaves
 * comfortable headroom over all stream pairs and lags at a fixed seed.
 */
void
expectPairwiseUncorrelated(const std::vector<std::vector<double>> &streams)
{
    const std::size_t draws = streams.front().size();
    for (std::size_t i = 0; i < streams.size(); ++i) {
        for (std::size_t j = i + 1; j < streams.size(); ++j) {
            for (std::size_t lag = 0; lag <= 3; ++lag) {
                const double bound =
                    4.75 / std::sqrt(static_cast<double>(draws - lag));
                EXPECT_LT(std::abs(laggedPearson(streams[i], streams[j],
                                                 lag)),
                          bound)
                    << "streams " << i << "," << j << " lag " << lag;
                EXPECT_LT(std::abs(laggedPearson(streams[j], streams[i],
                                                 lag)),
                          bound)
                    << "streams " << j << "," << i << " lag " << lag;
            }
        }
    }
}

TEST(Rng, SplitSubStreamsPairwiseUncorrelated)
{
    const std::size_t num_streams = 24;
    const std::size_t draws = 4096;
    Rng parent(61);
    std::vector<std::vector<double>> streams;
    for (std::size_t s = 0; s < num_streams; ++s) {
        Rng child = parent.split();
        std::vector<double> xs(draws);
        for (auto &x : xs)
            x = child.uniform();
        streams.push_back(std::move(xs));
    }
    expectPairwiseUncorrelated(streams);
}

TEST(Rng, SplitAtSubStreamsPairwiseUncorrelated)
{
    // The counter-based children the parallel engine hands to sibling
    // tasks: consecutive indices from one parent state.
    const std::size_t num_streams = 24;
    const std::size_t draws = 4096;
    const Rng parent(67);
    std::vector<std::vector<double>> streams;
    for (std::size_t s = 0; s < num_streams; ++s) {
        Rng child = parent.splitAt(s);
        std::vector<double> xs(draws);
        for (auto &x : xs)
            x = child.uniform();
        streams.push_back(std::move(xs));
    }
    expectPairwiseUncorrelated(streams);
}

} // namespace
} // namespace qismet
