/** @file Tests for the EfficientSU2 / RealAmplitudes ansatz generators. */

#include <gtest/gtest.h>

#include <cmath>

#include "ansatz/efficient_su2.hpp"
#include "ansatz/real_amplitudes.hpp"
#include "circuit/metrics.hpp"
#include "common/rng.hpp"
#include "hamiltonian/tfim.hpp"
#include "pauli/expectation.hpp"
#include "sim/statevector.hpp"

namespace qismet {
namespace {

class RepsTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RepsTest, ParamCountFormulas)
{
    const int reps = GetParam();
    const int n = 6;
    EXPECT_EQ(EfficientSU2(n, reps).numParams(), 2 * n * (reps + 1));
    EXPECT_EQ(RealAmplitudes(n, reps).numParams(), n * (reps + 1));
}

TEST_P(RepsTest, CircuitGateCounts)
{
    const int reps = GetParam();
    const int n = 6;

    const Circuit su2 = EfficientSU2(n, reps).build();
    const CircuitMetrics m1 = computeMetrics(su2);
    EXPECT_EQ(m1.twoQubitGates, reps * (n - 1));
    EXPECT_EQ(m1.oneQubitGates, 2 * n * (reps + 1));

    const Circuit ra = RealAmplitudes(n, reps).build();
    const CircuitMetrics m2 = computeMetrics(ra);
    EXPECT_EQ(m2.twoQubitGates, reps * (n - 1));
    EXPECT_EQ(m2.oneQubitGates, n * (reps + 1));
}

INSTANTIATE_TEST_SUITE_P(Reps, RepsTest, ::testing::Values(1, 2, 4, 8));

TEST(Ansatz, Validation)
{
    EXPECT_THROW(EfficientSU2(1, 2), std::invalid_argument);
    EXPECT_THROW(RealAmplitudes(4, 0), std::invalid_argument);
}

TEST(Ansatz, Names)
{
    EXPECT_EQ(EfficientSU2(4, 2).name(), "SU2");
    EXPECT_EQ(RealAmplitudes(4, 2).name(), "RA");
}

TEST(Ansatz, EveryParameterUsedExactlyOnce)
{
    const EfficientSU2 a(4, 3);
    const Circuit c = a.build();
    std::vector<int> used(static_cast<std::size_t>(a.numParams()), 0);
    for (const Gate &g : c.gates())
        if (g.isParameterized())
            ++used[static_cast<std::size_t>(g.paramIndex)];
    for (int u : used)
        EXPECT_EQ(u, 1);
}

TEST(Ansatz, RandomInitialPointInRange)
{
    Rng rng(3);
    const RealAmplitudes a(5, 2);
    const auto theta = a.randomInitialPoint(rng);
    EXPECT_EQ(theta.size(), static_cast<std::size_t>(a.numParams()));
    for (double t : theta) {
        EXPECT_GE(t, -M_PI);
        EXPECT_LT(t, M_PI);
    }
}

TEST(Ansatz, RealAmplitudesProducesRealStates)
{
    Rng rng(5);
    const RealAmplitudes a(4, 2);
    Statevector st(4);
    st.run(a.build(), a.randomInitialPoint(rng));
    for (const auto &amp : st.amplitudes())
        EXPECT_NEAR(amp.imag(), 0.0, 1e-12);
}

TEST(Ansatz, ZeroParamsPreparesGround)
{
    const RealAmplitudes a(3, 2);
    Statevector st(3);
    st.run(a.build(),
           std::vector<double>(static_cast<std::size_t>(a.numParams()), 0.0));
    EXPECT_NEAR(st.probability(0), 1.0, 1e-12);
}

TEST(Ansatz, ExpressiveEnoughForTfimGround)
{
    // Random search should find parameters well below the mixed-state
    // energy — a cheap expressivity sanity check.
    TfimParams params;
    params.numQubits = 4;
    const PauliSum h = tfimHamiltonian(params);
    const double e0 = tfimExactGroundEnergy(params);

    const RealAmplitudes a(4, 3);
    const Circuit c = a.build();
    Rng rng(7);
    double best = 0.0;
    for (int trial = 0; trial < 300; ++trial) {
        Statevector st(4);
        st.run(c, a.randomInitialPoint(rng));
        best = std::min(best, expectation(st, h));
    }
    EXPECT_LT(best, 0.5 * e0); // at least half the ground energy
}

} // namespace
} // namespace qismet
